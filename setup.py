"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables
legacy `pip install -e .` (setup.py develop) in offline environments
where PEP 517 editable builds are unavailable.
"""

from setuptools import setup

setup()
