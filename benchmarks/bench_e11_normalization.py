"""E11 — Appendix A: the normalization bounds per-tree ancestries.

Example 66 shows that for the raw theory *some* ancestor function routes
unboundedly many base facts into one tree's ancestry (the refutation of
the naive Lemma 65); the Crucial Lemma (Lemma 77) quantifies over **every**
ancestor function, so the bench measures the worst case across all
possible derivations.  After the T_NF normalization the connected
ancestries are flat and under the theory constant M = N*h + k*h, while
Lemma 70 confirms both theories produce the same existential atoms.
"""

from repro.bench import Table, monotonically_nondecreasing, roughly_flat
from repro.frontier import (
    crucial_lemma_check,
    lemma70_check,
    normalize,
    tree_possible_ancestor_sizes,
)
from repro.workloads import example66, example66_instance

SPOKES = (2, 3, 4, 6)


def run_normalization() -> Table:
    theory = example66()
    normalized = normalize(theory)
    table = Table(
        "E11: Example-66 worst-case ancestries, raw vs normalized (Lemma 77)",
        [
            "P-spokes",
            "raw worst ancestry",
            "normalized worst (canc)",
            "bound M",
            "Lemma 70 agrees",
        ],
    )
    for spokes in SPOKES:
        base = example66_instance(spokes)
        raw = tree_possible_ancestor_sizes(theory, base, depth=5)
        normalized_sizes = tree_possible_ancestor_sizes(
            normalized.normalized, base, depth=5, connected_only=True
        )
        _, bound = crucial_lemma_check(normalized, base, depth=5)
        table.add(
            spokes,
            max(raw.values(), default=0),
            max(normalized_sizes.values(), default=0),
            bound,
            lemma70_check(normalized, base, depth=3),
        )
    table.note("raw worst case grows with the instance (spokes + 1); "
               "normalized stays flat and under M")
    return table


def test_bench_e11_normalization(benchmark, report):
    table = benchmark.pedantic(run_normalization, rounds=1, iterations=1)
    report(table)
    raw = table.column("raw worst ancestry")
    assert monotonically_nondecreasing(raw)
    assert raw[-1] > raw[0]  # genuine growth
    normalized_series = table.column("normalized worst (canc)")
    assert roughly_flat(normalized_series)
    bounds = table.column("bound M")
    assert all(obs <= bound for obs, bound in zip(normalized_series, bounds))
    assert all(table.column("Lemma 70 agrees"))
