"""F1 — Figure 1: the doubling grid of Ch(T_d, G^8).

Regenerates the paper's only figure in quantified form: at level k the
apex pattern phi_R^k spans exactly the 2^3 - 2^k + 1 windows of width 2^k
over the green path — the triangle narrowing to a single full-width apex.
"""

from repro.bench import Table
from repro.frontier.td import figure1_apex_counts


def run_figure1() -> Table:
    table = Table(
        "F1: doubling triangle over G^8 (Figure 1)",
        ["level k", "windows 2^k satisfied", "expected", "match"],
    )
    for level, satisfied, expected in figure1_apex_counts(3):
        table.add(level, satisfied, expected, satisfied == expected)
    table.note("expected row k = 2^3 - 2^k + 1; shape: 7, 5, 1")
    return table


def test_bench_f1_figure1(benchmark, report):
    table = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    report(table)
    assert table.column("match") == [True, True, True]
    assert table.column("windows 2^k satisfied") == [7, 5, 1]
