"""E6 — Theorem 4: the uniform bound c_T for a local core-terminating theory.

The Exercise-23 theory is Core Terminating and local, so the FUS/FES
conjecture holds for it: one constant c_T bounds c_{T,D} over all
instances.  Sweep instance families (paths, cycles, random) and observe a
flat series — the measurable face of Observation 27 / Theorem 4(B).
"""

from repro.bench import Table, roughly_flat
from repro.chase import core_termination, is_model
from repro.logic.signature import Predicate
from repro.workloads import edge_cycle, edge_path, exercise23, random_instance


def _instances():
    yield "path", 2, edge_path(2)
    yield "path", 4, edge_path(4)
    yield "path", 8, edge_path(8)
    yield "cycle", 3, edge_cycle(3)
    yield "cycle", 6, edge_cycle(6)
    yield "random", 8, random_instance([Predicate("E", 2)], 8, 5, seed=1)
    yield "random", 12, random_instance([Predicate("E", 2)], 12, 6, seed=2)


def run_uniform_bound() -> Table:
    theory = exercise23()
    table = Table(
        "E6: uniform Core-Termination bound for Ex.23 (Theorem 4)",
        ["family", "size", "c_{T,D}", "model facts", "model |= T"],
    )
    for family, size, instance in _instances():
        witness = core_termination(theory, instance, max_depth=12)
        assert witness is not None
        table.add(
            family,
            size,
            witness.bound,
            len(witness.model),
            is_model(witness.model, theory),
        )
    table.note("flat c_{T,D} series: a single c_T covers every instance")
    return table


def test_bench_e6_uniform_bound(benchmark, report):
    table = benchmark.pedantic(run_uniform_bound, rounds=1, iterations=1)
    report(table)
    bounds = table.column("c_{T,D}")
    assert roughly_flat(bounds)
    assert max(bounds) <= 2
    assert all(table.column("model |= T"))
