"""E15 — the store-backed chase at database scale (>= 10^6 atoms).

The point of `repro.storage` is that the chase's working set does not
have to live in Python: matches stream out of SQLite SELECTs, heads are
built id-natively, and inserts are batched — so memory stays bounded by
the batch size and the trimmed id cache while the fact set grows
arbitrarily.  This bench materializes a binary-tree chase past one
million atoms inside a SQLite file and records the process RSS, the
tracemalloc peak and the database size as *metadata* (hardware- and
allocator-dependent — reported, never compared; the correctness bit is
the atom count and round structure).

The sweep rows double the atom budget; the final row crosses 10^6.
"""

from __future__ import annotations

import os
import tracemalloc

import pytest

from repro.bench import Table
from repro.chase import ChaseBudget
from repro.logic import parse_instance, parse_theory
from repro.storage import chase_into_store, open_store

# Two existential generators per node -> the frontier doubles each round
# (a complete binary tree of Skolem terms); no rule has universal head
# variables, so the store chase accepts it.
TREE = (
    "N(x) -> exists y. C(x, y)\n"
    "C(x, y) -> N(y)\n"
    "N(x) -> exists z. D(x, z)\n"
    "D(x, z) -> N(z)"
)

ATOM_BUDGETS = (250_000, 500_000, 1_000_000)


def _rss_kb() -> int:
    """Linux VmRSS in kB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status", encoding="utf8") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def run_store_chase(db_dir: str) -> Table:
    theory = parse_theory(TREE, name="binary-tree")
    table = Table(
        "E15: store-backed chase scale (binary Skolem tree in SQLite)",
        ["atom budget", "atoms", "rounds", "db MB", "RSS MB", "py-heap peak MB"],
    )
    for budget_atoms in ATOM_BUDGETS:
        path = os.path.join(db_dir, f"tree_{budget_atoms}.db")
        tracemalloc.start()
        with open_store(path) as store:
            outcome = chase_into_store(
                theory,
                parse_instance("N(root)"),
                store,
                budget=ChaseBudget(
                    max_rounds=60, max_atoms=budget_atoms, on_exceeded="return"
                ),
            )
            atoms = outcome.atom_count
            rounds = outcome.rounds_run
        _, heap_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        table.add(
            budget_atoms,
            atoms,
            rounds,
            round(os.path.getsize(path) / 1e6, 1),
            round(_rss_kb() / 1024, 1),
            round(heap_peak / 1e6, 1),
        )
    table.note(
        "memory columns are metadata (machine-dependent), not compared; "
        "the contract is the final row crossing 10^6 atoms"
    )
    return table


@pytest.mark.slow
def test_bench_e15_store_chase(benchmark, report, tmp_path):
    table = benchmark.pedantic(run_store_chase, args=(str(tmp_path),), rounds=1, iterations=1)
    report(table)
    atoms = table.column("atoms")
    # The tentpole claim: a chase of >= 10^6 atoms completes in SQLite.
    assert atoms[-1] >= 1_000_000
    # Each budget doubling roughly doubles the materialized prefix.
    assert all(later > earlier for earlier, later in zip(atoms, atoms[1:]))
    # A complete binary tree: every N spawns a C and a D edge.
    assert all(rounds >= 10 for rounds in table.column("rounds"))


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        run_store_chase(scratch).show()
