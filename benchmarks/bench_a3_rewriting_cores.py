"""A3 (ablation) — subsumption eviction inside rewriting saturation.

When a newly produced CQ is strictly more general than kept ones, the
engine evicts the subsumed entries.  Eviction is optional for
completeness (the general query joins the set either way) but keeps the
working set — and every later containment check — small.  The ablation
disables it and compares kept-set sizes; after a final minimization the
outputs must be equivalent.

(Core minimization, by contrast, is *not* an optional knob: a redundant
atom's variables leak out of every piece and block unifiers, so skipping
cores loses completeness — discovered by this suite's own cross-checks
and now documented on ``RewritingBudget``.)
"""

from repro.bench import Table
from repro.logic import parse_query
from repro.logic.containment import are_equivalent, minimize_ucq
from repro.rewriting import RewritingBudget, rewrite
from repro.workloads import t_a, t_p, university_ontology

CASES = (
    (
        "T_p, redundant fan",
        t_p,
        "q(x) := exists y, z, w. E(x, y), E(y, z), E(x, w)",
    ),
    (
        "T_a, grandmother",
        t_a,
        "q(x) := exists y, z. Mother(x, y), Mother(y, z)",
    ),
    (
        "University, join",
        university_ontology,
        "q(x) := exists c, p, d. EnrolledIn(x, c), TaughtBy(c, p), MemberOf(p, d)",
    ),
)


def _equivalent_ucqs(left, right) -> bool:
    left_min = list(minimize_ucq(left))
    right_min = list(minimize_ucq(right))
    if len(left_min) != len(right_min):
        return False
    return all(
        any(are_equivalent(l, r) for r in right_min) for l in left_min
    )


def run_eviction_ablation() -> Table:
    table = Table(
        "A3: rewriting with vs without subsumption eviction",
        [
            "case",
            "kept (evict)",
            "kept (no evict)",
            "steps (evict)",
            "steps (no evict)",
            "equivalent after minimize",
        ],
    )
    for name, factory, text in CASES:
        theory = factory()
        query = parse_query(text)
        with_eviction = rewrite(theory, query)
        without = rewrite(theory, query, RewritingBudget(evict_subsumed=False))
        assert with_eviction.complete and without.complete
        table.add(
            name,
            len(with_eviction.ucq),
            len(without.ucq),
            with_eviction.explored,
            without.explored,
            _equivalent_ucqs(list(with_eviction.ucq), list(without.ucq)),
        )
    table.note("eviction keeps the kept-set minimal; outputs agree after "
               "one final minimization")
    return table


def test_bench_a3_rewriting_cores(benchmark, report):
    table = benchmark.pedantic(run_eviction_ablation, rounds=1, iterations=1)
    report(table)
    assert all(table.column("equivalent after minimize"))
    evict = table.column("kept (evict)")
    no_evict = table.column("kept (no evict)")
    assert all(e <= n for e, n in zip(evict, no_evict))
