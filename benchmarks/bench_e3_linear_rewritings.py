"""E3 — Observation 31: local theories admit linear-size rewritings.

For the linear (hence local, l_T = 1) theories T_p and the university
ontology, sweep the query size and report rs_T(psi) against the
l_T * |psi| bound — flat-ratio series, in stark contrast to E1's doubling.
"""

from repro.bench import Table
from repro.frontier import linear_locality_constant
from repro.logic import parse_query
from repro.rewriting import rewrite
from repro.workloads import t_p, university_ontology


def _path_query(length: int) -> str:
    body = ", ".join(f"E(x{i}, x{i + 1})" for i in range(length))
    return f"q(x0) := {body}"


def _university_query(length: int) -> str:
    pieces = ["EnrolledIn(x, c0)"]
    for i in range(length - 1):
        pieces.append(f"TaughtBy(c{i}, p{i})")
    return "q(x) := " + ", ".join(pieces[:length])


def run_linear_rewritings() -> Table:
    table = Table(
        "E3: linear-size rewritings for local theories (Observation 31)",
        ["theory", "|psi|", "disjuncts", "rs_T(psi)", "bound l_T*|psi|", "within"],
    )
    for name, theory, builder in (
        ("T_p", t_p(), _path_query),
        ("University", university_ontology(), _university_query),
    ):
        constant = linear_locality_constant(theory)
        for length in (1, 2, 3, 4, 5):
            query = parse_query(builder(length))
            result = rewrite(theory, query)
            assert result.complete
            bound = constant * query.size
            table.add(
                name,
                query.size,
                len(result.ucq),
                result.max_disjunct_size(),
                bound,
                result.max_disjunct_size() <= bound,
            )
    table.note("rs stays <= l_T * |psi| (linear), vs 2^n for T_d in E1")
    return table


def test_bench_e3_linear_rewritings(benchmark, report):
    table = benchmark.pedantic(run_linear_rewritings, rounds=1, iterations=1)
    report(table)
    assert all(table.column("within"))
