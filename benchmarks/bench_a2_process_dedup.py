"""A2 (ablation) — canonical-form deduplication in the T_d process.

The five-operation process deduplicates marked queries up to variable
renaming (colour refinement + small-group canonicalization).  The rank
argument guarantees termination either way, so the ablation measures what
dedup actually buys on phi_R^n — and honestly reports when it does not:
the operations happen to produce structurally distinct queries on these
inputs, so the canonicalization is pure overhead there, while the final
rewriting is identical.
"""

import time

from repro.bench import Table
from repro.frontier.process import run_process
from repro.frontier.td import phi_r_n

DEPTHS = (1, 2, 3)


def run_process_dedup_ablation() -> Table:
    table = Table(
        "A2: process with vs without canonical deduplication",
        [
            "n",
            "steps (dedup)",
            "steps (no dedup)",
            "time dedup (ms)",
            "time no-dedup (ms)",
            "same rewriting",
        ],
    )
    for depth in DEPTHS:
        query = phi_r_n(depth)
        started = time.perf_counter()
        with_dedup = run_process(query)
        dedup_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        without = run_process(query, deduplicate=False, max_steps=2_000_000)
        nodedup_ms = (time.perf_counter() - started) * 1000
        table.add(
            depth,
            with_dedup.steps,
            without.steps,
            round(dedup_ms, 1),
            round(nodedup_ms, 1),
            len(with_dedup.rewriting()) == len(without.rewriting()),
        )
    table.note("termination never depends on dedup (the rank argument); on "
               "phi_R^n the operations avoid isomorphic duplicates anyway")
    return table


def test_bench_a2_process_dedup(benchmark, report):
    table = benchmark.pedantic(run_process_dedup_ablation, rounds=1, iterations=1)
    report(table)
    assert all(table.column("same rewriting"))
    # No-dedup must still terminate with a comparable step count (no
    # exponential duplicate storms on these inputs).
    dedup_steps = table.column("steps (dedup)")
    nodedup_steps = table.column("steps (no dedup)")
    assert all(n <= 4 * d + 50 for d, n in zip(dedup_steps, nodedup_steps))
