"""E14 — rewriting across realistic ontologies.

The well-behaved side of the paper's frontier: three linear (hence BDD,
local, sticky) DL-Lite-style ontologies.  Every query rewrites completely,
rewriting sizes stay in Observation 31's linear regime, and rewrite-vs-
materialize answers agree — the contrast workload for T_d's pathologies.
"""

from repro.bench import Table
from repro.rewriting import cross_validate, rewrite
from repro.workloads import all_ontology_workloads


def run_ontologies() -> Table:
    table = Table(
        "E14: rewriting over realistic ontologies",
        [
            "ontology",
            "rules",
            "query",
            "disjuncts",
            "max size",
            "|query|",
            "answers",
            "agree",
        ],
    )
    for workload in all_ontology_workloads():
        database = workload.database(40, seed=11)
        for name, query in sorted(workload.queries.items()):
            result = rewrite(workload.theory, query)
            assert result.complete
            report = cross_validate(workload.theory, query, database)
            table.add(
                workload.name,
                len(workload.theory),
                name,
                len(result.ucq),
                result.max_disjunct_size(),
                query.size,
                len(report.rewriting_answers),
                report.agree,
            )
    table.note("all rewritings complete; disjunct sizes <= |query| "
               "(the l_T = 1 linear regime)")
    return table


def test_bench_e14_ontologies(benchmark, report):
    table = benchmark.pedantic(run_ontologies, rounds=1, iterations=1)
    report(table)
    assert all(table.column("agree"))
    for size, query_size in zip(table.column("max size"), table.column("|query|")):
        assert size <= query_size  # Observation 31 with l_T = 1
