"""E4 — Example 39: the sticky theory is BDD but not local.

Sweep the number of colour spokes k around the spectator: the chase
produces an atom whose minimal support is the whole instance (k+1 facts),
so no locality constant l_T can exist — while the theory is sticky and
hence BDD.  The non-locality is a *high-degree* phenomenon (the hub's
degree grows with k), which is exactly what bd-locality repairs.
"""

from repro.bench import Table, monotonically_nondecreasing
from repro.chase import ChaseBudget, chase
from repro.frontier import locality_defect, min_support_size
from repro.logic.gaifman import max_degree
from repro.workloads import example39_sticky, sticky_star

SPOKES = (2, 3, 4)


def run_sticky_nonlocal() -> Table:
    theory = example39_sticky()
    table = Table(
        "E4: sticky non-locality on colour stars (Example 39)",
        [
            "spokes k",
            "hub degree",
            "|D|",
            "defect at l=k",
            "max min-support",
        ],
    )
    for spokes in SPOKES:
        star = sticky_star(spokes)
        defect = locality_defect(theory, star, bound=spokes, depth=spokes)
        run = chase(
            theory, star, budget=ChaseBudget(max_rounds=spokes, max_atoms=300_000)
        )
        worst = 0
        for item in sorted(run.round_added[spokes], key=repr):
            support = min_support_size(theory, star, item, depth=spokes + 1)
            worst = max(worst, support or 0)
        table.add(
            spokes,
            max_degree(star),
            len(star),
            len(defect.missing),
            worst,
        )
    table.note("max min-support = k+1 = |D|: the whole instance, every time")
    return table


def test_bench_e4_sticky_nonlocal(benchmark, report):
    table = benchmark.pedantic(run_sticky_nonlocal, rounds=1, iterations=1)
    report(table)
    assert all(defect > 0 for defect in table.column("defect at l=k"))
    assert table.column("max min-support") == [k + 1 for k in SPOKES]
    assert monotonically_nondecreasing(table.column("hub degree"))
