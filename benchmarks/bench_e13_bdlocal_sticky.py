"""E13 — Section 9's repair: sticky theories are bounded-degree local.

Example 39's non-locality (E4) is a high-degree phenomenon: stars with
many colour spokes around one spectator.  Restricting the degree restores
a locality constant l_T(k) — the bench finds it per degree bound on
degree-respecting families, contrasting with the unrestricted stars.
"""

from repro.bench import Table
from repro.frontier import find_bd_locality_constant, locality_defect
from repro.logic import parse_instance
from repro.logic.gaifman import max_degree
from repro.workloads import example39_sticky, sticky_star


def _bounded_family(degree: int):
    """Witness instances whose Gaifman degree stays within the bound."""
    base = [
        parse_instance("E(a, b, b1, c)"),
        parse_instance("E(a, b, b1, c). R(d, t)"),
    ]
    if degree >= 4:
        base.append(parse_instance("E(a, b, b1, c). R(a, t)"))
    return base


def run_bdlocal_sticky() -> Table:
    theory = example39_sticky()
    table = Table(
        "E13: sticky bd-locality vs unrestricted stars (Section 9)",
        ["family", "degree", "l found (<=3)", "local there"],
    )
    for degree in (3, 4):
        family = _bounded_family(degree)
        probe = find_bd_locality_constant(
            theory, degree=degree, instances=family, max_bound=3, depth=2
        )
        table.add(f"degree-{degree} family", degree, probe.constant, probe.constant is not None)
    for spokes in (3, 4):
        star = sticky_star(spokes)
        defect = locality_defect(theory, star, bound=3, depth=spokes)
        table.add(
            f"star {spokes} spokes",
            max_degree(star),
            None,
            defect.witnessed_local,
        )
    table.note("bounded-degree families admit a constant; stars (degree "
               "grows) defeat l = 3 and every other bound")
    return table


def test_bench_e13_bdlocal_sticky(benchmark, report):
    table = benchmark.pedantic(run_bdlocal_sticky, rounds=1, iterations=1)
    report(table)
    rows = list(zip(table.column("family"), table.column("local there")))
    for family, local in rows:
        if family.startswith("degree"):
            assert local
        else:
            assert not local
