"""E9 — the OMQA trade-off: rewrite-then-evaluate vs materialize-then-evaluate.

The practical motivation of the BDD property (Section 1): instead of
querying the chase, query the raw data with a rewritten UCQ.  Sweep the
database size and compare wall-clock for a one-shot query:

* rewriting pays a database-independent preprocessing cost, then a cheap
  UCQ evaluation;
* materialization chases the whole database first.

Expected shape: materialization cost grows with the data while the
rewriting route stays near-flat, so rewriting wins from a small size on —
and amortizing the rewriting across repeated queries widens the gap.
"""

import time

from repro.bench import Table, monotonically_nondecreasing
from repro.logic import parse_query
from repro.rewriting import (
    OMQASession,
    answer_by_materialization,
    depth_bound_from_rewriting,
)
from repro.workloads import university_database, university_ontology

SIZES = (50, 150, 400, 800)
QUERY = "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Person(p)"


def run_crossover() -> Table:
    ontology = university_ontology()
    query = parse_query(QUERY)

    # The amortized route is exactly what OMQASession packages: prepare
    # the rewriting once, reuse it for every database size below.
    session = OMQASession(ontology)
    started = time.perf_counter()
    rewriting = session.prepare(query)
    prep_seconds = time.perf_counter() - started
    bound = depth_bound_from_rewriting(ontology, query)

    table = Table(
        "E9: rewrite vs materialize on the university workload",
        [
            "students",
            "facts",
            "rewrite total (ms)",
            "materialize total (ms)",
            "answers",
            "winner",
        ],
    )
    table.note(f"rewriting preprocessing: {prep_seconds * 1000:.1f} ms, "
               f"{len(rewriting.ucq)} disjuncts, depth bound {bound}")
    for students in SIZES:
        database = university_database(
            students=students,
            professors=max(4, students // 10),
            courses=max(6, students // 5),
            seed=5,
        )
        started = time.perf_counter()
        via_rewriting = session.answer(query, database, strategy="rewrite")
        rewrite_ms = (time.perf_counter() - started + prep_seconds) * 1000

        started = time.perf_counter()
        via_chase = answer_by_materialization(ontology, query, database, depth=bound)
        materialize_ms = (time.perf_counter() - started) * 1000

        assert via_rewriting == via_chase
        table.add(
            students,
            len(database),
            round(rewrite_ms, 2),
            round(materialize_ms, 2),
            len(via_rewriting),
            "rewrite" if rewrite_ms < materialize_ms else "materialize",
        )
    info = session.cache_info()["rewriting"]
    table.note(
        f"session cache: {info['hits']} rewriting hits over {len(SIZES)} sizes"
    )
    table.attach_stats(session.stats.as_dict())
    return table


def test_bench_e9_crossover(benchmark, report):
    table = benchmark.pedantic(run_crossover, rounds=1, iterations=1)
    report(table)
    # Shape, not absolute numbers: materialization cost grows with data,
    # and by the largest size the rewriting route wins.
    assert monotonically_nondecreasing(table.column("facts"))
    assert table.column("winner")[-1] == "rewrite"
    materialize = table.column("materialize total (ms)")
    assert materialize[-1] > materialize[0]
