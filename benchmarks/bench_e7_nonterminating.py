"""E7 — Exercises 12/22: BDD without Core Termination (T_p).

T_p is linear (BDD, local) yet not FES: no chase prefix of E(a,b) ever
contains a model.  The bench shows the two halves side by side: the
Core-Termination search keeps failing at every depth, while the rewriting
engine answers queries instantly — BDD and FES are genuinely independent
axes, which is exactly why the FUS/FES conjecture needs both.
"""

from repro.bench import Table, monotonically_nondecreasing
from repro.chase import ChaseBudget, chase, core_termination
from repro.logic import parse_instance, parse_query
from repro.rewriting import rewrite
from repro.workloads import t_p

DEPTHS = (2, 4, 6)


def run_nonterminating() -> Table:
    theory = t_p()
    base = parse_instance("E(a, b)")
    table = Table(
        "E7: T_p grows forever, yet rewrites instantly (Ex. 12/22)",
        ["probe depth", "chase atoms", "CT witness", "rew disjuncts", "rew complete"],
    )
    query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
    rewriting = rewrite(theory, query)
    for depth in DEPTHS:
        run = chase(
            theory, base, budget=ChaseBudget(max_rounds=depth, max_atoms=100_000)
        )
        witness = core_termination(theory, base, max_depth=depth)
        table.add(
            depth,
            len(run.instance),
            witness is not None,
            len(rewriting.ucq),
            rewriting.complete,
        )
    table.note("no CT witness at any depth; the rewriting is finished once")
    return table


def test_bench_e7_nonterminating(benchmark, report):
    table = benchmark.pedantic(run_nonterminating, rounds=1, iterations=1)
    report(table)
    assert not any(table.column("CT witness"))
    assert monotonically_nondecreasing(table.column("chase atoms"))
    assert all(table.column("rew complete"))
