"""A1 (ablation) — semi-naive vs full re-evaluation chase rounds.

DESIGN.md calls out semi-naive evaluation as the engine's core design
choice.  Skolem determinism makes both modes produce the same atoms
round-for-round; the ablation measures the matching work saved on a
datalog-heavy workload (transitive closure over growing paths), where
re-deriving old matches dominates full evaluation.
"""

import time

from repro.bench import Table
from repro.chase import ChaseBudget, chase
from repro.logic import parse_theory
from repro.workloads import edge_path

LENGTHS = (20, 40, 60)


def run_seminaive_ablation() -> Table:
    theory = parse_theory("E(x, y), E(y, z) -> E(x, z)", name="TC")
    table = Table(
        "A1: semi-naive vs full-evaluation chase (transitive closure)",
        ["path", "atoms", "semi-naive (ms)", "full (ms)", "speedup", "equal"],
    )
    for length in LENGTHS:
        base = edge_path(length)
        started = time.perf_counter()
        semi = chase(theory, base, budget=ChaseBudget(max_rounds=80, max_atoms=2_000_000))
        semi_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        full = chase(
            theory,
            base,
            budget=ChaseBudget(max_rounds=80, max_atoms=2_000_000),
            semi_naive=False,
        )
        full_ms = (time.perf_counter() - started) * 1000
        table.add(
            length,
            len(semi.instance),
            round(semi_ms, 1),
            round(full_ms, 1),
            round(full_ms / semi_ms, 2) if semi_ms else 0.0,
            semi.instance == full.instance,
        )
    table.note("identical results; semi-naive's advantage grows with the data")
    return table


def test_bench_a1_seminaive(benchmark, report):
    table = benchmark.pedantic(run_seminaive_ablation, rounds=1, iterations=1)
    report(table)
    assert all(table.column("equal"))
    speedups = table.column("speedup")
    assert speedups[-1] > 1.0  # full evaluation never wins at scale
