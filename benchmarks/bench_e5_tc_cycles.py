"""E5 — Example 42: T_c is BDD but not even bounded-degree local.

Sweep E-cycles (Gaifman degree 2 throughout): the round-n chase contains
atoms needing all n cycle edges, so even with the degree fixed at 2 no
locality constant exists — unlike the sticky case (E4), where bounding
the degree restores locality.
"""

from repro.bench import Table
from repro.chase import ChaseBudget, chase
from repro.frontier import locality_defect, min_support_size
from repro.logic.gaifman import max_degree
from repro.workloads import edge_cycle, example42_tc

CYCLES = (3, 4, 5)


def run_tc_cycles() -> Table:
    theory = example42_tc()
    table = Table(
        "E5: T_c on degree-2 cycles (Example 42)",
        ["cycle n", "degree", "defect at l=n-1", "max min-support", "= whole cycle"],
    )
    for length in CYCLES:
        cycle = edge_cycle(length)
        defect = locality_defect(
            theory, cycle, bound=length - 1, depth=length
        )
        run = chase(
            theory, cycle, budget=ChaseBudget(max_rounds=length, max_atoms=300_000)
        )
        worst = 0
        for item in sorted(run.round_added[length], key=repr):
            support = min_support_size(theory, cycle, item, depth=length + 1)
            worst = max(worst, support or 0)
        table.add(
            length,
            max_degree(cycle),
            len(defect.missing),
            worst,
            worst == length,
        )
    table.note("degree stays 2, support grows with n: bd-locality fails too")
    return table


def test_bench_e5_tc_cycles(benchmark, report):
    table = benchmark.pedantic(run_tc_cycles, rounds=1, iterations=1)
    report(table)
    assert all(d == 2 for d in table.column("degree"))
    assert all(m > 0 for m in table.column("defect at l=n-1"))
    assert all(table.column("= whole cycle"))
