"""E12 — distancing (Definition 43): bounded for local theories, broken by T_d.

Measure the distance-contraction ratio dist_D / dist_Ch for endpoint pairs:

* T_p (linear, local, distancing): ratio stays <= 1 on every path;
* T_d on G^{2^n}: the chase connects the endpoints through the doubling
  grid within 2n+1 steps while the base distance is 2^n — the ratio grows
  like 2^n/(2n+1), certifying that no distancing constant exists.
"""

from repro.bench import Table, monotonically_nondecreasing
from repro.frontier import distance_contraction
from repro.frontier.td import doubling_witness
from repro.logic.terms import Constant
from repro.workloads import edge_path, t_d, t_p

TD_DEPTHS = (1, 2, 3)


def run_distancing() -> Table:
    table = Table(
        "E12: distance contraction — T_p vs T_d (Definition 43)",
        ["theory", "instance", "base dist", "chase dist", "ratio"],
    )
    for length in (4, 8):
        path = edge_path(length)
        pair = distance_contraction(
            t_p(), path, [(Constant("a0"), Constant(f"a{length}"))], depth=4
        )[0]
        table.add("T_p", f"path {length}", pair.base_distance,
                  pair.chase_distance, pair.contraction_ratio)
    for depth in TD_DEPTHS:
        instance, start, end = doubling_witness(depth)
        rounds = 2 ** depth + 1 if depth < 3 else 7
        pair = distance_contraction(
            t_d(), instance, [(start, end)], depth=rounds, max_atoms=2_000_000
        )[0]
        table.add(
            "T_d",
            f"G^{2 ** depth}",
            pair.base_distance,
            pair.chase_distance,
            pair.contraction_ratio,
        )
    table.note("T_p ratios flat at <= 1; T_d ratios track 2^n/(2n+1)")
    return table


def test_bench_e12_distancing(benchmark, report):
    table = benchmark.pedantic(run_distancing, rounds=1, iterations=1)
    report(table)
    ratios = table.column("ratio")
    tp_ratios, td_ratios = ratios[:2], ratios[2:]
    assert all(r <= 1.0 for r in tp_ratios)
    assert monotonically_nondecreasing(td_ratios)
    assert td_ratios[-1] > 1.0  # genuine contraction at n = 3
