"""E2 — Theorem 6(B): the per-level-pair doubling cascade of T_d^K.

Each adjacent level pair (i+1, i) of T_d^K reproduces the Theorem-5
doubling (I_{i+1} as red, I_i as green); composing the K-1 pairs yields
the (K-1)-fold exponential disjunct sizes the paper asserts.  The bench
verifies every pair's doubling and reports the composed bound (the single
explicit tower-sized witness query is deferred by the paper to its
journal version — see DESIGN.md §5).
"""

from repro.bench import Table
from repro.frontier.tdk import (
    check_level_pair_doubling,
    composed_tower_bound,
)

CASES = (
    # (K, pair level, arm depth)
    (2, 1, 1),
    (2, 1, 2),
    (2, 1, 3),
    (3, 1, 1),
    (3, 2, 1),
    (3, 1, 2),
    (3, 2, 2),
    (4, 3, 1),
)


def run_tower() -> Table:
    table = Table(
        "E2: T_d^K level-pair doubling (Theorem 6B cascade)",
        [
            "K",
            "pair (i+1,i)",
            "arm depth n",
            "lower path found",
            "2^n",
            "doubled",
            "composed tower(K-1, n)",
        ],
    )
    for levels, pair, depth in CASES:
        check = check_level_pair_doubling(levels, pair, depth)
        table.add(
            levels,
            f"({pair + 1},{pair})",
            depth,
            check.lower_path_found,
            2 ** depth,
            check.doubled,
            composed_tower_bound(levels, depth),
        )
    table.note("every adjacent pair doubles; composition tower-exponentiates")
    return table


def test_bench_e2_tower(benchmark, report):
    table = benchmark.pedantic(run_tower, rounds=1, iterations=1)
    report(table)
    assert all(table.column("doubled"))
    assert table.column("lower path found") == [
        2 ** depth for _, _, depth in CASES
    ]
    # The composed bounds exhibit the tower: K=3, n=2 -> 2^(2^2) = 16.
    assert composed_tower_bound(3, 2) == 16
    assert composed_tower_bound(4, 2) == 2 ** 16
