"""Shared fixtures for the experiment benchmarks.

Every bench target renders its experiment table through the ``report``
fixture, which both prints it (visible with ``pytest -s``) and persists it
under ``benchmarks/out/<test name>.txt`` so EXPERIMENTS.md can quote the
measured rows verbatim.  A structured twin lands next to it as
``<test name>.json`` (``Table.as_dict()``), carrying any attached engine
telemetry for machine consumers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import Table

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture
def report(request):
    def _report(table: Table) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        target = OUT_DIR / f"{request.node.name}.txt"
        target.write_text(table.render() + "\n", encoding="utf8")
        json_target = OUT_DIR / f"{request.node.name}.json"
        json_target.write_text(table.to_json() + "\n", encoding="utf8")
        print("\n" + table.render())

    return _report
