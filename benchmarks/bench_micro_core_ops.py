"""Micro-benchmarks of the hot inner operations (statistical timing).

Unlike the experiment benches (single pedantic rounds around whole
sweeps), these measure the core primitives with pytest-benchmark's
repeated sampling, so regressions in the substrate show up as timing
shifts: homomorphism evaluation, one chase round, piece-unifier
enumeration, containment, and the process's canonicalization.
"""

import pytest

from repro.chase import ChaseBudget, chase, resume
from repro.frontier.process import _canonical_key, run_process
from repro.frontier.td import phi_r_n
from repro.logic import evaluate, parse_query, parse_rule
from repro.logic.containment import is_contained_in
from repro.logic.terms import FreshVariables
from repro.rewriting import iter_piece_unifiers
from repro.telemetry import validate_stats_dict
from repro.workloads import t_d, university_database, university_ontology


@pytest.fixture(scope="module")
def university_db():
    return university_database(students=120, professors=20, courses=40, seed=13)


def test_bench_micro_evaluate_join(benchmark, university_db):
    query = parse_query(
        "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Professor(p)"
    )
    answers = benchmark(evaluate, query, university_db)
    assert isinstance(answers, set)


def test_bench_micro_chase_round(benchmark, university_db):
    ontology = university_ontology()
    budget = ChaseBudget(max_rounds=1, max_atoms=100_000)
    prefix = chase(ontology, university_db, budget=budget)

    def one_more_round():
        return resume(prefix, 1, budget=ChaseBudget(max_atoms=100_000))

    result = benchmark(one_more_round)
    assert result.rounds_run >= prefix.rounds_run
    # Telemetry rides along on every result and keeps its JSON schema.
    stats = result.stats.as_dict()
    validate_stats_dict(stats)
    assert stats["counters"]["chase.rounds"] >= 1
    assert stats["rounds"], "per-round records must be populated"


def test_bench_micro_piece_unifiers(benchmark):
    rule = parse_rule("R(x, x1), G(x, u), G(u, u1) -> exists z. R(u1, z), G(x1, z)")
    query = phi_r_n(2)

    def enumerate_unifiers():
        return list(iter_piece_unifiers(query, rule, FreshVariables()))

    unifiers = benchmark(enumerate_unifiers)
    assert unifiers


def test_bench_micro_containment(benchmark):
    big = parse_query(
        "q(x) := exists a, b, c. E(x, a), E(a, b), E(b, c), E(c, x)"
    )
    small = parse_query("q(x) := exists a. E(x, a)")
    verdict = benchmark(is_contained_in, big, small)
    assert verdict


def test_bench_micro_canonical_key(benchmark):
    from repro.frontier import all_markings

    marking = next(iter(all_markings(phi_r_n(2))))
    key = benchmark(_canonical_key, marking)
    assert key


def test_bench_micro_full_process_n2(benchmark):
    result = benchmark(run_process, phi_r_n(2))
    assert len(result.survivors) >= 8


def test_bench_micro_td_chase_three_rounds(benchmark):
    from repro.workloads import green_path

    base = green_path(3)
    theory = t_d()

    def three_rounds():
        return chase(theory, base, budget=ChaseBudget(max_rounds=3, max_atoms=100_000))

    result = benchmark(three_rounds)
    assert result.rounds_run == 3
