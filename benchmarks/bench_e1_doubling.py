"""E1 — Theorem 5(B): rew(phi_R^n) contains the G^{2^n} path.

The headline of the paper's Sections 10-11: T_d is BDD, yet its rewritings
need disjuncts exponential in the query size.  The bench runs the
five-operation process per n and reports the doubling series.
"""

from repro.bench import Table, grows_at_least_geometrically
from repro.frontier.process import run_process
from repro.frontier.td import g_path_query, phi_r_n
from repro.logic.containment import are_equivalent

DEPTHS = (1, 2, 3, 4)


def run_doubling() -> Table:
    table = Table(
        "E1: T_d rewriting doubling (Theorem 5B)",
        [
            "n",
            "|phi_R^n|",
            "process steps",
            "disjuncts",
            "max disjunct",
            "G^(2^n) size",
            "G^(2^n) in rew",
        ],
    )
    for depth in DEPTHS:
        query = phi_r_n(depth)
        result = run_process(query)
        rewriting = result.rewriting()
        target = g_path_query(2 ** depth)
        found = any(are_equivalent(d, target) for d in rewriting)
        table.add(
            depth,
            query.size,
            result.steps,
            len(rewriting),
            rewriting.max_disjunct_size(),
            2 ** depth,
            found,
        )
    table.note("shape: query grows linearly (2n+1), disjunct size doubles (2^n)")
    return table


def test_bench_e1_doubling(benchmark, report):
    table = benchmark.pedantic(run_doubling, rounds=1, iterations=1)
    report(table)
    assert all(table.column("G^(2^n) in rew"))
    assert grows_at_least_geometrically(table.column("max disjunct"), ratio=1.5)
    # The witness disjunct is exponential while the query is linear.
    assert table.column("G^(2^n) size") == [2, 4, 8, 16]
    assert table.column("|phi_R^n|") == [3, 5, 7, 9]
