"""E10 — chase variants: restricted <= semi-oblivious <= oblivious.

Why the paper fixes the *semi-oblivious Skolem* chase (footnotes 13/15):
the oblivious chase invents a witness per body match (bigger), the
restricted chase reuses satisfied heads (smallest, when it terminates,
but non-deterministic and without Observation 8's literal monotonicity).

Comparison protocol: the two witness-inventing variants are round-parallel
and compared at equal depth (semi <= oblivious atom-for-atom semantics);
the restricted chase fires sequentially, so it is run to *termination* on
inputs where satisfied heads stop it, and its final model is compared
against the still-growing Skolem materializations.
"""

from repro.bench import Table
from repro.chase import ChaseBudget, chase, oblivious_chase, restricted_chase
from repro.logic import parse_instance
from repro.workloads import (
    edge_cycle,
    exercise23,
    t_a,
    university_database,
    university_ontology,
)


def _cases():
    # Instances on which the restricted chase terminates (a loop or a
    # complete witness absorbs the head checks).
    yield "T_a with looped mother", t_a(), parse_instance(
        "Human(abel). Mother(abel, eve). Mother(eve, eve)"
    ), 6
    yield "Ex23 cycle", exercise23(), edge_cycle(3), 6
    yield "university", university_ontology(), university_database(
        30, 6, 10, seed=9
    ), 6


def run_chase_variants() -> Table:
    table = Table(
        "E10: chase variant sizes",
        [
            "case",
            "depth",
            "restricted (final)",
            "restricted done",
            "semi-oblivious",
            "oblivious",
            "semi<=obl",
        ],
    )
    for name, theory, base, rounds in _cases():
        semi = chase(
            theory, base, budget=ChaseBudget(max_rounds=rounds, max_atoms=500_000)
        )
        obl = oblivious_chase(theory, base, max_rounds=rounds, max_atoms=500_000)
        res = restricted_chase(theory, base, max_rounds=50, max_atoms=500_000)
        table.add(
            name,
            rounds,
            len(res.instance),
            res.terminated,
            len(semi.instance),
            len(obl.instance),
            len(semi.instance) <= len(obl.instance),
        )
    table.note("restricted terminates with the smallest result; "
               "oblivious never beats semi-oblivious")
    return table


def test_bench_e10_chase_variants(benchmark, report):
    table = benchmark.pedantic(run_chase_variants, rounds=1, iterations=1)
    report(table)
    assert all(table.column("restricted done"))
    assert all(table.column("semi<=obl"))
    restricted = table.column("restricted (final)")
    semi = table.column("semi-oblivious")
    assert all(r <= s for r, s in zip(restricted, semi))
