"""E8 — Example 28: the infinite theory that breaks the FUS/FES conjecture.

Each finite slice {E_i(x,y) -> exists z. E_{i-1}(y,z) : i <= K} is BDD
and Core Terminating, but the bound c_{T,D} for the instance {E_K(a,b)}
is exactly K: as the slice (and the data's top level) grows, so does the
bound — no uniform c_T can cover the union, which is the paper's
Example-28 refutation for infinite theories.
"""

from repro.bench import Table
from repro.chase import core_termination
from repro.logic import parse_instance
from repro.workloads import example28_slice

LEVELS = (1, 2, 3, 4, 5)


def run_infinite_slices() -> Table:
    table = Table(
        "E8: Example-28 slices — the bound tracks the level",
        ["slice K", "instance", "c_{T,D}", "model facts"],
    )
    for level in LEVELS:
        theory = example28_slice(level)
        base = parse_instance(f"E{level}(a, b)")
        witness = core_termination(theory, base, max_depth=level + 3)
        assert witness is not None
        table.add(level, f"E{level}(a,b)", witness.bound, len(witness.model))
    table.note("c grows linearly with K: uniformity fails for the union")
    return table


def test_bench_e8_infinite_slices(benchmark, report):
    table = benchmark.pedantic(run_infinite_slices, rounds=1, iterations=1)
    report(table)
    assert table.column("c_{T,D}") == list(LEVELS)
