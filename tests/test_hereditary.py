"""Tests for the hereditary-BDD probe (Section 9's closing conjecture)."""

from __future__ import annotations

import pytest

from repro.frontier import conjecture_scan, probe_hereditary_bdd
from repro.frontier.hereditary import projected_atomic_queries
from repro.rewriting import RewritingBudget
from repro.workloads import example41, example42_tc, t_a, t_p

FAST = RewritingBudget(max_kept=100, max_steps=5_000)


class TestProjectedQueries:
    def test_counts(self):
        queries = projected_atomic_queries(t_a())
        # Human/1 -> 2 projections; Mother/2 -> 4.
        assert len(queries) == 6

    def test_full_projection_is_boolean(self):
        queries = projected_atomic_queries(t_p())
        assert any(q.is_boolean() for q in queries)

    def test_no_projection_is_all_free(self):
        queries = projected_atomic_queries(t_p())
        assert any(len(q.answer_vars) == 2 for q in queries)


class TestProbe:
    def test_linear_theories_certify_hereditarily(self):
        report = probe_hereditary_bdd(t_p(), FAST)
        assert report.hereditary_bdd_certified
        assert report.non_bdd_subsets == []

    def test_ta_certifies(self):
        report = probe_hereditary_bdd(t_a(), FAST)
        assert report.hereditary_bdd_certified

    @pytest.mark.slow
    def test_tc_is_not_hereditary_bdd(self):
        """The key case for the conjecture: T_c (BDD, not bd-local) has a
        non-BDD subset — its second rule alone diverges — so it is NOT a
        hereditary-BDD counterexample.  Consistent with the paper's
        conjecture."""
        report = probe_hereditary_bdd(example42_tc(), FAST)
        assert not report.hereditary_bdd_certified
        assert (1,) in report.non_bdd_subsets

    def test_example41_refuted_at_the_singleton(self):
        report = probe_hereditary_bdd(example41(), FAST)
        assert report.non_bdd_subsets == [(0,)]

    def test_subset_cap(self):
        report = probe_hereditary_bdd(t_a(), FAST, max_subset_size=1)
        assert all(len(v.rules) == 1 for v in report.verdicts)


class TestConjectureScan:
    @pytest.mark.slow
    def test_catalogue_scan_matches_the_conjecture(self):
        rows = conjecture_scan([t_p(), t_a(), example41()], FAST)
        verdicts = {name: (cert, refuted) for name, cert, refuted in rows}
        assert verdicts["T_p"] == (True, False)
        assert verdicts["T_a"] == (True, False)
        assert verdicts["Ex41"] == (False, True)
