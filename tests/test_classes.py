"""Tests for the theory-class recognizers (Section 1's catalogue)."""

from __future__ import annotations

import pytest

from repro.classes import (
    atomic_queries,
    classify,
    is_datalog,
    is_sticky,
    probe_backward_shy,
    probe_boundedness,
    repeats_only_answer_variables,
    stickiness,
)
from repro.logic import parse_query, parse_theory
from repro.workloads import (
    edge_path,
    example39_sticky,
    example41,
    example42_tc,
    t_a,
    t_d,
    t_p,
    university_ontology,
)


class TestStickiness:
    def test_linear_theories_are_sticky(self):
        assert is_sticky(t_p())
        assert is_sticky(university_ontology())

    def test_example_39_is_sticky(self):
        """The paper's one-rule sticky theory (Example 39)."""
        report = stickiness(example39_sticky())
        assert report.sticky

    def test_example_41_is_not_sticky(self):
        """x joins E and R but vanishes from the head: marked twice."""
        report = stickiness(example41())
        assert not report.sticky
        assert report.offending_rules == [0]

    def test_tc_is_not_sticky(self):
        assert not is_sticky(example42_tc())

    def test_transitivity_is_not_sticky(self):
        transitive = parse_theory("E(x, y), E(y, z) -> E(x, z)")
        assert not is_sticky(transitive)

    def test_seed_marks_repeated_dropped_variable(self):
        # y joins Q and S but vanishes from the head: both occurrences are
        # marked by the seed step, so the theory is not sticky.
        theory = parse_theory("Q(x, y), S(y) -> P(x)")
        report = stickiness(theory)
        assert not report.sticky
        assert (0, 0, 1) in report.marked_occurrences  # y in Q(x, y)
        assert (0, 1, 0) in report.marked_occurrences  # y in S(y)

    def test_propagation_through_head_positions(self):
        # Rule 0 drops y, marking position (Q, 1).  Rule 1 writes u into
        # that marked position, so u's (single) body occurrence in R gets
        # marked by propagation — stickiness still holds since u does not
        # repeat.
        theory = parse_theory(
            """
            Q(x, y) -> P(x)
            R(u, v) -> Q(v, u)
            """
        )
        report = stickiness(theory)
        assert report.sticky
        from repro.logic.signature import Predicate

        assert (Predicate("R", 2), 0) in report.marked_positions


class TestBackwardShy:
    def test_repeats_only_answer_variables(self):
        good = parse_query("q(x) := exists y. E(x, y), P(x)")
        bad = parse_query("q() := exists x, y. E(x, y), P(x)")
        assert repeats_only_answer_variables(good)
        assert not repeats_only_answer_variables(bad)

    def test_atomic_queries_cover_signature(self):
        queries = atomic_queries(t_a())
        assert {q.atoms[0].predicate.name for q in queries} == {"Human", "Mother"}

    def test_linear_theory_probe(self):
        probe = probe_backward_shy(t_p())
        assert probe.complete
        assert probe.backward_shy_on_sample

    def test_ta_probe(self):
        probe = probe_backward_shy(t_a())
        assert probe.backward_shy_on_sample


class TestBoundedness:
    def test_bounded_datalog(self):
        theory = parse_theory("E(x, y) -> F(x, y)\nF(x, y) -> Connected(x)")
        probe = probe_boundedness(theory, [edge_path(n) for n in (2, 4, 8)])
        assert probe.bounded_on_sample
        assert probe.max_depth == 2

    def test_unbounded_transitive_closure(self):
        transitive = parse_theory("E(x, y), E(y, z) -> E(x, z)")
        probe = probe_boundedness(transitive, [edge_path(n) for n in (4, 8, 16)])
        assert not probe.bounded_on_sample

    def test_rejects_existential_theories(self):
        with pytest.raises(ValueError):
            probe_boundedness(t_a(), [edge_path(2)])


class TestClassification:
    def test_report_flags(self):
        report = classify(t_d())
        assert report.binary
        assert not report.single_head
        assert not report.sticky
        assert not report.datalog

    def test_known_bdd_by_syntax(self):
        assert classify(t_p()).known_bdd_by_syntax()
        assert classify(example39_sticky()).known_bdd_by_syntax()
        assert not classify(example41()).known_bdd_by_syntax()

    def test_lines_render(self):
        lines = classify(university_ontology()).lines()
        assert lines[0].startswith("University")
        assert any("linear" in line and "yes" in line for line in lines)

    def test_is_datalog(self):
        assert is_datalog(example41())
        assert not is_datalog(t_a())
