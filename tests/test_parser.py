"""Unit tests for repro.logic.parser."""

from __future__ import annotations

import pytest

from repro.logic.parser import (
    ParseError,
    parse_instance,
    parse_query,
    parse_rule,
    parse_theory,
)
from repro.logic.terms import Constant, Variable


class TestRuleParsing:
    def test_simple_rule(self):
        rule = parse_rule("E(x, y) -> exists z. E(y, z)")
        assert len(rule.body) == 1
        assert rule.existential == frozenset({Variable("z")})
        assert rule.frontier() == {Variable("y")}

    def test_datalog_rule(self):
        rule = parse_rule("Mother(x, y) -> Human(y)")
        assert rule.is_datalog()

    def test_multi_head_rule(self):
        rule = parse_rule("R(x, x1), G(x, u), G(u, u1) -> exists z. R(u1, z), G(x1, z)")
        assert len(rule.head) == 2
        assert not rule.is_single_head()

    def test_empty_body_with_true(self):
        rule = parse_rule("true -> exists x. R(x, x)")
        assert rule.body == ()
        assert rule.existential == frozenset({Variable("x")})

    def test_universal_head_variable(self):
        rule = parse_rule("true -> exists z. R(x, z)")
        assert rule.universal_head_variables() == {Variable("x")}
        assert rule.frontier() == {Variable("x")}

    def test_quoted_constant_in_rule(self):
        rule = parse_rule("Siblings('abel', x) -> Human(x)")
        assert Constant("abel") in rule.body[0].args

    def test_primes_in_variable_names(self):
        rule = parse_rule("R(x, x'), G(x, u) -> exists z. R(u, z)")
        assert Variable("x'") in rule.body_variables()

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("E(x, y) -> E(y, x) garbage")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("E(x, y)")


class TestTheoryParsing:
    def test_multiple_rules_with_comments(self):
        theory = parse_theory(
            """
            # the classic pair
            Human(y) -> exists z. Mother(y, z)
            Mother(x, y) -> Human(y)   # mothers are human
            """,
            name="T_a",
        )
        assert len(theory) == 2
        assert theory.name == "T_a"

    def test_semicolon_separator(self):
        theory = parse_theory("P(x) -> Q(x); Q(x) -> R(x)")
        assert len(theory) == 2

    def test_rules_get_labels(self):
        theory = parse_theory("P(x) -> Q(x)\nQ(x) -> R(x)")
        assert [rule.label for rule in theory] == ["r0", "r1"]


class TestQueryParsing:
    def test_explicit_answer_tuple(self):
        query = parse_query("q(x, y) := R(x, z), G(z, y)")
        assert query.answer_vars == (Variable("x"), Variable("y"))
        assert query.size == 2

    def test_exists_prefix_infers_answers(self):
        query = parse_query("exists z. R(x, z), G(z, y)")
        assert query.answer_vars == (Variable("x"), Variable("y"))

    def test_no_quantifier_everything_free(self):
        query = parse_query("R(x, y)")
        assert query.answer_vars == (Variable("x"), Variable("y"))

    def test_answer_vars_override(self):
        query = parse_query("R(x, y)", answer_vars=[])
        assert query.is_boolean()

    def test_boolean_query_via_head(self):
        query = parse_query("q() := exists x. P(x)")
        assert query.is_boolean()

    def test_constants_in_query(self):
        query = parse_query("q() := exists x. Siblings('abel', x)")
        assert Constant("abel") in query.atoms[0].args

    def test_colon_dash_alias(self):
        query = parse_query("q(x) :- P(x)")
        assert query.answer_vars == (Variable("x"),)


class TestInstanceParsing:
    def test_facts_are_constants(self):
        instance = parse_instance("E(a, b). E(b, c)")
        assert len(instance) == 2
        assert Constant("a") in instance.domain()

    def test_newline_separator(self):
        instance = parse_instance("P(a)\nP(b)")
        assert len(instance) == 2

    def test_numbers_become_constants(self):
        instance = parse_instance("Age(abel, 930)")
        assert Constant("930") in instance.domain()

    def test_comments_ignored(self):
        instance = parse_instance("P(a)  # a fact\n# only a comment\nP(b)")
        assert len(instance) == 2

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_instance("P(@)")
