"""Tests for textual serialization (repro.logic.serialize)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.logic import parse_instance, parse_theory
from repro.logic.serialize import (
    SerializationError,
    dump_instance,
    dump_query,
    dump_theory,
    load_instance,
    load_query,
    load_theory,
    save_instance,
    save_query,
    save_theory,
)
from repro.workloads import (
    edge_path,
    example39_sticky,
    exercise23,
    t_a,
    t_d,
    university_ontology,
)

THEORIES = [t_a, exercise23, example39_sticky, t_d, university_ontology]


class TestTheoryRoundTrip:
    @pytest.mark.parametrize("factory", THEORIES)
    def test_dump_parse_identity(self, factory):
        theory = factory()
        reparsed = parse_theory(dump_theory(theory))
        assert len(reparsed) == len(theory)
        for original, parsed in zip(theory, reparsed):
            assert parsed.body == original.body
            assert parsed.head == original.head
            assert parsed.existential == original.existential

    def test_save_load_file(self, tmp_path):
        target = tmp_path / "theory.tgd"
        save_theory(t_a(), target)
        loaded = load_theory(target, name="T_a")
        assert len(loaded) == 2
        assert loaded.name == "T_a"

    def test_name_comment_included(self):
        assert "# theory: T_a" in dump_theory(t_a())


class TestInstanceRoundTrip:
    def test_dump_parse_identity(self):
        instance = parse_instance("E(a, b). P(a). Q(b, c, d)")
        assert load_equivalent(instance)

    def test_save_load_file(self, tmp_path):
        target = tmp_path / "data.facts"
        save_instance(edge_path(3), target)
        assert load_instance(target) == edge_path(3)

    def test_skolem_terms_rejected(self):
        run = chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=2))
        with pytest.raises(SerializationError):
            dump_instance(run.instance)

    def test_base_of_chase_still_serializable(self):
        run = chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=2))
        assert "Human(abel)" in dump_instance(run.base)


def load_equivalent(instance):
    return parse_instance(dump_instance(instance)) == instance


class TestQueryDump:
    def test_query_dump_reparses(self):
        from repro.logic import parse_query
        from repro.logic.containment import are_equivalent

        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        reparsed = parse_query(dump_query(query).strip())
        assert are_equivalent(query, reparsed)

    def test_constants_quoted_and_round_trip_exact(self):
        # Bare identifiers parse as *variables*, so the dump must quote
        # constants or the round trip silently changes the query.
        from repro.logic import parse_query

        query = parse_query("q(x) := R('a0', x), E(x, 'b')")
        text = dump_query(query)
        assert "'a0'" in text and "'b'" in text
        reparsed = parse_query(text.strip())
        assert reparsed.atoms == query.atoms
        assert reparsed.answer_vars == query.answer_vars

    def test_dump_is_stable_cache_key(self):
        from repro.logic import parse_query

        query = parse_query("q(x) := exists y. E(x, y)")
        assert dump_query(query) == dump_query(parse_query(dump_query(query).strip()))

    def test_boolean_query(self):
        from repro.logic import parse_query

        query = parse_query("q() := exists x, y. E(x, y)")
        reparsed = parse_query(dump_query(query).strip())
        assert reparsed.is_boolean()
        assert reparsed.atoms == query.atoms

    def test_skolem_terms_rejected(self):
        from repro.logic import parse_query
        from repro.logic.terms import FunctionTerm, Variable

        query = parse_query("q() := exists x. E(x, x)")
        mangled = query.substitute(
            {Variable("x"): FunctionTerm("f_w0_deadbeef", (Variable("y"),))}
        )
        with pytest.raises(SerializationError):
            dump_query(mangled)

    def test_save_load_file(self, tmp_path):
        from repro.logic import parse_query

        query = parse_query("q(x) := exists y. R('a0', x), E(x, y)")
        target = tmp_path / "query.cq"
        save_query(query, target)
        loaded = load_query(target)
        assert loaded.atoms == query.atoms
        assert loaded.answer_vars == query.answer_vars
