"""Property-based equivalence: the SQLite path == the in-memory path.

Linear theories are BDD (Section 1), so certain answers computed by
evaluating the UCQ rewriting *inside SQLite* must coincide exactly with
answers from a materialized chase in RAM.  Randomized linear worlds
(same generators as ``test_fuzz_linear.py``) drive four pinned
equalities per seed:

* ``answer(..., backend="sqlite")`` == ``answer_by_materialization``;
* ``OMQASession.answer(strategy="sql")`` == ``strategy="rewrite"``;
* SQL evaluation of the rewriting == in-memory evaluation of the same
  rewriting over the same base facts;
* the store's content digest == the instance's digest (round-trip
  identity through the term dictionary and back).
"""

from __future__ import annotations

import random

import pytest

from repro.logic.containment import evaluate_ucq
from repro.rewriting import (
    OMQASession,
    RewritingBudget,
    answer,
    answer_by_materialization,
    rewrite,
)
from repro.rewriting.bdd import depth_bound_from_rewriting
from repro.storage import SQLiteStore, content_digest, evaluate_ucq_sql
from tests.test_fuzz_linear import (
    random_instance,
    random_linear_theory,
    random_query,
)

BUDGET = RewritingBudget(max_kept=300, max_steps=20_000)


def _world(seed: int):
    rng = random.Random(1000 + seed)
    return random_linear_theory(rng), random_instance(rng), random_query(rng)


@pytest.mark.parametrize("seed", range(6))
def test_sqlite_backend_matches_materialization(seed):
    theory, instance, query = _world(seed)
    prepared = rewrite(theory, query, BUDGET)
    if not prepared.complete:
        pytest.skip("rewriting truncated under the fuzz budget")
    # The certified depth bound keeps the materialization side exact even
    # when the linear theory's chase does not terminate (still BDD).
    depth = depth_bound_from_rewriting(theory, query, BUDGET)
    by_chase = answer_by_materialization(theory, query, instance, depth=depth)
    by_sqlite = answer(theory, query, instance, backend="sqlite")
    assert by_sqlite == by_chase, f"seed={seed}\n{theory}\n{instance}\n{query}"


@pytest.mark.parametrize("seed", range(6))
def test_session_sql_strategy_matches_rewrite(seed):
    theory, instance, query = _world(100 + seed)
    session = OMQASession(theory, rewriting_budget=BUDGET)
    try:
        try:
            by_rewrite = session.answer(query, instance, strategy="rewrite")
        except RuntimeError:
            pytest.skip("rewriting truncated under the fuzz budget")
        by_sql = session.answer(query, instance, strategy="sql")
        assert by_sql == by_rewrite, f"seed={seed}\n{theory}\n{instance}\n{query}"
        # Second ask hits the compiled-SQL cache and must not drift.
        assert session.answer(query, instance, strategy="sql") == by_sql
        assert session.cache_info()["sql"]["hits"] >= 1
    finally:
        session.close()


@pytest.mark.parametrize("seed", range(6))
def test_sql_ucq_evaluation_matches_memory(seed):
    theory, instance, query = _world(200 + seed)
    prepared = rewrite(theory, query, BUDGET)
    if not prepared.complete:
        pytest.skip("rewriting truncated under the fuzz budget")
    in_memory = evaluate_ucq(prepared.ucq, instance)
    with SQLiteStore(":memory:") as store:
        store.add_many(instance)
        in_sql = evaluate_ucq_sql(prepared.ucq, store)
    assert in_sql == in_memory, f"seed={seed}\n{theory}\n{instance}\n{query}"


def test_answer_sqlite_guards_prepopulated_db(tmp_path):
    """A db holding facts other than ``instance`` must be refused.

    Evaluating the compiled rewriting over the union of stored and
    passed facts would return a superset of the certain answers; an
    identical (digest-equal) db is reused as-is.
    """
    from repro.logic import parse_instance, parse_query, parse_theory
    from repro.storage import StoreChaseError

    theory = parse_theory(
        "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)",
        name="guard",
    )
    query = parse_query("q(x) := exists y. Mother(x, y)")
    instance = parse_instance("Human(abel)")
    db = str(tmp_path / "answers.db")
    first = answer(theory, query, instance, backend="sqlite", db_path=db)
    # Re-asking over the now-populated db with the same instance reuses it.
    assert answer(theory, query, instance, backend="sqlite", db_path=db) == first
    with pytest.raises(StoreChaseError):
        answer(
            theory,
            query,
            parse_instance("Human(cain)"),
            backend="sqlite",
            db_path=db,
        )


@pytest.mark.parametrize("seed", range(8))
def test_digest_survives_store_round_trip(seed):
    rng = random.Random(3000 + seed)
    instance = random_instance(rng)
    with SQLiteStore(":memory:") as store:
        store.add_many(instance)
        assert store.digest() == content_digest(instance)
        assert content_digest(store.to_instance()) == content_digest(instance)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(12))
def test_sqlite_backend_fuzz_slow(seed):
    """The wider sweep, mirroring test_linear_fuzz_agreement's seeds."""
    rng = random.Random(5000 + seed)
    theory = random_linear_theory(rng)
    for trial in range(3):
        instance = random_instance(rng)
        query = random_query(rng)
        prepared = rewrite(theory, query, BUDGET)
        if not prepared.complete:
            continue
        depth = depth_bound_from_rewriting(theory, query, BUDGET)
        by_chase = answer_by_materialization(theory, query, instance, depth=depth)
        by_sqlite = answer(theory, query, instance, backend="sqlite")
        assert by_sqlite == by_chase, (
            f"seed={seed} trial={trial}\n{theory}\n{instance}\n{query}"
        )
