"""Unit tests for repro.logic.query and repro.logic.containment."""

from __future__ import annotations

import pytest

from repro.logic.atoms import atom
from repro.logic.containment import (
    are_equivalent,
    core_query,
    evaluate_ucq,
    is_contained_in,
    minimize_ucq,
    ucq_holds,
)
from repro.logic.parser import parse_instance, parse_query
from repro.logic.query import ConjunctiveQuery, UnionOfCQs, boolean_query
from repro.logic.terms import Constant, FreshVariables, Variable


class TestQueryStructure:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), ())

    def test_answer_variable_must_occur(self):
        with pytest.raises(ValueError):
            parse_query("q(w) := P(x)")

    def test_duplicate_answer_vars_allowed(self):
        # Theorem 1's disjuncts may repeat an answer variable: q(x, x).
        x = Variable("x")
        query = ConjunctiveQuery((x, x), (atom("E", x, x),))
        from repro.logic.homomorphism import evaluate, holds

        loops = parse_instance("E(a, a). E(b, c)")
        assert evaluate(query, loops) == {(Constant("a"), Constant("a"))}
        assert holds(query, loops, (Constant("a"), Constant("a")))
        assert not holds(query, loops, (Constant("a"), Constant("b")))

    def test_size_counts_atoms(self):
        assert parse_query("q() := exists x, y. E(x, y), P(x)").size == 2

    def test_connected_components_split(self):
        query = parse_query("q(x, z) := exists y. E(x, y), P(z)")
        components = query.connected_components()
        assert len(components) == 2
        answers = {tuple(v.name for v in c.answer_vars) for c in components}
        assert answers == {("x",), ("z",)}

    def test_substitute_may_merge_answers(self):
        query = parse_query("q(x, y) := E(x, y)")
        merged = query.substitute({Variable("x"): Variable("y")})
        assert merged.answer_vars == (Variable("y"), Variable("y"))

    def test_substitute_rejects_non_variable_answers(self):
        query = parse_query("q(x, y) := E(x, y)")
        with pytest.raises(ValueError):
            query.substitute({Variable("x"): Constant("a")})

    def test_rename_apart(self):
        query = parse_query("q(x) := exists y. E(x, y)")
        renamed = query.rename_apart(FreshVariables())
        assert renamed.variables().isdisjoint(query.variables())
        assert renamed.size == query.size

    def test_canonical_instance_has_variables_as_domain(self):
        query = parse_query("q(x) := exists y. E(x, y)")
        canonical = query.canonical_instance()
        assert Variable("x") in canonical.domain()


class TestContainment:
    def test_longer_path_contained_in_shorter(self):
        # "x has a 2-step path" implies "x has a 1-step path".
        two = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        one = parse_query("q(x) := exists y. E(x, y)")
        assert is_contained_in(two, one)
        assert not is_contained_in(one, two)

    def test_containment_respects_answer_positions(self):
        forward = parse_query("q(x) := exists y. E(x, y)")
        backward = parse_query("q(x) := exists y. E(y, x)")
        assert not is_contained_in(forward, backward)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            is_contained_in(parse_query("q(x) := P(x)"), parse_query("q() := exists x. P(x)"))

    def test_equivalence_up_to_renaming(self):
        first = parse_query("q(x) := exists y. E(x, y)")
        second = parse_query("q(x) := exists w. E(x, w)")
        assert are_equivalent(first, second)

    def test_constant_specializes(self):
        with_constant = parse_query("q() := E('a', 'b')")
        general = parse_query("q() := exists x, y. E(x, y)")
        assert is_contained_in(with_constant, general)
        assert not is_contained_in(general, with_constant)


class TestCore:
    def test_redundant_atom_folds_away(self):
        # E(x,y) & E(x,z) has core E(x,y).
        query = parse_query("q(x) := exists y, z. E(x, y), E(x, z)")
        core = core_query(query)
        assert core.size == 1
        assert are_equivalent(core, query)

    def test_core_keeps_answer_variables(self):
        query = parse_query("q(x, y) := exists z. E(x, z), E(y, z)")
        core = core_query(query)
        assert set(core.answer_vars) == {Variable("x"), Variable("y")}
        assert core.size == 2  # x and y are distinct answers; nothing folds

    def test_triangle_is_its_own_core(self):
        query = parse_query(
            "q() := exists x, y, z. E(x, y), E(y, z), E(z, x)"
        )
        assert core_query(query).size == 3

    def test_path_with_backtrack_folds(self):
        # E(x,y), E(z,y) boolean: folds to a single edge.
        query = parse_query("q() := exists x, y, z. E(x, y), E(z, y)")
        assert core_query(query).size == 1


class TestUcq:
    def test_minimize_drops_contained_disjuncts(self):
        specific = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        general = parse_query("q(x) := exists y. E(x, y)")
        minimized = minimize_ucq([specific, general])
        assert len(minimized) == 1
        assert are_equivalent(minimized.disjuncts()[0], general)

    def test_minimize_keeps_incomparable(self):
        forward = parse_query("q(x) := exists y. E(x, y)")
        backward = parse_query("q(x) := exists y. E(y, x)")
        assert len(minimize_ucq([forward, backward])) == 2

    def test_evaluate_ucq_unions_answers(self):
        ucq = UnionOfCQs(
            [
                parse_query("q(x) := exists y. E(x, y)"),
                parse_query("q(x) := exists y. E(y, x)"),
            ]
        )
        instance = parse_instance("E(a, b)")
        assert evaluate_ucq(ucq, instance) == {(Constant("a"),), (Constant("b"),)}

    def test_ucq_holds(self):
        ucq = UnionOfCQs([boolean_query((atom("P", Variable("x")),))])
        assert ucq_holds(ucq, parse_instance("P(a)"))
        assert not ucq_holds(ucq, parse_instance("Q(a)"))

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            UnionOfCQs(
                [parse_query("q(x) := P(x)"), parse_query("q() := exists x. P(x)")]
            )

    def test_max_disjunct_size(self):
        ucq = UnionOfCQs(
            [
                parse_query("q() := exists x. P(x)"),
                parse_query("q() := exists x, y. E(x, y), P(x)"),
            ]
        )
        assert ucq.max_disjunct_size() == 2
