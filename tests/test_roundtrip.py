"""Round-trip and determinism tests: repr/parse, chase re-runs, canonical keys."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import MarkedQuery
from repro.frontier.process import _canonical_key
from repro.logic import parse_query, parse_rule
from repro.logic.atoms import atom
from repro.logic.terms import FreshVariables, Variable
from repro.workloads import (
    edge_path,
    example39_sticky,
    example42_tc,
    exercise23,
    t_a,
    t_d,
    t_p,
    university_ontology,
)

ALL_THEORIES = [
    t_a,
    t_p,
    exercise23,
    example39_sticky,
    example42_tc,
    t_d,
    university_ontology,
]


class TestReprParseRoundTrip:
    @pytest.mark.parametrize("factory", ALL_THEORIES)
    def test_every_rule_reparses_to_itself(self, factory):
        for rule in factory():
            reparsed = parse_rule(repr(rule))
            assert reparsed.body == rule.body
            assert reparsed.head == rule.head
            assert reparsed.existential == rule.existential

    def test_query_repr_reparses_equivalently(self):
        from repro.logic.containment import are_equivalent

        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        reparsed = parse_query(repr(query))
        assert reparsed.answer_vars == query.answer_vars
        assert are_equivalent(reparsed, query)


class TestChaseDeterminism:
    @pytest.mark.parametrize("factory", [t_a, exercise23, t_d])
    def test_two_runs_identical(self, factory):
        theory = factory()
        base = edge_path(2, predicate="E" if factory is not t_d else "G")
        first = chase(theory, base, budget=ChaseBudget(max_rounds=3, max_atoms=100_000))
        second = chase(theory, base, budget=ChaseBudget(max_rounds=3, max_atoms=100_000))
        assert first.instance == second.instance
        assert first.round_added == second.round_added

    def test_provenance_off_same_atoms(self):
        base = edge_path(3)
        with_prov = chase(exercise23(), base, budget=ChaseBudget(max_rounds=4, max_atoms=50_000))
        without = chase(
            exercise23(), base,
            budget=ChaseBudget(max_rounds=4, max_atoms=50_000),
            track_provenance=False,
        )
        assert with_prov.instance == without.instance
        assert without.derivations == {}


class TestCanonicalKeys:
    def _rename(self, mq: MarkedQuery, suffix: str) -> MarkedQuery:
        mapping = {v: Variable(f"{v.name}_{suffix}") for v in mq.variables()}
        atoms = tuple(a.substitute(mapping) for a in mq.atoms)
        marked = frozenset(mapping[v] for v in mq.marked)
        answers = tuple(mapping[v] for v in mq.answer_vars)
        return MarkedQuery(answers, atoms, marked)

    def test_key_invariant_under_renaming(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        mq = MarkedQuery(
            (x,),
            (atom("R", x, y), atom("G", y, z)),
            frozenset({x}),
        )
        assert _canonical_key(mq) == _canonical_key(self._rename(mq, "w"))

    def test_key_distinguishes_markings(self):
        x, y = Variable("x"), Variable("y")
        base = (atom("G", x, y),)
        a = MarkedQuery((), base, frozenset({x}))
        b = MarkedQuery((), base, frozenset({x, y}))
        assert _canonical_key(a) != _canonical_key(b)

    def test_key_distinguishes_colours(self):
        x, y = Variable("x"), Variable("y")
        red = MarkedQuery((), (atom("R", x, y),), frozenset({x}))
        green = MarkedQuery((), (atom("G", x, y),), frozenset({x}))
        assert _canonical_key(red) != _canonical_key(green)

    def test_key_invariant_for_symmetric_queries(self):
        # Two interchangeable branches: canonicalization must not depend on
        # the variable names chosen for them.
        x, a, b = Variable("x"), Variable("a"), Variable("b")
        first = MarkedQuery(
            (), (atom("G", x, a), atom("G", x, b)), frozenset({x})
        )
        c, d = Variable("zz"), Variable("aa")
        second = MarkedQuery(
            (), (atom("G", x, c), atom("G", x, d)), frozenset({x})
        )
        assert _canonical_key(first) == _canonical_key(second)


class TestSkolemStability:
    def test_same_rule_text_same_functors(self):
        from repro.chase.skolem import skolemize

        first = skolemize(parse_rule("Human(y) -> exists z. Mother(y, z)"))
        second = skolemize(parse_rule("Human(y) -> exists z. Mother(y, z)"))
        assert first.head == second.head

    def test_chase_prefix_then_resume_matches_repr(self):
        """Skolem terms are stable across runs, so even reprs agree."""
        base = edge_path(2)
        first = chase(exercise23(), base, budget=ChaseBudget(max_rounds=3, max_atoms=50_000))
        second = chase(exercise23(), base, budget=ChaseBudget(max_rounds=3, max_atoms=50_000))
        assert sorted(map(repr, first.instance)) == sorted(map(repr, second.instance))
