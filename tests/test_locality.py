"""Tests for locality (Def. 30), bd-locality (Def. 40) and the paper's
witness examples (Observation 31, Examples 39 and 42)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import (
    find_bd_locality_constant,
    find_locality_constant,
    linear_locality_constant,
    locality_defect,
    min_support_size,
    union_of_subset_chases,
)
from repro.logic import parse_query, parse_theory
from repro.rewriting import rewrite
from repro.workloads import (
    edge_cycle,
    edge_path,
    example39_sticky,
    example42_tc,
    sticky_star,
    t_a,
    t_p,
    university_ontology,
)


class TestLinearTheoriesAreLocal:
    def test_tp_witnessed_local_with_constant_one(self):
        assert (
            find_locality_constant(t_p(), [edge_path(3), edge_path(5)], 2, depth=3)
            == 1
        )

    def test_ta_witnessed_local(self):
        from repro.logic import parse_instance

        instances = [parse_instance("Human(a). Human(b). Mother(a, m)")]
        assert find_locality_constant(t_a(), instances, 2, depth=3) == 1

    def test_linear_locality_constant_helper(self):
        assert linear_locality_constant(university_ontology()) == 1
        with pytest.raises(ValueError):
            linear_locality_constant(example42_tc())

    def test_observation_8_monotonicity_verified(self):
        defect = locality_defect(
            t_p(), edge_path(3), bound=1, depth=3, verify_monotonicity=True
        )
        assert defect.witnessed_local


class TestObservation31LinearRewritings:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_rewriting_size_bounded_by_l_times_query_size(self, length):
        """Local theories admit rewritings of linear disjunct size."""
        body = ", ".join(
            f"E(x{i}, x{i + 1})" for i in range(length)
        )
        query = parse_query(f"q(x0) := {body}")
        result = rewrite(t_p(), query)
        assert result.complete
        bound = linear_locality_constant(t_p()) * query.size
        assert result.max_disjunct_size() <= bound


class TestExample39StickyNotLocal:
    @pytest.mark.parametrize("spokes", [2, 3])
    def test_defect_at_bound_equal_spokes(self, spokes):
        defect = locality_defect(
            example39_sticky(), sticky_star(spokes), bound=spokes, depth=spokes
        )
        assert not defect.witnessed_local

    def test_some_atom_needs_every_fact(self):
        """star_k contains a depth-k atom whose support is all k+1 facts."""
        spokes = 3
        theory = example39_sticky()
        star = sticky_star(spokes)
        run = chase(theory, star, budget=ChaseBudget(max_rounds=spokes, max_atoms=100_000))
        supports = [
            min_support_size(theory, star, item, depth=spokes + 1)
            for item in sorted(run.round_added[spokes], key=repr)
        ]
        assert max(s for s in supports if s is not None) == spokes + 1

    def test_example_39_is_bd_local_on_degree_two(self):
        """Restricted to degree-2 instances the sticky theory behaves
        locally (Section 9: sticky theories are bd-local)."""
        theory = example39_sticky()
        # Degree-2 witnesses over the 4-ary E and binary R signatures.
        from repro.logic import parse_instance

        family = [
            parse_instance("E(a, b, b1, c). R(d, t)"),
            parse_instance("E(a, b, b1, c)"),
        ]
        probe = find_bd_locality_constant(
            theory, degree=3, instances=family, max_bound=3, depth=2
        )
        assert probe.constant is not None


class TestExample42TcNotBdLocal:
    @pytest.mark.parametrize("cycle_length", [3, 4, 5])
    def test_cycle_defeats_small_bounds(self, cycle_length):
        defect = locality_defect(
            example42_tc(),
            edge_cycle(cycle_length),
            bound=cycle_length - 1,
            depth=cycle_length,
        )
        assert not defect.witnessed_local

    def test_cycles_have_degree_two(self):
        from repro.logic.gaifman import max_degree

        assert max_degree(edge_cycle(6)) == 2

    def test_bd_probe_reports_failure(self):
        probe = find_bd_locality_constant(
            example42_tc(),
            degree=2,
            instances=[edge_cycle(4)],
            max_bound=3,
            depth=4,
        )
        assert probe.constant is None
        assert probe.defects_at_max_bound

    def test_degree_declaration_enforced(self):
        with pytest.raises(ValueError):
            find_bd_locality_constant(
                example42_tc(),
                degree=1,
                instances=[edge_cycle(4)],
                max_bound=1,
                depth=1,
            )

    def test_whole_cycle_is_the_support(self):
        """The round-n atoms over an n-cycle need every cycle edge."""
        theory = example42_tc()
        cycle = edge_cycle(4)
        run = chase(theory, cycle, budget=ChaseBudget(max_rounds=4, max_atoms=100_000))
        deep = sorted(run.round_added[4], key=repr)
        supports = [
            min_support_size(theory, cycle, item, depth=5) for item in deep
        ]
        assert max(s for s in supports if s is not None) == 4


class TestUnionOfSubsetChases:
    def test_union_is_subset_of_full_chase(self):
        theory = t_p()
        base = edge_path(3)
        union = union_of_subset_chases(theory, base, bound=1, depth=3)
        full = chase(theory, base, budget=ChaseBudget(max_rounds=5, max_atoms=50_000)).instance
        assert union.issubset(full)
