"""Unit tests for repro.chase.skolem (Definitions 3-4)."""

from __future__ import annotations

from repro.chase.skolem import skolemize
from repro.logic.parser import parse_rule
from repro.logic.terms import FunctionTerm, Variable


class TestSkolemization:
    def test_paper_example_definition_4(self):
        """rho = E(x,y,z), P(x) -> exists v. R(y,v,z,v):
        sh(rho) = R(y, f(y,z), z, f(y,z)) — one functor, frontier args."""
        rule = parse_rule("E(x, y, z), P(x) -> exists v. R(y, v, z, v)")
        skolemized = skolemize(rule)
        head = skolemized.head[0]
        assert head.args[0] == Variable("y")
        assert head.args[2] == Variable("z")
        assert isinstance(head.args[1], FunctionTerm)
        assert head.args[1] == head.args[3]
        assert head.args[1].args == (Variable("y"), Variable("z"))

    def test_skolem_ignores_non_frontier_body_variables(self):
        """sh(rho) depends only on the head — semi-oblivious, not oblivious."""
        first = parse_rule("E(x, y), P(x) -> exists v. R(y, v)")
        second = parse_rule("E(w, y), Q(w, w) -> exists v. R(y, v)")
        f1 = skolemize(first).head[0].args[1]
        f2 = skolemize(second).head[0].args[1]
        assert isinstance(f1, FunctionTerm) and isinstance(f2, FunctionTerm)
        assert f1.functor == f2.functor  # isomorphic heads share functors

    def test_different_heads_get_different_functors(self):
        first = parse_rule("P(y) -> exists v. R(y, v)")
        second = parse_rule("P(y) -> exists v. R(v, y)")
        f1 = skolemize(first).head[0].args[1]
        f2 = skolemize(second).head[0].args[0]
        assert f1.functor != f2.functor

    def test_equality_pattern_matters(self):
        same = parse_rule("P(y) -> exists v. T(y, v, v)")
        different = parse_rule("P(y) -> exists v, w. T(y, v, w)")
        t_same = skolemize(same).head[0]
        t_diff = skolemize(different).head[0]
        assert t_same.args[1] == t_same.args[2]
        assert t_diff.args[1] != t_diff.args[2]

    def test_multi_head_shares_existential_witness(self):
        rule = parse_rule("true -> exists x. R(x, x), G(x, x)")
        skolemized = skolemize(rule)
        witnesses = {arg for item in skolemized.head for arg in item.args}
        assert len(witnesses) == 1
        witness = witnesses.pop()
        assert isinstance(witness, FunctionTerm)
        assert witness.args == ()  # no frontier: a Skolem constant

    def test_universal_variable_counts_as_frontier(self):
        rule = parse_rule("true -> exists z. R(x, z)")
        skolemized = skolemize(rule)
        witness = skolemized.head[0].args[1]
        assert isinstance(witness, FunctionTerm)
        assert witness.args == (Variable("x"),)

    def test_datalog_head_unchanged(self):
        rule = parse_rule("E(x, y) -> E(y, x)")
        assert skolemize(rule).head == rule.head

    def test_frontier_order_is_head_occurrence_order(self):
        rule = parse_rule("E(a1, b1) -> exists v. T(b1, a1, v)")
        witness = skolemize(rule).head[0].args[2]
        assert isinstance(witness, FunctionTerm)
        assert witness.args == (Variable("b1"), Variable("a1"))
