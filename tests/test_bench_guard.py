"""Tests for the benchmark regression guard and the BENCH JSON schema."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    Scenario,
    bench_document,
    compare_documents,
    default_baseline_path,
    run_guard_scenarios,
    validate_bench_document,
)


def _document(mode="full", calibration=0.1, scenarios=None):
    if scenarios is None:
        scenarios = [
            {"name": "alpha", "seconds": 1.0, "runs": [1.0, 1.1], "value": [3, 4]}
        ]
    return bench_document(mode=mode, calibration_seconds=calibration, scenarios=scenarios)


class TestBenchSchema:
    def test_roundtrips_through_json(self):
        document = _document()
        validate_bench_document(json.loads(json.dumps(document)))

    def test_rejects_wrong_schema_tag(self):
        document = _document()
        document["schema"] = "repro-bench/0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_document(document)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            _document(mode="medium")

    def test_rejects_missing_calibration(self):
        with pytest.raises(ValueError, match="calibration"):
            _document(calibration=0)

    def test_rejects_empty_scenarios(self):
        with pytest.raises(ValueError, match="scenarios"):
            _document(scenarios=[])

    def test_rejects_scenario_without_value(self):
        with pytest.raises(ValueError, match="value"):
            _document(scenarios=[{"name": "alpha", "seconds": 1.0, "runs": [1.0]}])


def _pair(base_seconds, current_seconds, base_cal=0.1, current_cal=0.1,
          base_value=None, current_value=None):
    baseline = _document(
        calibration=base_cal,
        scenarios=[
            {
                "name": "alpha",
                "seconds": base_seconds,
                "runs": [base_seconds],
                "value": base_value if base_value is not None else [1],
            }
        ],
    )
    current = _document(
        calibration=current_cal,
        scenarios=[
            {
                "name": "alpha",
                "seconds": current_seconds,
                "runs": [current_seconds],
                "value": current_value if current_value is not None else [1],
            }
        ],
    )
    return current, baseline


class TestCompareDocuments:
    def test_equal_times_pass(self):
        report = compare_documents(*_pair(1.0, 1.0))
        assert report.ok
        assert report.rows[0].normalized_ratio == pytest.approx(1.0)

    def test_within_tolerance_passes(self):
        report = compare_documents(*_pair(1.0, 1.2), tolerance=0.25)
        assert report.ok

    def test_regression_fails(self):
        report = compare_documents(*_pair(1.0, 1.6), tolerance=0.25)
        assert not report.ok
        assert report.rows[0].regressed

    def test_calibration_normalizes_slow_machine(self):
        # Twice-slower machine: both the scenario and the spin loop take
        # twice as long -> normalized ratio 1.0, not a regression.
        report = compare_documents(*_pair(1.0, 2.0, base_cal=0.1, current_cal=0.2))
        assert report.ok
        assert report.rows[0].normalized_ratio == pytest.approx(1.0)

    def test_calibration_does_not_mask_real_regression(self):
        # Faster machine (half the calibration time) but the scenario got
        # *slower* in normalized terms.
        report = compare_documents(*_pair(1.0, 0.9, base_cal=0.1, current_cal=0.05))
        assert not report.ok

    def test_value_drift_always_fails(self):
        report = compare_documents(
            *_pair(1.0, 0.1, base_value=[1], current_value=[2])
        )
        assert not report.ok
        assert not report.rows[0].value_matches
        assert "VALUE DRIFT" in report.table().render()

    def test_mode_mismatch_raises(self):
        current, baseline = _pair(1.0, 1.0)
        baseline["mode"] = "quick"
        with pytest.raises(ValueError, match="mode mismatch"):
            compare_documents(current, baseline)

    def test_missing_scenario_fails(self):
        current, baseline = _pair(1.0, 1.0)
        current["scenarios"][0]["name"] = "renamed"
        report = compare_documents(current, baseline)
        assert not report.ok
        assert report.missing == ["alpha"]


class TestRunGuardScenarios:
    def test_custom_scenarios_produce_valid_document(self):
        toy = (
            Scenario("toy", "constant checksum", lambda quick: [7, int(quick)]),
        )
        document = run_guard_scenarios(quick=True, repeats=2, scenarios=toy)
        validate_bench_document(document)
        entry = document["scenarios"][0]
        assert entry["name"] == "toy"
        assert entry["value"] == [7, 1]
        assert len(entry["runs"]) == 2
        assert entry["seconds"] == min(entry["runs"])
        assert document["mode"] == "quick"

    def test_self_comparison_is_clean(self):
        toy = (Scenario("toy", "constant checksum", lambda quick: 42),)
        document = run_guard_scenarios(quick=False, repeats=1, scenarios=toy)
        report = compare_documents(document, document)
        assert report.ok


class TestParallelEquivalenceScenario:
    def test_scenario_registered(self):
        from repro.bench.guard import SCENARIOS

        assert "parallel_equivalence" in [s.name for s in SCENARIOS]

    def test_quick_run_is_identical_and_checksummed(self):
        from repro.bench.guard import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "parallel_equivalence")
        value = scenario.run(True)
        assert value["identical"] is True
        assert value["atoms"] > 0
        assert len(value["checksum"]) == 16

    def test_meta_records_speedup_not_value(self):
        from repro.bench.guard import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "parallel_equivalence")
        document = run_guard_scenarios(
            quick=True, repeats=1, scenarios=(scenario,), workers=2
        )
        validate_bench_document(document)
        parallel = document["meta"]["parallel"]
        assert parallel["workers"] == 2
        assert parallel["sequential_seconds"] > 0
        assert parallel["parallel_seconds"] > 0
        assert parallel["fallback_inprocess"] == 0
        # The compared value stays executor-independent: no timing in it.
        entry = document["scenarios"][0]
        assert set(entry["value"]) == {"atoms", "identical", "checksum"}

    def test_meta_absent_without_the_scenario(self):
        toy = (Scenario("toy", "constant checksum", lambda quick: 42),)
        document = run_guard_scenarios(quick=True, repeats=1, scenarios=toy)
        assert "parallel" not in document["meta"]


class TestColumnarEquivalenceScenario:
    def test_scenario_registered(self):
        from repro.bench.guard import SCENARIOS

        assert "columnar_equivalence" in [s.name for s in SCENARIOS]

    def test_quick_run_is_identical_and_checksummed(self):
        from repro.bench.guard import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "columnar_equivalence")
        value = scenario.run(True)
        assert value["identical"] is True
        assert value["counters_equal"] is True
        assert value["atoms"] > 0
        assert len(value["checksum"]) == 16

    def test_meta_records_speedup_not_value(self):
        from repro.bench.guard import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "columnar_equivalence")
        document = run_guard_scenarios(quick=True, repeats=1, scenarios=(scenario,))
        validate_bench_document(document)
        columnar = document["meta"]["columnar"]
        assert columnar["object_seconds"] > 0
        assert columnar["columnar_seconds"] > 0
        assert columnar["fallback_rules"] == 0
        # The compared value stays kernel-independent: no timing in it.
        entry = document["scenarios"][0]
        assert set(entry["value"]) == {
            "atoms",
            "identical",
            "counters_equal",
            "checksum",
        }

    def test_meta_absent_without_the_scenario(self):
        toy = (Scenario("toy", "constant checksum", lambda quick: 42),)
        document = run_guard_scenarios(quick=True, repeats=1, scenarios=toy)
        assert "columnar" not in document["meta"]


class TestRewritingSaturationScenario:
    def test_scenario_registered(self):
        from repro.bench.guard import SCENARIOS

        assert "rewriting_saturation" in [s.name for s in SCENARIOS]

    def test_quick_run_pins_output_and_parity(self):
        from repro.bench.guard import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "rewriting_saturation")
        value = scenario.run(True)
        assert value["e3"]["naive_equal"] is True
        assert value["a3"]["naive_equal"] is True
        assert value["a3"]["workers_equal"] is True
        assert value["a3"]["disjuncts"] > 0
        assert len(value["a3"]["checksum"]) == 16
        # The index actually engaged on the a3 workload.
        assert value["a3"]["dedup_hits"] > 0
        assert value["a3"]["subsumption_skipped"] > 0
        assert value["a3"]["rules_skipped"] > 0

    def test_meta_records_speedup_not_value(self):
        from repro.bench.guard import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "rewriting_saturation")
        document = run_guard_scenarios(quick=True, repeats=1, scenarios=(scenario,))
        validate_bench_document(document)
        rewriting = document["meta"]["rewriting"]
        assert rewriting["naive_seconds"] > 0
        assert rewriting["indexed_seconds"] > 0
        assert rewriting["parallel_seconds"] > 0
        assert rewriting["fallback_inprocess"] == 0
        # The compared value stays timing-free.
        entry = document["scenarios"][0]
        assert set(entry["value"]) == {"e3", "a3"}

    def test_meta_absent_without_the_scenario(self):
        toy = (Scenario("toy", "constant checksum", lambda quick: 42),)
        document = run_guard_scenarios(quick=True, repeats=1, scenarios=toy)
        assert "rewriting" not in document["meta"]


class TestBaselinePaths:
    def test_modes_map_to_distinct_files(self):
        assert default_baseline_path(True).name == "BENCH_guard_quick.json"
        assert default_baseline_path(False).name == "BENCH_guard_full.json"

    def test_committed_quick_baseline_is_valid(self):
        path = default_baseline_path(True)
        if not path.exists():
            pytest.skip("quick baseline not committed yet")
        validate_bench_document(json.loads(path.read_text()))
