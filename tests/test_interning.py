"""Contract tests for the shared term-interning dictionary.

Both id-native stores — :class:`~repro.storage.sqlite.SQLiteStore` and
:class:`~repro.storage.columnar.ColumnarStore` — intern terms through
:class:`repro.storage.interning.TermInterningMixin`.  The suite is
parametrized over both backends: the contract (structural identity,
stable ids, display reprs, digest agreement) is one spec, and whatever
the mixin guarantees must hold regardless of whether the dictionary
lives in SQLite rows or Python lists.
"""

from __future__ import annotations

import pytest

from repro.logic import parse_instance
from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.storage import ColumnarStore, SQLiteStore, content_digest

BACKENDS = [ColumnarStore, lambda: SQLiteStore(":memory:")]
BACKEND_IDS = ["columnar", "sqlite"]


@pytest.fixture(params=BACKENDS, ids=BACKEND_IDS)
def store(request):
    with request.param() as handle:
        yield handle


DEEP = FunctionTerm(
    "f_mother",
    (FunctionTerm("f_mother", (Constant("abel"),)), Variable("x")),
)


class TestInterningContract:
    def test_constant_round_trip(self, store):
        term = Constant("abel")
        term_id = store.intern_term(term)
        assert store.term_by_id(term_id) == term
        assert store.display_of(term_id) == "abel"

    def test_variable_round_trip(self, store):
        term = Variable("x")
        term_id = store.intern_term(term)
        assert store.term_by_id(term_id) == term
        # Variables and constants of the same name are distinct entries.
        assert store.intern_term(Constant("x")) != term_id

    def test_function_term_round_trip(self, store):
        term_id = store.intern_term(DEEP)
        assert store.term_by_id(term_id) == DEEP
        assert store.display_of(term_id) == repr(DEEP)

    def test_interning_is_idempotent(self, store):
        first = store.intern_term(DEEP)
        assert store.intern_term(DEEP) == first
        # Structural identity: an equal but distinct object shares the id.
        clone = FunctionTerm(
            "f_mother",
            (FunctionTerm("f_mother", (Constant("abel"),)), Variable("x")),
        )
        assert store.intern_term(clone) == first

    def test_intern_function_matches_intern_term(self, store):
        # The id-native path (children already interned) must land on the
        # same dictionary entry as interning the Python term.
        child = store.intern_term(Constant("abel"))
        via_ids = store.intern_function("f_mother", (child,))
        via_term = store.intern_term(FunctionTerm("f_mother", (Constant("abel"),)))
        assert via_ids == via_term
        assert store.display_of(via_ids) == repr(
            FunctionTerm("f_mother", (Constant("abel"),))
        )

    def test_term_id_is_lookup_only(self, store):
        assert store.term_id(Constant("ghost")) is None
        assert store.term_id(FunctionTerm("f", (Constant("ghost"),))) is None
        term_id = store.intern_term(Constant("ghost"))
        assert store.term_id(Constant("ghost")) == term_id

    def test_unknown_id_raises(self, store):
        with pytest.raises(KeyError):
            store.term_by_id(999_999)
        with pytest.raises(KeyError):
            store.display_of(999_999)

    def test_uninternable_rejected(self, store):
        with pytest.raises(TypeError):
            store.intern_term("not a term")  # type: ignore[arg-type]


class TestDigestAgreement:
    FACTS = "E(a, b). E(b, c). P(a). Loves(a, a)"

    def test_digest_matches_instance_digest(self, store):
        facts = parse_instance(self.FACTS)
        store.add_many(facts)
        assert store.digest() == content_digest(facts)

    def test_digests_agree_across_backends(self):
        # Equal facts, equal checksums, whichever backend interned them —
        # the property that lets equivalence tests compare digests.
        facts = parse_instance(self.FACTS)
        with ColumnarStore() as columnar, SQLiteStore(":memory:") as sqlite:
            columnar.add_many(facts)
            sqlite.add_many(reversed(list(facts)))
            assert columnar.digest() == sqlite.digest()

    def test_insert_rows_counts_new_only(self, store):
        facts = parse_instance("E(a, b). E(b, c)")
        edge = next(iter(facts)).predicate
        rows = [
            tuple(store.intern_term(term) for term in atom.args)
            for atom in sorted(facts, key=repr)
        ]
        assert store.insert_rows(edge, rows, round_=1) == 2
        assert store.insert_rows(edge, rows, round_=2) == 0
        assert store.max_round() == 1

    def test_clear_facts_keeps_terms(self, store):
        facts = parse_instance("E(a, b)")
        store.add_many(facts)
        term_id = store.term_id(Constant("a"))
        assert term_id is not None
        store.clear_facts()
        assert len(store) == 0
        assert store.term_id(Constant("a")) == term_id
