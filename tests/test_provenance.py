"""Tests for repro.chase.provenance (Observations 9 & 10, Appendix A)."""

from __future__ import annotations

import pytest

from repro.chase import (
    ChaseBudget,
    ancestor_support,
    ancestors,
    birth_atom,
    chase,
    connected_parents,
    derivation_depths,
    frontier_of,
    invented_terms,
    parents,
)
from repro.logic import parse_instance, parse_theory
from repro.logic.terms import Constant, FunctionTerm
from repro.workloads import example66, example66_instance, t_a


@pytest.fixture
def ta_run():
    return chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=3))


class TestFrontier:
    def test_frontier_of_mother_atom(self, ta_run):
        mothers = [
            a
            for a in ta_run.instance
            if a.predicate.name == "Mother" and a.args[0] == Constant("abel")
        ]
        assert frontier_of(ta_run, mothers[0]) == {Constant("abel")}

    def test_frontier_of_base_atom_raises(self, ta_run):
        base = next(iter(ta_run.base))
        with pytest.raises(KeyError):
            frontier_of(ta_run, base)


class TestBirthAtoms:
    def test_invented_terms(self, ta_run):
        invented = invented_terms(ta_run)
        assert invented
        assert all(isinstance(t, FunctionTerm) for t in invented)

    def test_birth_atom_is_unique_and_excludes_frontier(self, ta_run):
        for term in invented_terms(ta_run):
            birth = birth_atom(ta_run, term)
            assert term in birth.args
            assert term not in frontier_of(ta_run, birth)

    def test_birth_atom_of_base_term_rejected(self, ta_run):
        with pytest.raises(ValueError):
            birth_atom(ta_run, Constant("abel"))


class TestAncestors:
    def test_base_atoms_are_their_own_ancestors(self, ta_run):
        base = next(iter(ta_run.base))
        assert ancestors(ta_run, base) == frozenset({base})

    def test_ancestors_ground_out_in_base(self, ta_run):
        for item in ta_run.instance:
            found = ancestors(ta_run, item)
            assert found
            assert all(a in ta_run.base for a in found)

    def test_parents_of_produced_atom(self, ta_run):
        produced = [a for a in ta_run.instance if a not in ta_run.base]
        for item in produced:
            assert parents(ta_run, item)

    def test_example_66_all_p_facts_enter_some_ancestry(self):
        """Example 66: every P-fact is an ancestor of some R-atom — the raw
        theory spreads the whole instance across derivations (which parent
        each E-atom records is chase-nondeterministic, exactly the paper's
        point, so the per-tree blowup itself is asserted via the
        normalization benchmarks instead)."""
        theory = example66()
        base = example66_instance(4)
        run = chase(theory, base, budget=ChaseBudget(max_rounds=6, max_atoms=50_000))
        r_atoms = [a for a in run.instance if a.predicate.name == "R"]
        support = ancestor_support(run, r_atoms)
        p_facts_used = {a for a in support if a.predicate.name == "P"}
        assert len(p_facts_used) == 4

    def test_connected_parents_skip_nullary(self):
        theory = parse_theory("M() , P(x) -> Q(x)")
        base = parse_instance("M(). P(a)")
        run = chase(theory, base, budget=ChaseBudget(max_rounds=2))
        q_atom = next(a for a in run.instance if a.predicate.name == "Q")
        connected = connected_parents(run, q_atom)
        assert all(p.predicate.arity > 0 for p in connected)


class TestPossibleAncestors:
    def test_one_e_atom_can_cite_every_p_fact(self):
        """Example 66 proper: over all derivation choices, a single E-atom's
        ancestry spans the whole instance."""
        from repro.chase import possible_ancestors

        theory = example66()
        base = example66_instance(4)
        run = chase(theory, base, budget=ChaseBudget(max_rounds=5, max_atoms=50_000))
        produced_e = [
            a for a in run.instance if a.predicate.name == "E" and a not in base
        ]
        anc = possible_ancestors(run, produced_e[:1])
        p_facts = {a for a in anc if a.predicate.name == "P"}
        assert len(p_facts) == 4

    def test_possible_parent_sets_cover_recorded_derivation(self, ta_run):
        from repro.chase import possible_parent_sets

        produced = [a for a in ta_run.instance if a not in ta_run.base]
        for item in produced:
            recorded = set(parents(ta_run, item))
            options = possible_parent_sets(ta_run, item)
            assert any(set(option) == recorded for option in options)

    def test_possible_ancestors_superset_of_recorded(self, ta_run):
        from repro.chase import possible_ancestors

        produced = [a for a in ta_run.instance if a not in ta_run.base]
        for item in produced:
            assert ancestors(ta_run, item) <= possible_ancestors(ta_run, [item])

    def test_base_atom_is_its_own_possible_ancestry(self, ta_run):
        from repro.chase import possible_ancestors

        base = next(iter(ta_run.base))
        assert possible_ancestors(ta_run, [base]) == frozenset({base})


class TestDepths:
    def test_derivation_depths_match_rounds(self, ta_run):
        depths = derivation_depths(ta_run)
        for item, depth in depths.items():
            assert ta_run.depth_of(item) == depth

    def test_depths_increase_along_derivation(self, ta_run):
        depths = derivation_depths(ta_run)
        for item in ta_run.instance:
            for parent in parents(ta_run, item):
                assert depths[parent] < depths[item]
