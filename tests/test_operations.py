"""Tests for the five operations (Definitions 56-58, Lemmas 51/52/55).

The centrepiece is the empirical Lemma-52 check: every operation preserves
marked-query satisfaction over real chases of random instances.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import (
    MarkedQuery,
    NoMaximalVariable,
    UnsupportedFusion,
    all_markings,
    apply_operation,
    find_maximal_variable,
    is_live,
    is_properly_marked,
    marked_holds,
    peel_true_components,
)
from repro.frontier.operations import cut, fuse, reduce_step
from repro.logic.atoms import atom
from repro.logic.instance import Instance
from repro.logic.parser import parse_query
from repro.logic.terms import FreshVariables, Variable
from repro.workloads import t_d

X, Y, Z, W, U = (Variable(n) for n in "xyzwu")


def mq(atoms, marked, answers=()):
    return MarkedQuery(tuple(answers), tuple(atoms), frozenset(marked))


class TestMaximalVariables:
    def test_sink_is_maximal(self):
        query = mq([atom("G", X, Y), atom("G", Y, Z)], {X})
        maximal = find_maximal_variable(query)
        assert maximal.variable == Z
        assert len(maximal.in_atoms) == 1

    def test_marked_sinks_are_skipped(self):
        query = mq([atom("G", X, Y)], {X, Y}, answers=())
        with pytest.raises(NoMaximalVariable):
            find_maximal_variable(query)

    def test_variable_with_outgoing_atom_not_maximal(self):
        query = mq([atom("G", X, Y), atom("R", Y, Z)], {X})
        assert find_maximal_variable(query).variable == Z


class TestCut:
    def test_cut_removes_sink_atom(self):
        query = mq([atom("G", X, Y), atom("G", Y, Z)], {X})
        maximal = find_maximal_variable(query)
        result = cut(query, maximal)
        assert result.atoms == (atom("G", X, Y),)

    def test_cut_rescues_marked_variable_via_adom(self):
        query = mq([atom("G", X, Y)], {X}, answers=(X,))
        maximal = find_maximal_variable(query)
        result = cut(query, maximal)
        assert result.atoms == (atom("Adom", X),)
        assert X in result.marked


class TestFuse:
    def test_fuse_identifies_sources(self):
        query = mq([atom("G", X, Z), atom("G", Y, Z), atom("R", X, W)], {W})
        # z is unmarked with two green in-atoms (x, y unmarked too).
        record = apply_operation(query, FreshVariables())
        assert record.operation == "fuse-green"
        (result,) = record.results
        assert result.size() == 2  # the two greens merged into one

    def test_fusing_answer_variables_unsupported(self):
        query = mq(
            [atom("G", X, Z), atom("G", Y, Z)], {X, Y}, answers=(X, Y)
        )
        maximal = find_maximal_variable(query)
        with pytest.raises(UnsupportedFusion):
            fuse(query, maximal, atom("G", X, Z), atom("G", Y, Z))


class TestReduce:
    def test_reduce_produces_four_markings(self):
        query = mq([atom("R", X, Z), atom("G", Y, Z)], {X, Y}, answers=(X, Y))
        maximal = find_maximal_variable(query)
        results = reduce_step(query, maximal, FreshVariables())
        assert len(results) == 4
        markings = {len(r.marked) for r in results}
        assert markings == {2, 3, 4}

    def test_reduce_shape_matches_definition_58(self):
        query = mq([atom("R", X, Z), atom("G", Y, Z)], {X, Y}, answers=(X, Y))
        maximal = find_maximal_variable(query)
        result = reduce_step(query, maximal, FreshVariables())[0]
        names = sorted(
            (item.predicate.name, ) for item in result.atoms
        )
        assert [n for (n,) in names] == ["G", "G", "R"]
        # One red edge consumed, one created.
        assert len(result.atoms_of("R")) == 1
        assert len(result.atoms_of("G")) == 2

    def test_footnote_33_marking_is_improper(self):
        # With unmarked red/green sources, exactly the V u {x''} variant is
        # improperly marked (G(x', x'') with x'' marked forces x' marked).
        query = mq([atom("R", X, Z), atom("G", Y, Z)], set())
        maximal = find_maximal_variable(query)
        results = reduce_step(query, maximal, FreshVariables())
        improper = [r for r in results if not is_properly_marked(r)]
        assert len(improper) == 1
        assert len(improper[0].marked) == 1

    def test_reduce_with_marked_sources_prunes_harder(self):
        # When x_r is marked, G(x'', x_r) forces x'' marked, so only the
        # fully-marked variant survives the properness filter.
        query = mq([atom("R", X, Z), atom("G", Y, Z)], {X, Y}, answers=(X, Y))
        maximal = find_maximal_variable(query)
        results = reduce_step(query, maximal, FreshVariables())
        proper = [r for r in results if is_properly_marked(r)]
        assert len(proper) == 1
        assert proper[0].is_totally_marked()


class TestLemma51Completeness:
    def test_every_live_marking_of_phi_r_1_classifies(self):
        from repro.frontier.td import phi_r_n

        fresh = FreshVariables()
        for marking in all_markings(phi_r_n(1)):
            peeled = peel_true_components(marking)
            if not is_live(peeled):
                continue
            record = apply_operation(peeled, fresh)
            assert record.operation in {
                "cut-red",
                "cut-green",
                "fuse-red",
                "fuse-green",
                "reduce",
            }


def random_marked_query(rng: random.Random) -> MarkedQuery:
    """A small random connected R/G query with a random proper marking."""
    variables = [Variable(f"v{i}") for i in range(rng.randint(2, 4))]
    atoms = []
    for index in range(1, len(variables)):
        color = rng.choice(["R", "G"])
        source = variables[rng.randrange(index)]
        atoms.append(atom(color, source, variables[index]))
    if rng.random() < 0.5:
        color = rng.choice(["R", "G"])
        atoms.append(
            atom(color, rng.choice(variables), rng.choice(variables))
        )
    marked = frozenset(v for v in variables if rng.random() < 0.5)
    try:
        query = MarkedQuery((), tuple(dict.fromkeys(atoms)), marked)
    except ValueError:
        return random_marked_query(rng)
    return query


class TestLemma52Soundness:
    """Operations preserve marked-query satisfaction over real chases."""

    @pytest.mark.slow
    def test_operations_preserve_satisfaction(self):
        rng = random.Random(2024)
        theory = t_d()
        bases = [
            Instance([atom("G", "c0", "c1"), atom("G", "c1", "c2")]),
            Instance([atom("G", "c0", "c1"), atom("R", "c1", "c2")]),
            Instance([atom("R", "c0", "c0")]),
        ]
        runs = [chase(theory, base, budget=ChaseBudget(max_rounds=4, max_atoms=300_000)) for base in bases]
        fresh = FreshVariables()
        checked = 0
        for _ in range(90):
            query = random_marked_query(rng)
            query = peel_true_components(query)
            if not is_live(query):
                continue
            record = apply_operation(query, fresh)
            for run in runs:
                before = marked_holds(run, query, ())
                results = [
                    peel_true_components(r)
                    for r in record.results
                    if is_properly_marked(peel_true_components(r))
                ]
                after = any(marked_holds(run, r, ()) for r in results)
                assert before == after, (
                    f"{record.operation} broke satisfaction on {query!r}"
                )
                checked += 1
        assert checked >= 30
