"""Tests for marked queries (Definitions 47-48, Observation 50)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import (
    MarkedQuery,
    adom_atom,
    all_markings,
    is_live,
    is_properly_marked,
    marked_holds,
    peel_true_components,
    proper_marking_closure,
)
from repro.frontier.td import phi_r_n
from repro.logic.atoms import atom
from repro.logic.parser import parse_query
from repro.logic.terms import Constant, Variable
from repro.workloads import green_path, t_d

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def mq(atoms, marked, answers=()):
    return MarkedQuery(tuple(answers), tuple(atoms), frozenset(marked))


class TestInvariants:
    def test_answers_must_be_marked(self):
        with pytest.raises(ValueError):
            MarkedQuery((X,), (atom("G", X, Y),), frozenset())

    def test_marked_must_occur(self):
        with pytest.raises(ValueError):
            mq([atom("G", X, Y)], {Z})

    def test_adom_vars_must_be_marked(self):
        with pytest.raises(ValueError):
            mq([atom("G", X, Y), adom_atom(Z)], {X})

    def test_totally_marked_and_live(self):
        total = mq([atom("G", X, Y)], {X, Y})
        assert total.is_totally_marked()
        assert not is_live(total)
        partial = mq([atom("G", X, Y)], {X})
        assert is_live(partial)


class TestAllMarkings:
    def test_counts_include_answer_vars(self):
        query = parse_query("q(x) := exists y, z. G(x, y), G(y, z)")
        markings = list(all_markings(query))
        assert len(markings) == 4  # 2^{y,z}
        assert all(Variable("x") in m.marked for m in markings)


class TestProperMarking:
    def test_condition_i_predecessor_closure(self):
        bad = mq([atom("G", X, Y)], {Y})
        assert not is_properly_marked(bad)
        good = mq([atom("G", X, Y)], {X, Y})
        assert is_properly_marked(good)

    def test_condition_ii_cycles_must_be_marked(self):
        cycle = [atom("G", X, Y), atom("R", Y, X)]
        assert not is_properly_marked(mq(cycle, set()))
        assert not is_properly_marked(mq(cycle, {X}))
        assert is_properly_marked(mq(cycle, {X, Y}))

    def test_self_loop_must_be_marked(self):
        assert not is_properly_marked(mq([atom("G", X, X)], set()))
        assert is_properly_marked(mq([atom("G", X, X)], {X}))

    def test_condition_iii_same_colour_sources(self):
        confluent = [atom("G", X, Z), atom("G", Y, Z)]
        assert not is_properly_marked(mq(confluent, {X}))
        assert is_properly_marked(mq(confluent, {X, Y}))
        assert is_properly_marked(mq(confluent, set()))

    def test_condition_iii_is_per_colour(self):
        mixed = [atom("G", X, Z), atom("R", Y, Z)]
        # Different colours: marking X alone forces nothing on Y.
        assert is_properly_marked(mq(mixed, {X}))

    def test_closure_computes_least_superset(self):
        closure = proper_marking_closure(mq([atom("G", X, Y), atom("G", Y, Z)], {Z}))
        assert closure == {X, Y, Z}


class TestPeeling:
    def test_unmarked_component_is_deleted(self):
        two_components = mq(
            [atom("G", X, Y), atom("G", Z, W)], {X, Y}, answers=()
        )
        peeled = peel_true_components(two_components)
        assert peeled.atoms == (atom("G", X, Y),)

    def test_marked_component_stays(self):
        query = mq([atom("G", X, Y)], {X})
        assert peel_true_components(query) is query

    def test_fully_unmarked_query_becomes_empty(self):
        query = mq([atom("G", X, Y)], set())
        peeled = peel_true_components(query)
        assert peeled.is_empty()


class TestSemantics:
    def test_marked_variables_map_to_base(self):
        run = chase(t_d(), green_path(2), budget=ChaseBudget(max_rounds=2, max_atoms=50_000))
        a0, a1 = Constant("a0"), Constant("a1")
        base_edge = mq([atom("G", X, Y)], {X, Y}, answers=(X, Y))
        assert marked_holds(run, base_edge, (a0, a1))
        assert not marked_holds(run, base_edge, (a1, a0))

    def test_unmarked_variable_must_leave_base(self):
        run = chase(t_d(), green_path(2), budget=ChaseBudget(max_rounds=2, max_atoms=50_000))
        a0 = Constant("a0")
        pins_edge = mq([atom("G", X, Y)], {X}, answers=(X,))
        # a0 has a pins-created green successor outside the base: holds.
        assert marked_holds(run, pins_edge, (a0,))
        both_marked = mq([atom("G", X, Y)], {X, Y}, answers=(X,))
        # With y marked, the only option is the base edge G(a0, a1).
        assert marked_holds(run, both_marked, (a0,))

    def test_totally_marked_equals_base_satisfaction(self):
        """For T_d every produced atom has an invented term, so a totally
        marked query holds in the chase iff it holds in D."""
        run = chase(t_d(), green_path(3), budget=ChaseBudget(max_rounds=2, max_atoms=50_000))
        a0, a3 = Constant("a0"), Constant("a3")
        path = parse_query("q(x, y) := exists u, v. G(x, u), G(u, v), G(v, y)")
        total = MarkedQuery(
            path.answer_vars, path.atoms, frozenset(path.variables())
        )
        from repro.logic.homomorphism import holds

        assert marked_holds(run, total, (a0, a3)) == holds(
            path, green_path(3), (a0, a3)
        )

    def test_empty_marked_query_is_true(self):
        run = chase(t_d(), green_path(1), budget=ChaseBudget(max_rounds=1, max_atoms=10_000))
        empty = MarkedQuery((), (), frozenset())
        assert marked_holds(run, empty, ())

    def test_answer_arity_checked(self):
        run = chase(t_d(), green_path(1), budget=ChaseBudget(max_rounds=1, max_atoms=10_000))
        query = mq([atom("G", X, Y)], {X, Y}, answers=(X, Y))
        with pytest.raises(ValueError):
            marked_holds(run, query, (Constant("a0"),))

    def test_phi_r_n_markings_partition_satisfaction(self):
        """(spades): the query holds iff some marking of it holds."""
        from repro.logic.homomorphism import holds

        run = chase(t_d(), green_path(2), budget=ChaseBudget(max_rounds=3, max_atoms=200_000))
        query = phi_r_n(1)
        a0, a2 = Constant("a0"), Constant("a2")
        via_markings = any(
            marked_holds(run, marking, (a0, a2))
            for marking in all_markings(query)
        )
        assert via_markings == holds(query, run.instance, (a0, a2))
