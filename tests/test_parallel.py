"""Tests for the parallel round executor (``chase/parallel.py``).

The contract is Skolem determinism (Observation 8) made operational:
``chase(..., workers=N)`` must equal the sequential engine **per round**
(set-for-set) and counter-for-counter on ``chase.*`` totals, on every
planner-equivalence fixture.  Degradation paths must never be louder
than sequential: unpicklable inputs fall back to the in-process executor
with one telemetry flag, and ``worker_max_atoms`` is an ordinary budget
overrun.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, ChaseBudgetExceeded, chase
from repro.chase.parallel import parallel_available
from repro.logic import parse_instance, parse_theory
from repro.workloads import (
    edge_cycle,
    edge_path,
    example42_tc,
    exercise23,
    green_path,
    t_a,
    t_d,
    t_p,
    university_database,
    university_ontology,
)
from repro.workloads.generators import random_instance


def assert_parallel_identical(theory, base, rounds, workers=2, **chase_kwargs):
    """Parallel run == sequential run, set-for-set in every round."""
    budget = ChaseBudget(max_rounds=rounds, max_atoms=200_000)
    sequential = chase(theory, base, budget=budget, **chase_kwargs)
    parallel = chase(theory, base, budget=budget, workers=workers, **chase_kwargs)
    assert len(parallel.round_added) == len(sequential.round_added)
    for mine, theirs in zip(parallel.round_added, sequential.round_added):
        assert set(mine) == set(theirs)
    assert set(parallel.instance) == set(sequential.instance)
    assert parallel.terminated == sequential.terminated
    # The merge must preserve the sequential totals exactly, wherever the
    # dedup happened (worker replica vs coordinator merge).
    for name in ("chase.matches", "chase.atoms_produced", "chase.dedup_hits"):
        assert parallel.stats.counters[name] == sequential.stats.counters[name], name
    assert parallel.stats.counters["parallel.fallback_inprocess"] == 0
    return parallel


class TestRoundEquivalence:
    """Every planner-equivalence fixture, parallel vs sequential."""

    def test_t_a_family_tree(self):
        assert_parallel_identical(t_a(), parse_instance("Human('abel')"), rounds=4)

    def test_t_p_paths(self):
        assert_parallel_identical(t_p(), edge_path(4), rounds=4)

    def test_t_d_universal_rules_on_green_path(self):
        # Empty-body rules with universal head variables: workers receive
        # the domain pool and expand the new-term product themselves.
        assert_parallel_identical(t_d(), green_path(3), rounds=3)

    def test_exercise23_on_cycle(self):
        assert_parallel_identical(exercise23(), edge_cycle(4), rounds=4)

    def test_university_ontology(self):
        base = university_database(students=12, professors=3, courses=5, seed=7)
        assert_parallel_identical(university_ontology(), base, rounds=3)

    def test_tc_on_cycle_four_workers(self):
        assert_parallel_identical(example42_tc(), edge_cycle(5), rounds=8, workers=4)

    def test_full_evaluation_mode(self):
        # semi_naive=False dispatches only full-evaluation items; the
        # partition-invariance argument is the same.
        assert_parallel_identical(
            exercise23(), edge_cycle(4), rounds=4, semi_naive=False
        )

    def test_budget_workers_equivalent_to_argument(self):
        budget = ChaseBudget(max_rounds=4, max_atoms=200_000, workers=2)
        via_budget = chase(t_p(), edge_path(3), budget=budget)
        via_argument = chase(
            t_p(),
            edge_path(3),
            budget=ChaseBudget(max_rounds=4, max_atoms=200_000),
            workers=2,
        )
        assert set(via_budget.instance) == set(via_argument.instance)
        assert via_budget.stats.counters["parallel.rounds"] > 0

    def test_parallel_telemetry_present(self):
        result = assert_parallel_identical(exercise23(), edge_cycle(4), rounds=4)
        counters = result.stats.counters
        assert counters["parallel.workers"] == 2
        assert counters["parallel.rounds"] > 0
        assert counters["parallel.shards_dispatched"] > 0
        assert counters["parallel.bytes_sent"] > 0
        assert counters["parallel.bytes_received"] > 0


class TestSeededStress:
    def test_random_workload_parity(self):
        # A denser random instance than any fixture: transitive closure
        # plus existential invention over seeded random edges.
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> exists w. F(y,w)
            F(x,y), E(z,x) -> G(z,y)
            """
        )
        predicates = {
            atom.predicate for rule in theory.rules() for atom in rule.body
        }
        base = random_instance(
            sorted(predicates, key=lambda p: p.name),
            fact_count=40,
            domain_size=12,
            seed=20260805,
        )
        assert_parallel_identical(theory, base, rounds=4, workers=3)


class TestGracefulDegradation:
    def test_workers_one_is_sequential_with_flag(self):
        result = chase(
            t_p(), edge_path(3), budget=ChaseBudget(max_rounds=3), workers=1
        )
        assert result.stats.counters["parallel.fallback_inprocess"] == 1
        assert result.stats.counters["parallel.rounds"] == 0

    def test_unpicklable_theory_falls_back(self):
        source = t_p()
        cls = type(source)

        class LocalTheory(cls):  # local class: pickle-by-reference fails
            pass

        theory = LocalTheory.__new__(LocalTheory)
        theory.__dict__.update(source.__dict__)
        budget = ChaseBudget(max_rounds=3)
        sequential = chase(source, edge_path(3), budget=budget)
        degraded = chase(theory, edge_path(3), budget=budget, workers=2)
        assert degraded.stats.counters["parallel.fallback_inprocess"] == 1
        assert set(degraded.instance) == set(sequential.instance)

    @pytest.mark.skipif(not parallel_available(), reason="no multiprocessing")
    def test_parallel_available_true_here(self):
        assert parallel_available()


class TestWorkerBudget:
    def test_worker_max_atoms_return_mode(self):
        budget = ChaseBudget(max_rounds=5, workers=2, worker_max_atoms=1)
        result = chase(example42_tc(), edge_cycle(4), budget=budget)
        assert not result.terminated
        # The overflowing round is left unapplied.
        assert result.rounds_run < 5
        assert result.stats.counters["parallel.worker_truncated"] >= 1

    def test_worker_max_atoms_raise_mode(self):
        budget = ChaseBudget(
            max_rounds=5, workers=2, worker_max_atoms=1, on_exceeded="raise"
        )
        with pytest.raises(ChaseBudgetExceeded, match="worker_max_atoms"):
            chase(example42_tc(), edge_cycle(4), budget=budget)

    def test_worker_max_atoms_validation(self):
        with pytest.raises(ValueError):
            ChaseBudget(worker_max_atoms=0)
        with pytest.raises(ValueError):
            ChaseBudget(workers=0)
