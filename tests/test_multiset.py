"""Tests for the Dershowitz-Manna multiset orders (Section 10's ranks)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.frontier.multiset import (
    multiset_less,
    rank_pair_leq,
    rank_pair_less,
    srk_less,
)

small_multisets = st.lists(st.integers(min_value=0, max_value=6), max_size=5)


class TestMultisetOrder:
    def test_removing_an_element_decreases(self):
        assert multiset_less([1, 2], [1, 2, 3])

    def test_replacing_big_by_many_small_decreases(self):
        # {3} > {2, 2, 2, 2}: the hallmark of the multiset order.
        assert multiset_less([2, 2, 2, 2], [3])

    def test_incomparable_swap_is_ordered_by_max(self):
        assert multiset_less([1, 3], [4])
        assert not multiset_less([4], [1, 3])

    def test_equal_multisets_not_less(self):
        assert not multiset_less([1, 2, 2], [2, 1, 2])

    def test_empty_less_than_nonempty(self):
        assert multiset_less([], [0])
        assert not multiset_less([0], [])

    @given(small_multisets)
    def test_irreflexive(self, items):
        assert not multiset_less(items, items)

    @given(small_multisets, small_multisets)
    def test_asymmetric(self, left, right):
        if multiset_less(left, right):
            assert not multiset_less(right, left)

    @given(small_multisets, small_multisets, small_multisets)
    def test_transitive(self, a, b, c):
        if multiset_less(a, b) and multiset_less(b, c):
            assert multiset_less(a, c)

    @given(small_multisets, small_multisets)
    def test_adding_common_elements_preserves(self, left, right):
        if multiset_less(left, right):
            assert multiset_less(left + [9], right + [9])


class TestRankPairOrder:
    def test_first_component_dominates(self):
        assert rank_pair_less((1, Counter([99])), (2, Counter()))

    def test_ties_fall_to_multiset(self):
        assert rank_pair_less((1, Counter([1])), (1, Counter([2])))
        assert not rank_pair_less((1, Counter([2])), (1, Counter([1])))

    def test_leq_includes_equality(self):
        rank = (1, Counter([1, 1]))
        assert rank_pair_leq(rank, (1, Counter([1, 1])))


class TestSrkOrder:
    def test_replacing_query_by_smaller_ones(self):
        big = (2, Counter([5]))
        small_a = (1, Counter([100, 100]))
        small_b = (2, Counter([4, 4, 4]))
        assert srk_less([small_a, small_b], [big])

    def test_equal_sets_not_less(self):
        ranks = [(1, Counter([1])), (2, Counter())]
        assert not srk_less(ranks, list(ranks))

    def test_dropping_a_query_decreases(self):
        ranks = [(1, Counter([1])), (2, Counter([3]))]
        assert srk_less(ranks[:1], ranks)
