"""Tests for repro.chase.variants (oblivious / restricted chase)."""

from __future__ import annotations

from repro.chase import ChaseBudget, chase, oblivious_chase, restricted_chase
from repro.logic import parse_instance, parse_theory
from repro.logic.homomorphism import holds
from repro.logic.parser import parse_query
from repro.workloads import t_a


class TestOblivious:
    def test_oblivious_at_least_as_large_as_semi_oblivious(self):
        """Footnote 15: oblivious Skolems mention non-frontier variables,
        so distinct body matches make distinct witnesses."""
        theory = parse_theory("E(x, y) -> exists z. F(y, z)")
        base = parse_instance("E(a, c). E(b, c)")
        semi = chase(theory, base, budget=ChaseBudget(max_rounds=3))
        obl = oblivious_chase(theory, base, max_rounds=3)
        f_semi = [a for a in semi.instance if a.predicate.name == "F"]
        f_obl = [a for a in obl.instance if a.predicate.name == "F"]
        assert len(f_semi) == 1  # frontier {y}: both matches share a witness
        assert len(f_obl) == 2  # oblivious keys on x too

    def test_oblivious_terminates_on_terminating_theory(self):
        theory = parse_theory("P(x) -> exists y. Q(x, y)")
        result = oblivious_chase(theory, parse_instance("P(a)"), max_rounds=5)
        assert result.terminated

    def test_oblivious_budget(self):
        theory = parse_theory("E(x, y) -> exists z. E(y, z)")
        result = oblivious_chase(
            theory, parse_instance("E(a, b)"), max_rounds=3, max_atoms=2
        )
        assert not result.terminated


class TestRestricted:
    def test_restricted_skips_satisfied_heads(self):
        theory = parse_theory("P(x) -> exists y. E(x, y)")
        base = parse_instance("P(a). E(a, b)")
        result = restricted_chase(theory, base, max_rounds=5)
        assert result.terminated
        assert len(result.instance) == 2  # nothing to do

    def test_restricted_smaller_than_semi_oblivious(self):
        theory = t_a()
        base = parse_instance("Human(abel). Mother(abel, eve)")
        restricted = restricted_chase(theory, base, max_rounds=6)
        semi = chase(theory, base, budget=ChaseBudget(max_rounds=6))
        # Semi-oblivious re-creates a mother for abel despite Mother(abel,
        # eve); the restricted chase reuses eve.
        assert len(restricted.instance) < len(semi.instance)

    def test_restricted_can_terminate_where_skolem_does_not(self):
        """Exercise 23's flavour: satisfied heads stop the restricted chase."""
        theory = parse_theory("E(x, y) -> exists z. E(y, z)")
        looped = parse_instance("E(a, a)")
        result = restricted_chase(theory, looped, max_rounds=10)
        assert result.terminated
        assert len(result.instance) == 1

    def test_restricted_answers_agree_on_base_queries(self):
        theory = t_a()
        base = parse_instance("Human(abel)")
        query = parse_query("q() := exists y, z. Mother('abel', y), Mother(y, z)")
        semi = chase(theory, base, budget=ChaseBudget(max_rounds=6))
        restricted = restricted_chase(theory, base, max_rounds=6)
        assert holds(query, semi.instance) == holds(query, restricted.instance)
