"""Tests for the benchmark harness (repro.bench)."""

from __future__ import annotations

import pytest

from repro.bench import (
    Table,
    grows_at_least_geometrically,
    monotonically_nondecreasing,
    roughly_flat,
    sweep,
    sweep_table,
)


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a much longer name", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        header, _separator, *rows = lines[1:]
        positions = {line.index("|") for line in [header, *rows]}
        assert len(positions) == 1  # consistent alignment

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_column_extraction(self):
        table = Table("demo", ["a", "b"])
        table.add(1, "x")
        table.add(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_boolean_and_float_formatting(self):
        table = Table("demo", ["flag", "ratio"])
        table.add(True, 0.123456)
        rendered = table.render()
        assert "yes" in rendered
        assert "0.123" in rendered

    def test_notes_rendered(self):
        table = Table("demo", ["a"])
        table.add(1)
        table.note("a remark")
        assert "note: a remark" in table.render()

    def test_as_dict_round_trips_rows(self):
        table = Table("demo", ["n", "seconds"])
        table.add(1, 0.5)
        table.note("a remark")
        document = table.as_dict()
        assert document["rows"] == [{"n": 1, "seconds": 0.5}]
        assert document["notes"] == ["a remark"]
        assert "stats" not in document
        import json

        assert json.loads(table.to_json()) == document

    def test_attach_stats_validates_schema(self):
        table = Table("demo", ["a"])
        table.attach_stats({"counters": {"x": 1}, "phases": {}, "rounds": []})
        assert table.as_dict()["stats"]["counters"] == {"x": 1}
        with pytest.raises(ValueError):
            table.attach_stats({"counters": "nope"})


class TestShapeChecks:
    def test_monotone(self):
        assert monotonically_nondecreasing([1, 1, 2, 3])
        assert not monotonically_nondecreasing([1, 3, 2])

    def test_flat(self):
        assert roughly_flat([2, 2, 2])
        assert roughly_flat([2, 3, 3])
        assert not roughly_flat([1, 1, 5])
        assert roughly_flat([1, 1, 2], tolerance=1)

    def test_geometric(self):
        assert grows_at_least_geometrically([1, 2, 4, 8], ratio=2)
        assert not grows_at_least_geometrically([1, 2, 3], ratio=2)
        assert grows_at_least_geometrically([], ratio=2)

    def test_single_point_series(self):
        assert roughly_flat([7])
        assert monotonically_nondecreasing([7])


class TestSweep:
    def test_sweep_records_values_and_times(self):
        points = sweep([1, 2, 3], lambda n: n * n)
        assert [p.value for p in points] == [1, 4, 9]
        assert all(p.seconds >= 0 for p in points)

    def test_sweep_table(self):
        points = sweep([1, 2], lambda n: (n, n + 1))
        table = sweep_table(
            "demo", "n", ["a", "b"], points, explode=lambda v: v
        )
        assert table.column("a") == [1, 2]
        assert table.column("b") == [2, 3]
        assert len(table.column("seconds")) == 2
