"""Unit tests for repro.logic.terms."""

from __future__ import annotations

import pytest

from repro.logic.terms import (
    Constant,
    FreshVariables,
    FunctionTerm,
    Variable,
    apply_substitution,
    as_term,
    compose,
    variables_of,
)


class TestTermBasics:
    def test_variable_equality_is_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_variable_and_constant_with_same_name_differ(self):
        assert Variable("a") != Constant("a")

    def test_terms_are_hashable_and_usable_in_sets(self):
        terms = {Variable("x"), Constant("x"), Variable("x")}
        assert len(terms) == 2

    def test_function_term_structural_equality(self):
        first = FunctionTerm("f", (Constant("a"), Variable("x")))
        second = FunctionTerm("f", (Constant("a"), Variable("x")))
        assert first == second
        assert hash(first) == hash(second)

    def test_function_term_differs_by_functor(self):
        args = (Constant("a"),)
        assert FunctionTerm("f", args) != FunctionTerm("g", args)

    def test_groundness(self):
        assert Constant("a").is_ground()
        assert not Variable("x").is_ground()
        assert FunctionTerm("f", (Constant("a"),)).is_ground()
        assert not FunctionTerm("f", (Variable("x"),)).is_ground()

    def test_depth_counts_nesting(self):
        ground = Constant("a")
        one = FunctionTerm("f", (ground,))
        two = FunctionTerm("g", (one, ground))
        assert ground.depth() == 0
        assert one.depth() == 1
        assert two.depth() == 2

    def test_depth_of_nullary_function_term(self):
        assert FunctionTerm("c", ()).depth() == 1

    def test_variables_iteration(self):
        term = FunctionTerm("f", (Variable("x"), FunctionTerm("g", (Variable("y"),))))
        assert set(term.variables()) == {Variable("x"), Variable("y")}


class TestSubstitution:
    def test_apply_to_variable(self):
        theta = {Variable("x"): Constant("a")}
        assert apply_substitution(Variable("x"), theta) == Constant("a")
        assert apply_substitution(Variable("y"), theta) == Variable("y")

    def test_apply_rebuilds_function_terms(self):
        theta = {Variable("x"): Constant("a")}
        term = FunctionTerm("f", (Variable("x"), Constant("b")))
        result = apply_substitution(term, theta)
        assert result == FunctionTerm("f", (Constant("a"), Constant("b")))

    def test_apply_is_identity_when_nothing_matches(self):
        term = FunctionTerm("f", (Constant("b"),))
        assert apply_substitution(term, {Variable("x"): Constant("a")}) is term

    def test_compose_order(self):
        x, y = Variable("x"), Variable("y")
        first = {x: y}
        second = {y: Constant("a")}
        combined = compose(first, second)
        assert combined[x] == Constant("a")
        assert combined[y] == Constant("a")

    def test_compose_keeps_second_only_bindings(self):
        x, y = Variable("x"), Variable("y")
        combined = compose({x: Constant("a")}, {y: Constant("b")})
        assert combined[y] == Constant("b")


class TestFreshVariables:
    def test_fresh_variables_never_repeat(self):
        supply = FreshVariables()
        produced = {supply.fresh() for _ in range(100)}
        assert len(produced) == 100

    def test_fresh_like_embeds_hint(self):
        supply = FreshVariables()
        fresh = supply.fresh_like(Variable("target"))
        assert "target" in fresh.name

    def test_fresh_names_start_with_underscore(self):
        assert FreshVariables().fresh().name.startswith("_")


class TestHelpers:
    def test_as_term_coerces_strings_to_constants(self):
        assert as_term("abel") == Constant("abel")

    def test_as_term_passes_terms_through(self):
        v = Variable("x")
        assert as_term(v) is v

    def test_as_term_rejects_junk(self):
        with pytest.raises(TypeError):
            as_term(3.14)

    def test_variables_of(self):
        terms = [Variable("x"), Constant("a"), FunctionTerm("f", (Variable("y"),))]
        assert variables_of(terms) == {Variable("x"), Variable("y")}
