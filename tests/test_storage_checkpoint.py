"""Checkpoint/resume exactness: suspended == uninterrupted, to the atom.

Observation 8 (prefix-exactness of the semi-oblivious Skolem chase) is
what makes checkpoints *exact* rather than best-effort: a budget-stopped
chase persisted to SQLite and resumed must produce the same rounds, the
same atoms (Skolem terms included) and the same counters as one
uninterrupted run.  Both persistence paths are pinned:

* :mod:`repro.storage.checkpoint` — the in-memory engine's results
  saved/loaded/resumed through a store;
* :mod:`repro.storage.chasestore` — the chase that *runs inside* the
  store, suspended by budget and resumed in a fresh connection.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.logic import parse_instance, parse_theory
from repro.storage import (
    CheckpointError,
    SQLiteStore,
    StoreChaseError,
    checkpoint_chase,
    chase_into_store,
    content_digest,
    load_checkpoint,
    resume_from_checkpoint,
    resume_store_chase,
)
from repro.workloads import edge_cycle, example42_tc

# Timing-dependent per-round fields that legitimately differ between a
# suspended-and-resumed run and an uninterrupted one.
_WALL_CLOCK = ("seconds",)


def _strip_seconds(rounds):
    return [
        {key: value for key, value in entry.items() if key not in _WALL_CLOCK}
        for entry in rounds
    ]


class TestCheckpointRoundTrip:
    def test_load_rebuilds_result_exactly(self, tmp_path):
        theory = example42_tc()
        budget = ChaseBudget(max_rounds=3, max_atoms=100_000)
        run = chase(theory, edge_cycle(4), budget=budget)
        with SQLiteStore(str(tmp_path / "ck.db")) as store:
            checkpoint_chase(theory, edge_cycle(4), store, budget=budget)
            loaded = load_checkpoint(store, theory=theory)
        assert loaded.instance == run.instance
        assert loaded.round_added == run.round_added
        assert loaded.terminated == run.terminated
        assert loaded.base == run.base
        assert loaded.stats.counters == run.stats.counters

    def test_skolem_terms_survive(self, tmp_path):
        # The text serialization rejects Skolem terms; the store must not.
        theory = example42_tc()
        run = chase(theory, edge_cycle(3), budget=ChaseBudget(max_rounds=2))
        with SQLiteStore(str(tmp_path / "ck.db")) as store:
            checkpoint_chase(theory, edge_cycle(3), store, budget=ChaseBudget(max_rounds=2))
            assert store.to_instance() == run.instance

    def test_empty_store_raises(self):
        with SQLiteStore(":memory:") as store:
            with pytest.raises(CheckpointError):
                load_checkpoint(store)


class TestResumeEqualsUninterrupted:
    def test_checkpoint_resume_matches_one_shot(self, tmp_path):
        theory = example42_tc()
        cycle = edge_cycle(5)
        one_shot = chase(theory, cycle, budget=ChaseBudget(max_rounds=6, max_atoms=500_000))
        with SQLiteStore(str(tmp_path / "ck.db")) as store:
            checkpoint_chase(
                theory, cycle, store, budget=ChaseBudget(max_rounds=2, max_atoms=500_000)
            )
        # Fresh connection: nothing survives but the file.
        with SQLiteStore(str(tmp_path / "ck.db")) as store:
            resumed = resume_from_checkpoint(store, extra_rounds=4, theory=theory)
            assert resumed.instance == one_shot.instance
            assert resumed.round_added == one_shot.round_added
            assert resumed.stats.counters == one_shot.stats.counters
            assert _strip_seconds(resumed.stats.rounds) == _strip_seconds(
                one_shot.stats.rounds
            )
            # The extended checkpoint was written back round-exactly.
            assert store.max_round() == one_shot.rounds_run
            for round_ in range(one_shot.rounds_run + 1):
                assert store.atoms_in_round(round_) == one_shot.round_added[round_]

    def test_terminating_theory_resume_is_noop_extension(self, tmp_path):
        theory = parse_theory("E(x, y) -> R(x, y)", name="one-step")
        base = parse_instance("E(a, b). E(b, c)")
        full = chase(theory, base)
        with SQLiteStore(str(tmp_path / "ck.db")) as store:
            checkpoint_chase(theory, base, store)
            resumed = resume_from_checkpoint(store, extra_rounds=5, theory=theory)
        assert resumed.terminated
        assert resumed.instance == full.instance


class TestStoreChaseResume:
    def test_budget_stop_then_resume_matches_one_shot(self, tmp_path):
        theory = example42_tc()
        cycle = edge_cycle(5)
        one_shot = chase(theory, cycle, budget=ChaseBudget(max_rounds=6, max_atoms=500_000))
        path = str(tmp_path / "chase.db")
        with SQLiteStore(path) as store:
            chase_into_store(
                theory, cycle, store, budget=ChaseBudget(max_rounds=2, max_atoms=500_000)
            )
        # Resume in a fresh connection, theory re-parsed from the store.
        with SQLiteStore(path) as store:
            outcome = resume_store_chase(
                store, budget=ChaseBudget(max_rounds=4, max_atoms=500_000)
            )
            assert outcome.rounds_run == one_shot.rounds_run
            assert outcome.digest() == content_digest(one_shot.instance)
            for round_ in range(one_shot.rounds_run + 1):
                assert store.atoms_in_round(round_) == one_shot.round_added[round_]
            counters = outcome.stats.counters
            reference = one_shot.stats.counters
            for name in ("chase.rounds", "chase.matches", "chase.atoms_produced"):
                assert counters[name] == reference[name], name

    def test_resume_terminated_store_is_idempotent(self, tmp_path):
        theory = parse_theory("E(x, y) -> R(x, y)", name="one-step")
        base = parse_instance("E(a, b). E(b, c)")
        path = str(tmp_path / "chase.db")
        with SQLiteStore(path) as store:
            first = chase_into_store(theory, base, store)
            assert first.terminated
            digest = first.digest()
        with SQLiteStore(path) as store:
            again = resume_store_chase(store)
            assert again.terminated
            assert again.digest() == digest

    def test_resume_requires_state(self):
        with SQLiteStore(":memory:") as store:
            store.add_many(parse_instance("E(a, b)"))
            with pytest.raises(StoreChaseError):
                resume_store_chase(store)
