"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import main

TA = "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"


class TestChaseCommand:
    def test_chase_inline(self, capsys):
        code = main(["chase", "-e", TA, "Human(abel)", "--rounds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Mother(abel," in out
        assert out.startswith("# ")

    def test_chase_from_files(self, tmp_path, capsys):
        theory_file = tmp_path / "theory.tgd"
        theory_file.write_text(TA)
        data_file = tmp_path / "data.facts"
        data_file.write_text("Human(abel)")
        code = main(["chase", str(theory_file), str(data_file), "--rounds", "1"])
        assert code == 0
        assert "Human(abel)" in capsys.readouterr().out


class TestRewriteCommand:
    def test_rewrite_inline(self, capsys):
        code = main(["rewrite", "-e", TA, "q(x) := exists y. Mother(x, y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "complete: True" in out
        assert "Human(x)" in out

    def test_rewrite_incomplete_exit_code(self, capsys):
        non_bdd = "E(x, y, z), R(x, z) -> R(y, z)"
        code = main(
            [
                "rewrite",
                "-e",
                non_bdd,
                "q(x, z) := R(x, z)",
                "--max-kept",
                "20",
                "--max-steps",
                "500",
            ]
        )
        assert code == 2
        assert "complete: False" in capsys.readouterr().out


class TestAnswerCommand:
    def test_answer_inline(self, capsys):
        code = main(
            ["answer", "-e", TA, "Human(abel)", "q(x) := exists y. Mother(x, y)"]
        )
        assert code == 0
        assert "abel" in capsys.readouterr().out


class TestClassifyCommand:
    def test_classify(self, capsys):
        code = main(["classify", "-e", TA, "--name", "T_a"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_a" in out
        assert "linear" in out


class TestTerminationCommand:
    def test_ct_witness_found(self, capsys):
        theory = "E(x, y) -> exists z. E(y, z)\nE(x, x1), E(x1, x2) -> E(x1, x1)"
        code = main(["termination", "-e", theory, "E(a, b). E(b, c)"])
        assert code == 0
        assert "c_(T,D) = " in capsys.readouterr().out

    def test_no_witness_exit_code(self, capsys):
        code = main(
            [
                "termination",
                "-e",
                "E(x, y) -> exists z. E(y, z)",
                "E(a, b)",
                "--depth",
                "4",
            ]
        )
        assert code == 2
        assert "no Core-Termination witness" in capsys.readouterr().out


class TestFigureCommand:
    def test_figure1(self, capsys):
        code = main(["figure1", "-n", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3" in out and "1/1" in out


class TestParserErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
