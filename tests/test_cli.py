"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry import validate_stats_dict

TA = "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"


class TestChaseCommand:
    def test_chase_inline(self, capsys):
        code = main(["chase", "-e", TA, "Human(abel)", "--rounds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Mother(abel," in out
        assert out.startswith("# ")

    def test_chase_from_files(self, tmp_path, capsys):
        theory_file = tmp_path / "theory.tgd"
        theory_file.write_text(TA)
        data_file = tmp_path / "data.facts"
        data_file.write_text("Human(abel)")
        code = main(["chase", str(theory_file), str(data_file), "--rounds", "1"])
        assert code == 0
        assert "Human(abel)" in capsys.readouterr().out

    def test_chase_stats_prints_round_counters(self, capsys):
        code = main(["chase", "-e", TA, "Human(abel)", "--rounds", "2", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# stats: " in out and "chase.matches=" in out
        round_lines = [line for line in out.splitlines() if line.startswith("# round")]
        assert len(round_lines) == 2
        assert "matches=" in round_lines[0] and "total_atoms=" in round_lines[0]

    def test_chase_json_schema(self, capsys):
        code = main(["chase", "-e", TA, "Human(abel)", "--rounds", "2", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "chase"
        assert document["rounds_run"] == 2 and document["terminated"] is False
        validate_stats_dict(document["stats"])
        assert len(document["stats"]["rounds"]) == 2

    def test_chase_workers_same_atoms_and_telemetry(self, capsys):
        code = main(["chase", "-e", TA, "Human(abel)", "--rounds", "2", "--json"])
        assert code == 0
        sequential = json.loads(capsys.readouterr().out)
        code = main(
            ["chase", "-e", TA, "Human(abel)", "--rounds", "2", "--workers", "2", "--json"]
        )
        assert code == 0
        parallel = json.loads(capsys.readouterr().out)
        assert sorted(parallel["atoms"]) == sorted(sequential["atoms"])
        counters = parallel["stats"]["counters"]
        assert counters["parallel.workers"] == 2
        assert counters["parallel.rounds"] == 2


class TestChaseSqliteBackend:
    TC = (
        "E(x, y) -> exists x1, y1. R(x, y, x1, y1)\n"
        "R(x, y, x1, y1), E(y, z) -> exists z1. R(y, z, y1, z1)"
    )

    def test_chase_sqlite_matches_memory(self, tmp_path, capsys):
        args = ["chase", "-e", self.TC, "E(a, b). E(b, c)", "--rounds", "3", "--json"]
        assert main(args) == 0
        memory = json.loads(capsys.readouterr().out)
        db = str(tmp_path / "chase.db")
        assert main(args + ["--backend", "sqlite", "--db", db]) == 0
        sqlite = json.loads(capsys.readouterr().out)
        assert sqlite["backend"] == "sqlite"
        assert sorted(sqlite["atoms"]) == sorted(memory["atoms"])
        assert "digest" in sqlite
        validate_stats_dict(sqlite["stats"])
        assert sqlite["stats"]["counters"]["store.writes"] >= 1

    def test_chase_sqlite_resume_extends(self, tmp_path, capsys):
        db = str(tmp_path / "chase.db")
        base = ["chase", "-e", self.TC, "E(a, b). E(b, c)", "--backend", "sqlite", "--db", db, "--json"]
        assert main(base + ["--rounds", "1"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(base + ["--resume", "--rounds", "2"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["rounds_run"] > first["rounds_run"]
        assert len(resumed["atoms"]) > len(first["atoms"])
        # One uninterrupted run over the same budget matches exactly.
        db2 = str(tmp_path / "oneshot.db")
        one_shot = ["chase", "-e", self.TC, "E(a, b). E(b, c)", "--backend", "sqlite", "--db", db2, "--json"]
        assert main(one_shot + ["--rounds", "3"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert resumed["digest"] == reference["digest"]

    def test_chase_sqlite_falls_back_for_universal_heads(self, tmp_path, capsys):
        # T_d-style rules can't run inside the store; the CLI chases in
        # RAM and checkpoints the result instead of failing.
        db = str(tmp_path / "fallback.db")
        code = main(
            [
                "chase", "-e", "P(x) -> Q(x, y)", "P(a)",
                "--rounds", "2", "--backend", "sqlite", "--db", db, "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == "sqlite"
        assert any("Q(a," in atom for atom in document["atoms"])
        # The fallback writes checkpoint state only — never storechase.*
        # meta — so a later --resume continues the checkpoint cleanly.
        from repro.storage import SQLiteStore

        with SQLiteStore(db) as store:
            assert store.get_meta("storechase.schema") is None
            assert store.get_meta("checkpoint.schema") is not None
        code = main(
            [
                "chase", "-e", "P(x) -> Q(x, y)", "--resume",
                "--rounds", "2", "--backend", "sqlite", "--db", db, "--json",
            ]
        )
        assert code == 0

    def test_chase_sqlite_refuses_mixed_theories(self, tmp_path, capsys):
        # Re-running against an existing db with an unrelated theory must
        # be a reported refusal, not a silent checkpoint-merge of two
        # incompatible chases (the old except-StoreChaseError fallback).
        db = str(tmp_path / "mix.db")
        first = [
            "chase", "-e", self.TC, "E(a, b). E(b, c)",
            "--rounds", "2", "--backend", "sqlite", "--db", db, "--json",
        ]
        assert main(first) == 0
        before = json.loads(capsys.readouterr().out)["digest"]
        code = main(
            [
                "chase", "-e", "P(x) -> R(x)", "P(a)",
                "--rounds", "2", "--backend", "sqlite", "--db", db, "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "refusing to mix" in captured.err
        from repro.storage import SQLiteStore

        with SQLiteStore(db) as store:
            assert store.digest() == before

    def test_chase_sqlite_fallback_refuses_dirty_db(self, tmp_path, capsys):
        # The universal-head fallback must not overlay a checkpoint onto
        # a db already holding a store chase (or a different theory's
        # checkpoint).
        db = str(tmp_path / "dirty.db")
        assert main(
            [
                "chase", "-e", self.TC, "E(a, b)",
                "--rounds", "1", "--backend", "sqlite", "--db", db, "--json",
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "chase", "-e", "P(x) -> Q(x, y)", "P(a)",
                "--rounds", "1", "--backend", "sqlite", "--db", db, "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "store-chase state" in captured.err

    def test_chase_sqlite_resume_requires_db(self, capsys):
        # A fresh :memory: store can never hold resumable state; fail
        # with a diagnostic instead of an uncaught CheckpointError.
        code = main(
            ["chase", "-e", self.TC, "--resume", "--backend", "sqlite"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--resume requires --db" in captured.err


class TestRewriteCommand:
    def test_rewrite_inline(self, capsys):
        code = main(["rewrite", "-e", TA, "q(x) := exists y. Mother(x, y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "complete: True" in out
        assert "Human(x)" in out

    def test_rewrite_json(self, capsys):
        code = main(
            ["rewrite", "-e", TA, "q(x) := exists y. Mother(x, y)", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["complete"] is True
        assert document["disjunct_count"] == len(document["disjuncts"])
        validate_stats_dict(document["stats"])

    def test_rewrite_workers_matches_sequential(self, capsys):
        query = "q(x) := exists y. Mother(x, y)"
        assert main(["rewrite", "-e", TA, query, "--json"]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert main(["rewrite", "-e", TA, query, "--workers", "2", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert sorted(parallel["disjuncts"]) == sorted(sequential["disjuncts"])
        rewrite_counters = {
            name: count
            for name, count in parallel["stats"]["counters"].items()
            if name.startswith("rewrite.")
        }
        assert rewrite_counters == {
            name: count
            for name, count in sequential["stats"]["counters"].items()
            if name.startswith("rewrite.")
        }

    def test_rewrite_incomplete_exit_code(self, capsys):
        non_bdd = "E(x, y, z), R(x, z) -> R(y, z)"
        code = main(
            [
                "rewrite",
                "-e",
                non_bdd,
                "q(x, z) := R(x, z)",
                "--max-kept",
                "20",
                "--max-steps",
                "500",
            ]
        )
        assert code == 2
        assert "complete: False" in capsys.readouterr().out


class TestAnswerCommand:
    def test_answer_inline(self, capsys):
        code = main(
            ["answer", "-e", TA, "Human(abel)", "q(x) := exists y. Mother(x, y)"]
        )
        assert code == 0
        assert "abel" in capsys.readouterr().out

    def test_answer_json_reports_strategy_and_stats(self, capsys):
        code = main(
            [
                "answer",
                "-e",
                TA,
                "Human(abel)",
                "q(x) := exists y. Mother(x, y)",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["answer_count"] == 1
        assert document["answers"] == [["abel"]]
        assert document["strategy"] == "rewrite"
        assert document["cache_info"]["rewriting"]["misses"] == 1
        validate_stats_dict(document["stats"])
        assert document["stats"]["counters"]["rewrite.steps"] >= 1

    def test_answer_sqlite_backend_matches_memory(self, tmp_path, capsys):
        args = [
            "answer", "-e", TA, "Human(abel)",
            "q(x) := exists y. Mother(x, y)", "--json",
        ]
        assert main(args) == 0
        memory = json.loads(capsys.readouterr().out)
        db = str(tmp_path / "answers.db")
        assert main(args + ["--backend", "sqlite", "--db", db]) == 0
        sqlite = json.loads(capsys.readouterr().out)
        assert sqlite["backend"] == "sqlite"
        assert sqlite["strategy"] == "sql"
        assert sorted(sqlite["answers"]) == sorted(memory["answers"])
        assert sqlite["cache_info"]["sql"]["misses"] == 1

    def test_answer_workers_flag_accepted(self, capsys):
        # Rewriting may win the strategy race, but the flag must parse and
        # the answers must not depend on it.
        code = main(
            [
                "answer",
                "-e",
                TA,
                "Human(abel)",
                "q(x) := exists y. Mother(x, y)",
                "--workers",
                "2",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["answers"] == [["abel"]]


class TestClassifyCommand:
    def test_classify(self, capsys):
        code = main(["classify", "-e", TA, "--name", "T_a"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_a" in out
        assert "linear" in out

    def test_classify_json(self, capsys):
        code = main(["classify", "-e", TA, "--name", "T_a", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["name"] == "T_a"
        assert document["linear"] is True
        assert "known_bdd_by_syntax" in document


class TestTerminationCommand:
    def test_ct_witness_found(self, capsys):
        theory = "E(x, y) -> exists z. E(y, z)\nE(x, x1), E(x1, x2) -> E(x1, x1)"
        code = main(["termination", "-e", theory, "E(a, b). E(b, c)"])
        assert code == 0
        assert "c_(T,D) = " in capsys.readouterr().out

    def test_no_witness_exit_code(self, capsys):
        code = main(
            [
                "termination",
                "-e",
                "E(x, y) -> exists z. E(y, z)",
                "E(a, b)",
                "--depth",
                "4",
            ]
        )
        assert code == 2
        assert "no Core-Termination witness" in capsys.readouterr().out


class TestFigureCommand:
    def test_figure1(self, capsys):
        code = main(["figure1", "-n", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3" in out and "1/1" in out

    def test_figure1_json(self, capsys):
        code = main(["figure1", "-n", "2", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["n"] == 2
        assert all(
            level["satisfied"] == level["expected"] for level in document["levels"]
        )


class TestTerminationJson:
    def test_no_witness_json(self, capsys):
        code = main(
            [
                "termination",
                "-e",
                "E(x, y) -> exists z. E(y, z)",
                "E(a, b)",
                "--depth",
                "4",
                "--json",
            ]
        )
        assert code == 2
        document = json.loads(capsys.readouterr().out)
        assert document["bound"] is None and document["model"] is None


class TestParserErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
