"""Property-based tests (hypothesis) for the marked-query machinery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontier import (
    MarkedQuery,
    is_properly_marked,
    peel_true_components,
    proper_marking_closure,
)
from repro.frontier.process import _canonical_key
from repro.logic.atoms import Atom
from repro.logic.signature import Predicate
from repro.logic.terms import Variable

R = Predicate("R", 2)
G = Predicate("G", 2)

variables = st.integers(min_value=0, max_value=4).map(lambda i: Variable(f"v{i}"))
colour_atoms = st.tuples(
    st.sampled_from([R, G]), variables, variables
).map(lambda t: Atom(t[0], (t[1], t[2])))


@st.composite
def marked_queries(draw):
    atoms = tuple(dict.fromkeys(draw(st.lists(colour_atoms, min_size=1, max_size=5))))
    all_vars = sorted({v for a in atoms for v in a.variable_set()}, key=repr)
    marked = frozenset(v for v in all_vars if draw(st.booleans()))
    return MarkedQuery((), atoms, marked)


class TestClosureProperties:
    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_closure_is_superset(self, mq):
        closure = proper_marking_closure(mq)
        assert mq.marked <= closure

    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_closure_is_idempotent(self, mq):
        closure = proper_marking_closure(mq)
        remarked = mq.with_marking(closure)
        assert proper_marking_closure(remarked) == closure

    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_closure_is_properly_marked(self, mq):
        remarked = mq.with_marking(proper_marking_closure(mq))
        assert is_properly_marked(remarked)

    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_properness_iff_closure_fixpoint(self, mq):
        assert is_properly_marked(mq) == (proper_marking_closure(mq) == mq.marked)


class TestPeelingProperties:
    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_peeling_is_idempotent(self, mq):
        once = peel_true_components(mq)
        twice = peel_true_components(once)
        assert once.atoms == twice.atoms
        assert once.marked == twice.marked

    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_peeling_never_removes_marked_atoms(self, mq):
        peeled = peel_true_components(mq)
        for item in mq.real_atoms():
            if item.variable_set() & mq.marked:
                # Atoms directly touching a marked variable live in a
                # marked component and must survive.
                assert item in peeled.atoms

    @settings(max_examples=80, deadline=None)
    @given(marked_queries())
    def test_peeling_preserves_markings(self, mq):
        peeled = peel_true_components(mq)
        assert peeled.marked <= mq.marked


class TestCanonicalKeyProperties:
    @settings(max_examples=60, deadline=None)
    @given(marked_queries(), st.integers(min_value=0, max_value=1000))
    def test_key_invariant_under_random_renaming(self, mq, salt):
        mapping = {
            v: Variable(f"w{salt}_{i}")
            for i, v in enumerate(sorted(mq.variables(), key=repr))
        }
        renamed = MarkedQuery(
            tuple(mapping[v] for v in mq.answer_vars),
            tuple(a.substitute(mapping) for a in mq.atoms),
            frozenset(mapping[v] for v in mq.marked),
        )
        assert _canonical_key(mq) == _canonical_key(renamed)

    @settings(max_examples=60, deadline=None)
    @given(marked_queries())
    def test_key_is_deterministic(self, mq):
        assert _canonical_key(mq) == _canonical_key(mq)
