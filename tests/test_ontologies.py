"""Tests for the realistic ontology workloads (repro.workloads.ontologies)."""

from __future__ import annotations

import pytest

from repro.classes import classify
from repro.frontier import linear_locality_constant
from repro.rewriting import cross_validate, rewrite
from repro.workloads import all_ontology_workloads


@pytest.fixture(params=all_ontology_workloads(), ids=lambda w: w.name)
def workload(request):
    return request.param


class TestOntologyShape:
    def test_all_linear_hence_bdd_local_sticky(self, workload):
        report = classify(workload.theory)
        assert report.linear
        assert report.sticky
        assert report.known_bdd_by_syntax()
        assert linear_locality_constant(workload.theory) == 1

    def test_queries_reference_declared_predicates(self, workload):
        declared = {p.name for p in workload.theory.predicates()}
        for query in workload.queries.values():
            assert {a.predicate.name for a in query.atoms} <= declared

    def test_database_generation_is_seeded(self, workload):
        first = workload.database(25, seed=3)
        second = workload.database(25, seed=3)
        different = workload.database(25, seed=4)
        assert first == second
        assert first != different

    def test_database_scales(self, workload):
        small = workload.database(10, seed=1)
        large = workload.database(80, seed=1)
        assert len(large) > len(small)


class TestOntologyAnswering:
    def test_every_query_rewrites_completely(self, workload):
        for query in workload.queries.values():
            result = rewrite(workload.theory, query)
            assert result.complete
            assert result.max_disjunct_size() <= query.size

    def test_cross_validation_on_two_scales(self, workload):
        for scale in (15, 45):
            database = workload.database(scale, seed=6)
            for name, query in workload.queries.items():
                report = cross_validate(workload.theory, query, database)
                assert report.agree, (workload.name, name, scale)

    def test_ontology_adds_answers_beyond_raw_data(self, workload):
        """The whole point of OMQA: implied answers the raw data misses."""
        from repro.logic.homomorphism import evaluate

        database = workload.database(40, seed=9)
        gained = 0
        for query in workload.queries.values():
            raw = evaluate(query, database)
            report = cross_validate(workload.theory, query, database)
            assert raw <= report.rewriting_answers
            gained += len(report.rewriting_answers) - len(raw)
        assert gained > 0
