"""Tests for T_d specifics: queries, witnesses, Figure 1, Exercise 46."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier.td import (
    doubling_witness,
    figure1_apex_counts,
    figure1_grid,
    g_path_query,
    phi_r_n,
    render_figure1,
)
from repro.logic import holds
from repro.logic.terms import Constant
from repro.rewriting import answer_depth_profile
from repro.workloads import green_path, t_d, t_d_without_loop


class TestQueryBuilders:
    def test_g_path_query_shape(self):
        query = g_path_query(3)
        assert query.size == 3
        assert [v.name for v in query.answer_vars] == ["x0", "xn"]
        assert all(a.predicate.name == "G" for a in query.atoms)

    def test_phi_r_n_shape(self):
        query = phi_r_n(2)
        assert query.size == 2 * 2 + 1
        reds = [a for a in query.atoms if a.predicate.name == "R"]
        greens = [a for a in query.atoms if a.predicate.name == "G"]
        assert len(reds) == 4 and len(greens) == 1

    def test_phi_r_n_rejects_zero(self):
        with pytest.raises(ValueError):
            phi_r_n(0)

    def test_doubling_witness(self):
        instance, start, end = doubling_witness(2)
        assert len(instance) == 4
        assert start == Constant("a0") and end == Constant("a4")


class TestFigure1:
    def test_apex_triangle_counts(self):
        """Figure 1 quantified: level k realizes phi_R^k exactly on the
        windows of width 2^k — triangle rows 3, 1 for the G^4 path."""
        from repro.frontier.td import figure1_apex_counts

        rows = figure1_apex_counts(2)
        assert rows == [(1, 3, 3), (2, 1, 1)]

    def test_grid_levels_are_anchored_in_path(self):
        grid = figure1_grid(8, 3)
        assert any(level.red_atoms for level in grid)
        assert any(level.green_atoms for level in grid)

    def test_render_mentions_the_path(self):
        text = render_figure1(4, 3)
        assert "G^4" in text
        assert "level" in text

    def test_grid_atoms_are_grid_created(self):
        grid = figure1_grid(4, 2)
        for level in grid:
            for item in level.red_atoms + level.green_atoms:
                assert item.predicate.name in ("R", "G")


class TestExercise46:
    def test_without_loop_not_bdd_shape(self):
        """Exercise 46: dropping (loop) breaks BDD.  Evidence: the boolean
        query R(x,y),G(x,y) needs ever deeper chases as instances grow —
        with (loop) it is satisfied at depth 1 on every instance."""
        from repro.logic import parse_query

        query = parse_query("q() := exists x, y. R(x, y), G(x, y)")
        with_loop = answer_depth_profile(
            t_d(), query, [green_path(1), green_path(2)], probe_depth=3,
            max_atoms=100_000,
        )
        assert set(with_loop) == {1}
        without_loop = answer_depth_profile(
            t_d_without_loop(),
            query,
            [green_path(1), green_path(2)],
            probe_depth=3,
            max_atoms=100_000,
        )
        # Without the loop island the parallel R/G pair never materializes
        # on plain green paths within the probe horizon.
        assert set(without_loop) == {-1}

    def test_loop_island_exists(self):
        run = chase(t_d(), green_path(1), budget=ChaseBudget(max_rounds=1, max_atoms=10_000))
        self_loops = [
            item
            for item in run.instance
            if item.args[0] == item.args[1] and item not in run.base
        ]
        assert len(self_loops) == 2  # R(l, l) and G(l, l)
