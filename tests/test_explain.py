"""Tests for the derivation explainer (repro.chase.explain)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase, derivation_tree, explain, explain_answer
from repro.logic import parse_instance, parse_query
from repro.logic.homomorphism import find_query_homomorphism
from repro.workloads import exercise23, t_a


@pytest.fixture
def ta_run():
    return chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=3))


class TestDerivationTree:
    def test_base_atom_is_leaf(self, ta_run):
        base = next(iter(ta_run.base))
        tree = derivation_tree(ta_run, base)
        assert tree.rule_label is None
        assert tree.children == []
        assert tree.depth() == 0

    def test_tree_grounds_out_in_base(self, ta_run):
        for item in ta_run.instance:
            tree = derivation_tree(ta_run, item)
            assert tree.leaf_atoms() <= ta_run.base.atoms()

    def test_tree_depth_matches_round_structure(self, ta_run):
        deepest = max(
            (a for a in ta_run.instance),
            key=lambda a: ta_run.depth_of(a) or 0,
        )
        tree = derivation_tree(ta_run, deepest)
        assert tree.depth() == ta_run.depth_of(deepest)

    def test_unknown_atom_rejected(self, ta_run):
        from repro.logic.atoms import atom

        with pytest.raises(KeyError):
            derivation_tree(ta_run, atom("Nope", "x"))

    def test_depth_guard(self, ta_run):
        produced = next(a for a in ta_run.instance if a not in ta_run.base)
        with pytest.raises(RecursionError):
            derivation_tree(ta_run, produced, max_depth=0)


class TestExplainText:
    def test_explain_mentions_rules_and_base(self, ta_run):
        produced = max(
            ta_run.instance, key=lambda a: ta_run.depth_of(a) or 0
        )
        text = explain(ta_run, produced)
        assert "[base]" in text
        assert "[via r0]" in text
        assert text.splitlines()[0].startswith(repr(produced))

    def test_indentation_tracks_depth(self, ta_run):
        produced = max(
            ta_run.instance, key=lambda a: ta_run.depth_of(a) or 0
        )
        lines = explain(ta_run, produced).splitlines()
        indents = [len(line) - len(line.lstrip()) for line in lines]
        assert indents == sorted(indents)

    def test_explain_answer_joins_trees(self):
        run = chase(exercise23(), parse_instance("E(a, b). E(b, c)"),
                    budget=ChaseBudget(max_rounds=3, max_atoms=10_000))
        query = parse_query("q() := exists x. E(x, x)")
        assignment = find_query_homomorphism(query.atoms, run.instance)
        assert assignment is not None
        text = explain_answer(run, query.atoms, assignment)
        assert "[via" in text
        assert "[base]" in text
