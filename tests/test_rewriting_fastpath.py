"""The rewriting fast path: dedup, indexed subsumption, parallel parity.

The indexed engine (``RewritingBudget(use_indexes=True)``, the default)
must compute *exactly* what the naive reference mode computes — the three
filter layers only skip work whose outcome is forced.  This suite pins
that equivalence on the paper's fixtures and on seeded random linear
(hence BDD) theories, pins the new ``rewrite.*`` counters, and checks the
``workers=2`` mode is byte-identical to sequential.
"""

from __future__ import annotations

import random

import pytest

from repro.logic import parse_query, parse_theory
from repro.logic.atoms import Atom
from repro.logic.query import ConjunctiveQuery
from repro.logic.signature import Predicate
from repro.logic.terms import Constant, Variable
from repro.logic.tgd import TGD, Theory
from repro.rewriting import RewritingBudget, canonical_form, canonical_key, rewrite
from repro.rewriting.unification import _UnionFind
from repro.workloads import (
    example42_tc,
    t_a,
    t_p,
    university_ontology,
)


def keys_of(result) -> set:
    return {canonical_key(disjunct) for disjunct in result.ucq}


def rewrite_counters(result) -> dict:
    return {
        name: count
        for name, count in sorted(result.stats.counters.items())
        if name.startswith("rewrite.")
    }


FIXTURE_CASES = (
    # e1-adjacent: T_a's mother/human loop (BDD, not core-terminating).
    (t_a, "q(x) := exists y. Mother(x, y)"),
    (t_a, "q(x) := exists y, z. Mother(x, y), Mother(y, z)"),
    # e3 shape: path queries over the linear theory T_p.
    (t_p, "q(x0) := exists x1, x2, x3. E(x0, x1), E(x1, x2), E(x2, x3)"),
    # T_c (Example 42): multi-head, multi-body rules.
    (example42_tc, "q(x) := exists y, x1, y1. R(x, y, x1, y1)"),
    (example42_tc, "q(x) := exists y. E(x, y)"),
    # a3 shape: the university join.
    (
        university_ontology,
        "q(x) := exists c, p, d. EnrolledIn(x, c), TaughtBy(c, p), MemberOf(p, d)",
    ),
)


class TestNaiveIndexedEquivalence:
    @pytest.mark.parametrize("factory, text", FIXTURE_CASES)
    def test_fixture_kept_sets_match(self, factory, text):
        theory = factory()
        naive = rewrite(theory, parse_query(text), RewritingBudget(use_indexes=False))
        indexed = rewrite(theory, parse_query(text))
        assert naive.complete and indexed.complete
        assert keys_of(naive) == keys_of(indexed)
        assert naive.always_true == indexed.always_true

    @pytest.mark.parametrize("factory, text", FIXTURE_CASES)
    def test_fixture_shared_counters_match(self, factory, text):
        """The filters never change what happens, only what is *checked*.

        steps/produced/evicted/kept are schedule counters — identical in
        both modes; subsumed_dropped differs only by the isomorphic
        duplicates the dedup layer absorbs first.
        """
        theory = factory()
        naive = rewrite(theory, parse_query(text), RewritingBudget(use_indexes=False))
        indexed = rewrite(theory, parse_query(text))
        n, i = rewrite_counters(naive), rewrite_counters(indexed)
        for name in ("rewrite.steps", "rewrite.produced", "rewrite.kept",
                     "rewrite.evicted", "rewrite.evicted_while_queued"):
            assert n.get(name, 0) == i.get(name, 0), name
        assert n.get("rewrite.subsumed_dropped", 0) == i.get(
            "rewrite.subsumed_dropped", 0
        ) + i.get("rewrite.dedup_hits", 0)
        # The index never *adds* containment searches.
        assert i.get("rewrite.subsumption_checks", 0) <= n.get(
            "rewrite.subsumption_checks", 0
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_linear_theories_match(self, seed):
        """Seeded random linear theories: indexed == naive, kept set and all."""
        rng = random.Random(7000 + seed)
        theory = _random_linear_theory(rng)
        budget_args = dict(max_kept=200, max_steps=5_000)
        for _ in range(3):
            query = _random_query(rng)
            naive = rewrite(
                theory,
                query,
                RewritingBudget(use_indexes=False, **budget_args),
            )
            indexed = rewrite(theory, query, RewritingBudget(**budget_args))
            assert naive.complete == indexed.complete
            assert keys_of(naive) == keys_of(indexed), f"seed={seed}\n{theory}\n{query}"
            assert naive.always_true == indexed.always_true


class TestCounterPins:
    def test_dedup_hits_on_isomorphic_duplicates(self):
        """Two independent chains reach isomorphic disjuncts through
        different unifier orders; the canonical-key dedup must absorb them."""
        theory = university_ontology()
        query = parse_query(
            "q(x, u) := exists c, p, c2, p2. EnrolledIn(x, c), TaughtBy(c, p), "
            "EnrolledIn(u, c2), TaughtBy(c2, p2)"
        )
        result = rewrite(theory, query)
        counters = rewrite_counters(result)
        assert counters["rewrite.dedup_hits"] == 9
        assert counters["rewrite.subsumption_skipped"] == 182

    def test_subsumption_skipped_counts_pruned_candidates(self):
        theory = t_a()
        result = rewrite(
            theory, parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")
        )
        counters = rewrite_counters(result)
        # Every skipped candidate was provably hopeless, so the checks the
        # naive mode runs equal checks-performed + candidates-skipped minus
        # the searches dedup removed wholesale.
        naive = rewrite(
            theory,
            parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)"),
            RewritingBudget(use_indexes=False),
        )
        assert counters["rewrite.subsumption_skipped"] > 0
        assert (
            counters["rewrite.subsumption_checks"]
            <= naive.stats.counters["rewrite.subsumption_checks"]
        )

    def test_rules_skipped_counts_irrelevant_rules(self):
        """A query over E never needs the Mother/Human rules."""
        rules = tuple(t_a().rules()) + tuple(t_p().rules())
        theory = Theory(rules, name="mixed")
        result = rewrite(theory, parse_query("q(x) := exists y. E(x, y)"))
        assert result.stats.counters["rewrite.rules_skipped"] > 0
        naive = rewrite(
            theory,
            parse_query("q(x) := exists y. E(x, y)"),
            RewritingBudget(use_indexes=False),
        )
        assert keys_of(result) == keys_of(naive)

    def test_subsumption_checks_count_only_performed_searches(self):
        """The drop scan stops at the first containing CQ: the counter
        reflects searches actually run, not candidates enumerated."""
        theory = t_a()
        result = rewrite(theory, parse_query("q(x) := Human(x)"))
        counters = rewrite_counters(result)
        naive = rewrite(
            theory,
            parse_query("q(x) := Human(x)"),
            RewritingBudget(use_indexes=False),
        )
        # Checks + skipped + dedup-short-circuits account for every
        # candidate the naive scan visited; no double counting.
        assert counters["rewrite.subsumption_checks"] >= 0
        assert (
            naive.stats.counters["rewrite.subsumption_checks"]
            >= counters["rewrite.subsumption_checks"]
        )


class TestParallelParity:
    @pytest.mark.parametrize(
        "factory, text",
        (
            (t_a, "q(x) := exists y, z. Mother(x, y), Mother(y, z)"),
            (example42_tc, "q(x) := exists y, x1, y1. R(x, y, x1, y1)"),
            (
                university_ontology,
                "q(x) := exists c, p, d. EnrolledIn(x, c), TaughtBy(c, p), "
                "MemberOf(p, d)",
            ),
        ),
    )
    def test_workers_byte_identical_to_sequential(self, factory, text):
        theory = factory()
        sequential = rewrite(theory, parse_query(text))
        parallel = rewrite(theory, parse_query(text), RewritingBudget(workers=2))
        assert rewrite_counters(parallel) == rewrite_counters(sequential)
        assert sorted(repr(d) for d in parallel.ucq) == sorted(
            repr(d) for d in sequential.ucq
        )
        assert (parallel.complete, parallel.always_true, parallel.explored) == (
            sequential.complete,
            sequential.always_true,
            sequential.explored,
        )

    def test_workers_one_is_sequential(self):
        theory = t_a()
        result = rewrite(
            theory,
            parse_query("q(x) := exists y. Mother(x, y)"),
            RewritingBudget(workers=1),
        )
        assert "rwparallel.workers" not in result.stats.counters
        assert result.complete


class TestCanonicalKeys:
    def test_isomorphic_queries_share_keys(self):
        left = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        right = parse_query("q(u) := exists a, b. E(u, a), E(a, b)")
        assert canonical_key(left) == canonical_key(right)

    def test_distinct_constants_distinct_keys(self):
        left = parse_query("q(x) := E(x, 'c')")
        right = parse_query("q(x) := E(x, 'd')")
        assert canonical_key(left) != canonical_key(right)

    def test_answer_tuple_order_matters(self):
        left = parse_query("q(x, y) := E(x, y)")
        right = parse_query("q(y, x) := E(x, y)")
        assert canonical_key(left) != canonical_key(right)

    def test_random_renamings_preserve_keys(self):
        rng = random.Random(42)
        predicates = [Predicate("E", 2), Predicate("P", 1)]
        for _ in range(25):
            variables = [Variable(f"v{i}") for i in range(rng.randint(2, 5))]
            atoms = tuple(
                dict.fromkeys(
                    Atom(
                        (pred := rng.choice(predicates)),
                        tuple(rng.choice(variables) for _ in range(pred.arity)),
                    )
                    for _ in range(rng.randint(1, 4))
                )
            )
            used = sorted({v for a in atoms for v in a.variable_set()}, key=repr)
            answers = tuple(used[: rng.randint(0, len(used))])
            query = ConjunctiveQuery(answers, atoms)
            shuffled = list(used)
            rng.shuffle(shuffled)
            renaming = {
                old: Variable(f"w{index}")
                for index, old in zip(
                    (used.index(v) for v in shuffled), shuffled
                )
            }
            renamed = query.substitute(renaming)
            assert canonical_key(query) == canonical_key(renamed)

    def test_canonical_form_is_idempotent(self):
        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        form = canonical_form(query)
        assert canonical_form(form) is form
        assert canonical_key(form) == canonical_key(query)


class TestUnionFindIterative:
    def test_long_chain_does_not_recurse(self):
        """10k-element parent chain: the old recursive find would blow the
        default stack; the two-pass loop flattens it."""
        uf = _UnionFind()
        terms = [Constant(f"c{i}") for i in range(10_000)]
        for left, right in zip(terms, terms[1:]):
            # Build a deliberately deep chain by linking roots directly.
            uf._parent[left] = right
        uf._parent[terms[-1]] = terms[-1]
        root = uf.find(terms[0])
        assert root == terms[-1]
        # Path compression happened: every visited node now points at root.
        assert uf._parent[terms[0]] == terms[-1]
        assert uf._parent[terms[5000]] == terms[-1]

    def test_union_and_classes_still_work(self):
        uf = _UnionFind()
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        uf.union(a, b)
        uf.union(b, c)
        assert uf.find(a) == uf.find(c)
        (members,) = uf.classes().values()
        assert members == {a, b, c}


PREDICATES = [
    Predicate("P", 1),
    Predicate("Q", 1),
    Predicate("E", 2),
    Predicate("F", 2),
]


def _random_linear_theory(rng: random.Random) -> Theory:
    """2-4 linear rules over a small mixed-arity signature (BDD)."""
    rules = []
    for index in range(rng.randint(2, 4)):
        body_pred = rng.choice(PREDICATES)
        body_vars = [Variable(f"x{i}") for i in range(body_pred.arity)]
        body = (Atom(body_pred, tuple(body_vars)),)
        head_pred = rng.choice(PREDICATES)
        head_args = []
        existential = set()
        for position in range(head_pred.arity):
            if body_vars and rng.random() < 0.6:
                head_args.append(rng.choice(body_vars))
            else:
                fresh = Variable(f"z{position}")
                head_args.append(fresh)
                existential.add(fresh)
        head = (Atom(head_pred, tuple(head_args)),)
        try:
            rules.append(TGD(body, head, frozenset(existential), f"r{index}"))
        except ValueError:
            continue
    if not rules:
        return _random_linear_theory(rng)
    return Theory(rules, name="fastpath-fuzz")


def _random_query(rng: random.Random) -> ConjunctiveQuery:
    variables = [Variable(f"v{i}") for i in range(rng.randint(1, 3))]
    atoms = []
    for _ in range(rng.randint(1, 3)):
        predicate = rng.choice(PREDICATES)
        args = tuple(rng.choice(variables) for _ in range(predicate.arity))
        atoms.append(Atom(predicate, args))
    atoms = tuple(dict.fromkeys(atoms))
    used = sorted({v for a in atoms for v in a.variable_set()}, key=repr)
    answers = tuple(used[: rng.randint(0, min(2, len(used)))])
    return ConjunctiveQuery(answers, atoms)
