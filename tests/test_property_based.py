"""Property-based tests (hypothesis) on the core data structures and the
paper's foundational invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import ChaseBudget, chase
from repro.logic.atoms import Atom
from repro.logic.containment import (
    are_equivalent,
    core_query,
    is_contained_in,
    minimize_ucq,
)
from repro.logic.homomorphism import evaluate, find_structure_homomorphism
from repro.logic.instance import Instance
from repro.logic.query import ConjunctiveQuery
from repro.logic.signature import Predicate
from repro.logic.terms import Constant, Variable
from repro.workloads import exercise23, t_a, t_p

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
E = Predicate("E", 2)
P = Predicate("P", 1)

constants = st.integers(min_value=0, max_value=4).map(lambda i: Constant(f"c{i}"))
variables = st.integers(min_value=0, max_value=4).map(lambda i: Variable(f"v{i}"))


def _edge(source, target):
    return Atom(E, (source, target))


edge_facts = st.tuples(constants, constants).map(lambda p: _edge(*p))
unary_facts = constants.map(lambda c: Atom(P, (c,)))
instances = st.lists(
    st.one_of(edge_facts, unary_facts), min_size=1, max_size=7
).map(Instance)

edge_patterns = st.tuples(variables, variables).map(lambda p: _edge(*p))


@st.composite
def queries(draw):
    atoms = tuple(
        dict.fromkeys(draw(st.lists(edge_patterns, min_size=1, max_size=4)))
    )
    all_vars = sorted({v for a in atoms for v in a.variable_set()}, key=repr)
    answer_count = draw(st.integers(min_value=0, max_value=min(2, len(all_vars))))
    return ConjunctiveQuery(tuple(all_vars[:answer_count]), atoms)


# ----------------------------------------------------------------------
# Chase invariants
# ----------------------------------------------------------------------
class TestChaseInvariants:
    @settings(max_examples=30, deadline=None)
    @given(instances)
    def test_observation_8_literal_monotonicity(self, base):
        """Ch(T, F) is a literal subset of Ch(T, D) for F ⊆ D."""
        theory = exercise23()
        full = chase(theory, base, budget=ChaseBudget(max_rounds=3, max_atoms=20_000)).instance
        facts = sorted(base, key=repr)
        part = Instance(facts[: max(1, len(facts) // 2)])
        partial = chase(theory, part, budget=ChaseBudget(max_rounds=3, max_atoms=20_000)).instance
        assert partial.issubset(full)

    @settings(max_examples=30, deadline=None)
    @given(instances)
    def test_rounds_are_increasing(self, base):
        result = chase(t_p(), base, budget=ChaseBudget(max_rounds=3, max_atoms=20_000))
        previous = Instance()
        for depth in range(result.rounds_run + 1):
            current = result.prefix(depth)
            assert previous.issubset(current)
            previous = current

    @settings(max_examples=20, deadline=None)
    @given(instances)
    def test_base_preserved(self, base):
        result = chase(t_p(), base, budget=ChaseBudget(max_rounds=2, max_atoms=20_000))
        assert base.issubset(result.instance)


# ----------------------------------------------------------------------
# Containment / core invariants
# ----------------------------------------------------------------------
class TestContainmentInvariants:
    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_containment_is_reflexive(self, query):
        assert is_contained_in(query, query)

    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_core_is_equivalent_and_no_larger(self, query):
        core = core_query(query)
        assert core.size <= query.size
        assert are_equivalent(core, query)

    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_core_is_idempotent(self, query):
        core = core_query(query)
        assert core_query(core).size == core.size

    @settings(max_examples=25, deadline=None)
    @given(queries(), instances)
    def test_core_preserves_answers(self, query, instance):
        assert evaluate(query, instance) == evaluate(core_query(query), instance)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(queries(), min_size=1, max_size=3))
    def test_minimize_ucq_preserves_boolean_semantics(self, disjuncts):
        boolean = [ConjunctiveQuery((), q.atoms) for q in disjuncts]
        minimized = minimize_ucq(boolean)
        assert len(minimized) >= 1
        for original in boolean:
            assert any(
                is_contained_in(original, kept) for kept in minimized
            )


# ----------------------------------------------------------------------
# Homomorphism invariants
# ----------------------------------------------------------------------
class TestHomomorphismInvariants:
    @settings(max_examples=30, deadline=None)
    @given(instances)
    def test_identity_endomorphism_exists(self, instance):
        hom = find_structure_homomorphism(
            instance, instance, {t: t for t in instance.domain()}
        )
        assert hom is not None

    @settings(max_examples=30, deadline=None)
    @given(instances, queries())
    def test_answers_come_from_domain(self, instance, query):
        for answer in evaluate(query, instance):
            assert all(term in instance.domain() for term in answer)

    @settings(max_examples=20, deadline=None)
    @given(instances, instances)
    def test_union_admits_both_inclusions(self, left, right):
        merged = left.union(right)
        assert left.issubset(merged) and right.issubset(merged)


# ----------------------------------------------------------------------
# Rewriting invariants on a linear theory
# ----------------------------------------------------------------------
class TestRewritingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(instances, queries())
    def test_rewriting_agrees_with_chase_on_tp(self, instance, query):
        """rewrite-then-evaluate == chase-then-evaluate for every random
        instance and E-pattern query under the linear theory T_p."""
        from repro.rewriting import cross_validate

        report = cross_validate(t_p(), query, instance, max_rounds=12)
        assert report.agree
