"""Tests for the exercise/observation checkers (repro.frontier.exercises)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import (
    adjacency_contraction,
    atom_delay,
    exercise16_check,
    observation29_supports,
    observation49_report,
)
from repro.logic import parse_instance, parse_query
from repro.rewriting import rewrite
from repro.workloads import (
    edge_cycle,
    edge_path,
    exercise23,
    green_path,
    t_a,
    t_d,
    t_p,
)


class TestExercise13:
    def test_tp_adjacency_contraction_is_flat(self):
        """Linear theory: chase-adjacent base pairs were adjacent already."""
        values = [
            adjacency_contraction(t_p(), edge_path(n), depth=4)
            for n in (3, 5, 8)
        ]
        assert all(v <= 1 for v in values)

    def test_ta_contraction(self):
        base = parse_instance("Human(a). Mother(a, m). Mother(m, g)")
        assert adjacency_contraction(t_a(), base, depth=4) <= 2

    def test_exercise23_contraction_bounded(self):
        values = [
            adjacency_contraction(exercise23(), edge_path(n), depth=4)
            for n in (3, 6)
        ]
        assert max(values) <= 2  # the datalog loop joins x1 with itself


class TestExercise17:
    def test_ta_delay_is_one(self):
        run = chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=6))
        assert atom_delay(run) == 1

    def test_delay_never_negative(self):
        run = chase(exercise23(), edge_path(3), budget=ChaseBudget(max_rounds=5, max_atoms=50_000))
        assert atom_delay(run) >= 0

    def test_delay_bounded_across_instances(self):
        """Exercise 17: n_at depends on the theory, not the instance."""
        delays = set()
        for n in (2, 4):
            run = chase(exercise23(), edge_path(n), budget=ChaseBudget(max_rounds=5, max_atoms=50_000))
            delays.add(atom_delay(run))
        assert max(delays) <= 2


class TestObservation29:
    def test_supports_exist_within_rewriting_size(self):
        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        result = rewrite(t_p(), query)
        bound = result.max_disjunct_size()
        witnesses = observation29_supports(
            t_p(), query, edge_path(4), size_bound=bound, depth=4
        )
        assert witnesses is not None
        assert all(len(w.support) <= bound for w in witnesses)

    def test_supports_rederive_the_answer(self):
        from repro.logic.homomorphism import holds

        query = parse_query("q(x) := exists y. Mother(x, y)")
        witnesses = observation29_supports(
            t_a(),
            query,
            parse_instance("Human(a). Human(b)"),
            size_bound=1,
            depth=3,
        )
        assert witnesses is not None
        for witness in witnesses:
            run = chase(t_a(), witness.support, budget=ChaseBudget(max_rounds=3))
            assert holds(query, run.instance, witness.answer)

    def test_too_small_bound_reports_none(self):
        # Example-39-style: support genuinely needs more facts than allowed.
        from repro.workloads import example39_sticky, sticky_star

        query = parse_query(
            "q() := exists x, a, b, t. E(x, a, b, t)", answer_vars=[]
        )
        # All answers here are boolean; pick a bound of 0 effectively by
        # using a 1-fact bound against a query needing the E atom plus R.
        witnesses = observation29_supports(
            example39_sticky(),
            parse_query("q(a) := exists b1, b2, t. E(a, b1, b2, t)"),
            sticky_star(2),
            size_bound=0,
            depth=2,
        )
        assert witnesses is None


class TestObservation49:
    def test_td_chase_clean_modulo_loop(self):
        run = chase(t_d(), green_path(3), budget=ChaseBudget(max_rounds=3, max_atoms=300_000))
        report = observation49_report(run)
        assert report.clean_modulo_loop
        assert len(report.loop_cone_cycle_atoms) == 2  # R(l,l), G(l,l)

    def test_base_cycles_are_allowed(self):
        base = parse_instance("G(a, b). G(b, a)")
        run = chase(t_d(), base, budget=ChaseBudget(max_rounds=2, max_atoms=100_000))
        report = observation49_report(run)
        assert report.clean_modulo_loop

    def test_in_degree_accounting(self):
        run = chase(t_d(), green_path(2), budget=ChaseBudget(max_rounds=3, max_atoms=300_000))
        report = observation49_report(run)
        assert report.multi_in_edges == []
        assert report.edge_into_base_from_outside == []


class TestExercise16:
    def test_rewriting_disjuncts_rederive_the_query(self):
        query = parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")
        result = rewrite(t_a(), query)
        assert exercise16_check(t_a(), query, list(result.ucq), depth=8)

    def test_fails_for_wrong_disjunct(self):
        query = parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")
        bogus = parse_query("q(x) := exists y. Siblings(x, y)")
        assert not exercise16_check(t_a(), query, [bogus], depth=4)
