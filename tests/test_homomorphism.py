"""Unit tests for repro.logic.homomorphism."""

from __future__ import annotations

import pytest

from repro.logic.atoms import atom
from repro.logic.homomorphism import (
    apply_structure_homomorphism,
    evaluate,
    find_query_homomorphism,
    find_structure_homomorphism,
    holds,
    iter_query_homomorphisms,
    iter_structure_homomorphisms,
)
from repro.logic.instance import Instance
from repro.logic.parser import parse_instance, parse_query
from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.workloads import edge_cycle, edge_path


class TestQueryHomomorphisms:
    def test_path_query_on_path(self):
        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        path = edge_path(3)
        answers = evaluate(query, path)
        assert answers == {(Constant("a0"),), (Constant("a1"),)}

    def test_all_homomorphisms_enumerated(self):
        x, y = Variable("x"), Variable("y")
        query_atoms = (atom("E", x, y),)
        path = edge_path(2)
        homs = list(iter_query_homomorphisms(query_atoms, path))
        assert len(homs) == 2

    def test_constants_must_match_themselves(self):
        query = parse_query("q() := exists y. E('a0', y)")
        assert holds(query, edge_path(2))
        query_missing = parse_query("q() := exists y. E('zz', y)")
        assert not holds(query_missing, edge_path(2))

    def test_partial_assignment_respected(self):
        x, y = Variable("x"), Variable("y")
        hom = find_query_homomorphism(
            (atom("E", x, y),), edge_path(2), {x: Constant("a1")}
        )
        assert hom == {x: Constant("a1"), y: Constant("a2")}

    def test_repeated_variable_needs_loop(self):
        x = Variable("x")
        assert find_query_homomorphism((atom("E", x, x),), edge_path(2)) is None
        loops = Instance([atom("E", "a", "a")])
        assert find_query_homomorphism((atom("E", x, x),), loops) is not None

    def test_holds_arity_mismatch_rejected(self):
        query = parse_query("q(x) := P(x)")
        with pytest.raises(ValueError):
            holds(query, Instance(), ())

    def test_ground_skolem_terms_in_query_match_literally(self):
        term = FunctionTerm("f", (Constant("a"),))
        instance = Instance([atom("E", "a", term)])
        assert find_query_homomorphism((atom("E", "a", term),), instance) is not None

    def test_non_ground_function_terms_rejected(self):
        with pytest.raises(ValueError):
            list(
                iter_query_homomorphisms(
                    (atom("E", "a", FunctionTerm("f", (Variable("x"),))),),
                    Instance(),
                )
            )

    def test_semi_naive_delta_restriction(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        pattern = (atom("E", x, y), atom("E", y, z))
        old = Instance([atom("E", "a", "b")])
        full = old.union([atom("E", "b", "c")])
        delta = Instance([atom("E", "b", "c")])
        homs = list(iter_query_homomorphisms(pattern, full, delta=delta))
        # Only the match using the new edge (a->b->c) qualifies; it may be
        # reported more than once (once per pivot choice).
        images = {tuple(sorted((k.name, v.name) for k, v in h.items())) for h in homs}
        assert images == {(("x", "a"), ("y", "b"), ("z", "c"))}


class TestStructureHomomorphisms:
    def test_fold_path_onto_cycle(self):
        path = edge_path(4)
        cycle = edge_cycle(2, prefix="c")
        hom = find_structure_homomorphism(path, cycle)
        assert hom is not None
        image = apply_structure_homomorphism(path, hom)
        assert image.issubset(cycle)

    def test_cycle_does_not_fold_onto_path(self):
        cycle = edge_cycle(3, prefix="c")
        path = edge_path(10)
        assert find_structure_homomorphism(cycle, path) is None

    def test_constants_can_be_remapped_unless_fixed(self):
        source = parse_instance("E(a, b)")
        target = parse_instance("E(c, d)")
        assert find_structure_homomorphism(source, target) is not None
        pinned = {Constant("a"): Constant("a")}
        assert find_structure_homomorphism(source, target, pinned) is None

    def test_fixed_identity_found(self):
        source = parse_instance("E(a, b). E(b, c)")
        target = parse_instance("E(a, b). E(b, b)")
        fixed = {Constant("a"): Constant("a")}
        hom = find_structure_homomorphism(source, target, fixed)
        assert hom is not None
        assert hom[Constant("a")] == Constant("a")
        assert hom[Constant("c")] == Constant("b")

    def test_all_structure_homs_cover_domain(self):
        source = parse_instance("E(a, b)")
        target = parse_instance("E(c, c). E(c, d)")
        for hom in iter_structure_homomorphisms(source, target):
            assert set(hom) == source.domain()

    def test_image_is_homomorphic(self):
        source = edge_path(3)
        hom = {term: Constant("z") for term in source.domain()}
        image = apply_structure_homomorphism(source, hom)
        assert image.atoms() == frozenset({atom("E", "z", "z")})
