"""End-to-end fuzzing: random linear theories, instances and queries.

Linear theories are always BDD (Section 1), so on any instance the two
answering strategies must agree exactly.  This drives the whole stack —
parser-less construction, skolemization, chase, piece rewriting,
containment, evaluation — against itself over randomized inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.logic.atoms import Atom
from repro.logic.instance import Instance
from repro.logic.query import ConjunctiveQuery
from repro.logic.signature import Predicate
from repro.logic.terms import Constant, Variable
from repro.logic.tgd import TGD, Theory
from repro.rewriting import RewritingBudget, cross_validate

PREDICATES = [Predicate("P", 1), Predicate("Q", 1), Predicate("E", 2), Predicate("F", 2)]


def random_linear_theory(rng: random.Random) -> Theory:
    """2-4 linear rules over a small mixed-arity signature."""
    rules = []
    for index in range(rng.randint(2, 4)):
        body_pred = rng.choice(PREDICATES)
        body_vars = [Variable(f"x{i}") for i in range(body_pred.arity)]
        body = (Atom(body_pred, tuple(body_vars)),)
        head_pred = rng.choice(PREDICATES)
        head_args = []
        existential = set()
        for position in range(head_pred.arity):
            if body_vars and rng.random() < 0.6:
                head_args.append(rng.choice(body_vars))
            else:
                fresh = Variable(f"z{position}")
                head_args.append(fresh)
                existential.add(fresh)
        head = (Atom(head_pred, tuple(head_args)),)
        try:
            rules.append(TGD(body, head, frozenset(existential), f"r{index}"))
        except ValueError:
            continue
    if not rules:
        return random_linear_theory(rng)
    return Theory(rules, name="fuzz")


def random_instance(rng: random.Random) -> Instance:
    constants = [Constant(f"c{i}") for i in range(rng.randint(2, 4))]
    instance = Instance()
    for _ in range(rng.randint(1, 6)):
        predicate = rng.choice(PREDICATES)
        args = tuple(rng.choice(constants) for _ in range(predicate.arity))
        instance.add(Atom(predicate, args))
    return instance


def random_query(rng: random.Random) -> ConjunctiveQuery:
    variables = [Variable(f"v{i}") for i in range(rng.randint(1, 3))]
    atoms = []
    for _ in range(rng.randint(1, 3)):
        predicate = rng.choice(PREDICATES)
        args = tuple(rng.choice(variables) for _ in range(predicate.arity))
        atoms.append(Atom(predicate, args))
    atoms = tuple(dict.fromkeys(atoms))
    used = sorted({v for a in atoms for v in a.variable_set()}, key=repr)
    answers = tuple(used[: rng.randint(0, min(2, len(used)))])
    return ConjunctiveQuery(answers, atoms)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(12))
def test_linear_fuzz_agreement(seed):
    """rewrite-then-evaluate == chase-then-evaluate, 12 random worlds."""
    rng = random.Random(1000 + seed)
    theory = random_linear_theory(rng)
    budget = RewritingBudget(max_kept=300, max_steps=20_000)
    for trial in range(4):
        instance = random_instance(rng)
        query = random_query(rng)
        report = cross_validate(theory, query, instance, budget, max_rounds=20)
        assert report.agree, (
            f"seed={seed} trial={trial}\n{theory}\n{instance}\n{query}"
        )


@pytest.mark.parametrize("seed", range(4))
def test_linear_fuzz_quick(seed):
    """A fast always-on slice of the fuzz suite."""
    rng = random.Random(2000 + seed)
    theory = random_linear_theory(rng)
    budget = RewritingBudget(max_kept=300, max_steps=20_000)
    instance = random_instance(rng)
    query = random_query(rng)
    report = cross_validate(theory, query, instance, budget, max_rounds=20)
    assert report.agree
