"""Tests for repro.incremental (delta adds, DRed deletes) and the
store-backed counterpart ``update_store_chase``."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import incremental_update
from repro.chase import ChaseBudget, chase
from repro.logic import Instance, parse_instance, parse_theory
from repro.logic.atoms import Atom
from repro.logic.signature import Predicate
from repro.logic.terms import Constant
from repro.storage import (
    SQLiteStore,
    StoreChaseError,
    chase_into_store,
    content_digest,
    resume_store_chase,
    update_store_chase,
)

TC = parse_theory(
    "E(x, y), E(y, z) -> E(x, z)\n"
    "E(x, y) -> exists m. M(x, m)\n"
    "M(x, m) -> H(x)",
    name="tc-exists",
)
BUDGET = ChaseBudget(max_rounds=40, max_atoms=200_000)


def fact(text: str) -> Atom:
    return next(iter(parse_instance(text)))


def scratch_digest(theory, base) -> str:
    run = chase(theory, Instance(sorted(base, key=repr)), budget=BUDGET)
    assert run.terminated
    return content_digest(run.instance)


# ----------------------------------------------------------------------
# In-memory engine
# ----------------------------------------------------------------------
class TestInMemoryUpdates:
    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    def test_addition_matches_scratch(self, backend):
        base = parse_instance("E(a, b). E(b, c).")
        run = chase(TC, base, budget=BUDGET, backend=backend)
        outcome = incremental_update(
            run, add=[fact("E(c, d).")], budget=BUDGET, backend=backend
        )
        assert outcome.changed and outcome.result.terminated
        assert content_digest(outcome.result.instance) == scratch_digest(
            TC, set(base) | {fact("E(c, d).")}
        )

    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    def test_retraction_matches_scratch(self, backend):
        base = parse_instance("E(a, b). E(b, c). E(c, d).")
        run = chase(TC, base, budget=BUDGET, backend=backend)
        outcome = incremental_update(
            run, retract=[fact("E(b, c).")], budget=BUDGET, backend=backend
        )
        assert outcome.result.terminated
        assert content_digest(outcome.result.instance) == scratch_digest(
            TC, set(base) - {fact("E(b, c).")}
        )

    def test_combined_add_retract(self):
        base = parse_instance("E(a, b). E(b, c).")
        run = chase(TC, base, budget=BUDGET)
        outcome = incremental_update(
            run,
            add=[fact("E(c, d)."), fact("E(d, a).")],
            retract=[fact("E(a, b).")],
            budget=BUDGET,
        )
        expected = (set(base) - {fact("E(a, b).")}) | {
            fact("E(c, d)."),
            fact("E(d, a)."),
        }
        assert content_digest(outcome.result.instance) == scratch_digest(TC, expected)

    def test_multi_derivation_fact_survives(self):
        # Q(a) is derivable from both P(a) and R(a); retracting P(a) must
        # over-delete it (single recorded derivation) then bring it back.
        theory = parse_theory("P(x) -> Q(x)\nR(x) -> Q(x)", name="two-roads")
        base = parse_instance("P(a). R(a).")
        run = chase(theory, base, budget=BUDGET)
        outcome = incremental_update(run, retract=[fact("P(a).")], budget=BUDGET)
        assert fact("Q(a).") in outcome.result.instance
        assert content_digest(outcome.result.instance) == scratch_digest(
            theory, {fact("R(a).")}
        )

    def test_cascade_delete(self):
        theory = parse_theory("A(x) -> B(x)\nB(x) -> C(x)", name="chain")
        run = chase(theory, parse_instance("A(a)."), budget=BUDGET)
        outcome = incremental_update(run, retract=[fact("A(a).")], budget=BUDGET)
        assert len(outcome.result.instance) == 0
        assert outcome.overdeleted == 2  # B(a), C(a) beyond the retraction

    def test_base_fact_also_derivable_is_retractable(self):
        # E(a, c) is both base and derivable via transitivity: retracting
        # it must succeed, and the fact reappears as a derived atom.
        base = parse_instance("E(a, b). E(b, c). E(a, c).")
        run = chase(TC, base, budget=BUDGET)
        outcome = incremental_update(run, retract=[fact("E(a, c).")], budget=BUDGET)
        assert fact("E(a, c).") in outcome.result.instance  # re-derived
        assert content_digest(outcome.result.instance) == scratch_digest(
            TC, set(base) - {fact("E(a, c).")}
        )

    def test_noop_keeps_instance_and_counts(self):
        base = parse_instance("E(a, b). E(b, c).")
        run = chase(TC, base, budget=BUDGET)
        outcome = incremental_update(
            run,
            add=[fact("E(a, b).")],  # already base
            retract=[fact("E(x1, x2).")],  # absent
            budget=BUDGET,
        )
        assert not outcome.changed
        assert outcome.result.instance is run.instance
        assert outcome.stats.counters["delta.noops"] == 1

    def test_rejects_unterminated_input(self):
        run = chase(TC, parse_instance("E(a, b). E(b, c)."), budget=ChaseBudget(max_rounds=1))
        assert not run.terminated
        with pytest.raises(ValueError):
            incremental_update(run, add=[fact("E(c, d).")])

    def test_rejects_add_retract_overlap(self):
        run = chase(TC, parse_instance("E(a, b)."), budget=BUDGET)
        with pytest.raises(ValueError):
            incremental_update(
                run, add=[fact("E(c, d).")], retract=[fact("E(c, d).")]
            )

    def test_rejects_derived_retract(self):
        base = parse_instance("E(a, b). E(b, c).")
        run = chase(TC, base, budget=BUDGET)
        with pytest.raises(ValueError, match="derived"):
            incremental_update(run, retract=[fact("E(a, c).")])  # derived only

    def test_universal_heads_refuse_retraction_allow_addition(self):
        theory = parse_theory("P(x) -> Q(x, y)", name="universal-head")
        run = chase(theory, parse_instance("P(a)."), budget=BUDGET)
        with pytest.raises(ValueError, match="universal head"):
            incremental_update(run, retract=[fact("P(a).")])
        outcome = incremental_update(run, add=[fact("P(b).")], budget=BUDGET)
        assert content_digest(outcome.result.instance) == scratch_digest(
            theory, {fact("P(a)."), fact("P(b).")}
        )

    def test_telemetry_counters(self):
        base = parse_instance("E(a, b). E(b, c). E(c, d).")
        run = chase(TC, base, budget=BUDGET)
        outcome = incremental_update(
            run, add=[fact("E(d, e).")], retract=[fact("E(a, b).")], budget=BUDGET
        )
        counters = outcome.stats.counters
        assert counters["delta.updates"] == 1
        assert counters["delta.added_base"] == 1
        assert counters["delta.retracted_base"] == 1
        assert counters["delta.rounds"] >= 1
        assert "delta" in outcome.stats.phases


# ----------------------------------------------------------------------
# Property-based equivalence: maintained == from-scratch, every step
# ----------------------------------------------------------------------
E = Predicate("E", 2)
consts = st.integers(min_value=0, max_value=6).map(lambda i: Constant(f"c{i}"))
edges = st.tuples(consts, consts).map(lambda pair: Atom(E, pair))
bases = st.lists(edges, min_size=2, max_size=8).map(
    lambda facts: sorted(set(facts), key=repr)
)
scripts = st.lists(
    st.tuples(st.sampled_from(["add", "retract"]), st.lists(edges, min_size=1, max_size=3)),
    min_size=1,
    max_size=4,
)


def _step(op, facts, current):
    """Normalize one script step against the current base."""
    if op == "add":
        return list(facts), []
    hits = [item for item in facts if item in current]
    if not hits and current:
        hits = sorted(current, key=repr)[:1]
    return [], hits


class TestPropertyEquivalence:
    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    @settings(max_examples=15, deadline=None)
    @given(base=bases, script=scripts)
    def test_engine_updates_match_scratch(self, backend, base, script):
        result = chase(TC, Instance(base), budget=BUDGET, backend=backend)
        current = set(base)
        for op, facts in script:
            add, retract = _step(op, facts, current)
            outcome = incremental_update(
                result, add=add, retract=retract, budget=BUDGET, backend=backend
            )
            result = outcome.result
            current = (current - set(retract)) | set(add)
            assert result.terminated
            assert content_digest(result.instance) == scratch_digest(TC, current)

    @settings(max_examples=10, deadline=None)
    @given(base=bases, script=scripts)
    def test_store_updates_match_scratch(self, base, script):
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, Instance(base), store, budget=BUDGET)
            current = set(base)
            for op, facts in script:
                add, retract = _step(op, facts, current)
                update_store_chase(store, TC, add=add, retract=retract, budget=BUDGET)
                current = (current - set(retract)) | set(add)
                assert store.digest() == scratch_digest(TC, current)


# ----------------------------------------------------------------------
# Store-backed updates
# ----------------------------------------------------------------------
class TestStoreUpdates:
    def test_round_trip_add_retract(self):
        base = parse_instance("E(a, b). E(b, c).")
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, base, store, budget=BUDGET)
            update_store_chase(store, TC, add=[fact("E(c, d).")], budget=BUDGET)
            assert store.digest() == scratch_digest(
                TC, set(base) | {fact("E(c, d).")}
            )
            update_store_chase(store, TC, retract=[fact("E(b, c).")], budget=BUDGET)
            assert store.digest() == scratch_digest(
                TC, (set(base) | {fact("E(c, d).")}) - {fact("E(b, c).")}
            )

    def test_rejects_derived_retract(self):
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, parse_instance("E(a, b). E(b, c)."), store, budget=BUDGET)
            with pytest.raises(ValueError, match="derived"):
                update_store_chase(store, TC, retract=[fact("E(a, c).")])

    def test_base_facts_never_gain_supports(self):
        # E(a, c) is base AND re-derivable: the support recorder must
        # keep it support-free so the DRed cascade cannot delete it.
        base = parse_instance("E(a, b). E(b, c). E(a, c). E(c, d).")
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, base, store, budget=BUDGET)
            update_store_chase(store, TC, retract=[fact("E(a, b).")], budget=BUDGET)
            assert fact("E(a, c).") in store
            assert store.digest() == scratch_digest(
                TC, set(base) - {fact("E(a, b).")}
            )

    def test_promoted_fact_survives_parent_retraction(self):
        # Adding an already-derived fact promotes it to base: it must
        # survive the retraction of the facts that once derived it.
        base = parse_instance("E(a, b). E(b, c).")
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, base, store, budget=BUDGET)
            update_store_chase(store, TC, add=[fact("E(a, c).")], budget=BUDGET)
            update_store_chase(store, TC, retract=[fact("E(a, b).")], budget=BUDGET)
            assert fact("E(a, c).") in store
            assert store.digest() == scratch_digest(
                TC, {fact("E(b, c)."), fact("E(a, c).")}
            )

    def test_refuses_pre_supports_databases(self):
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, parse_instance("E(a, b)."), store, budget=BUDGET)
            store.set_meta("storechase.supports", "0")
            with pytest.raises(StoreChaseError, match="support"):
                update_store_chase(store, TC, retract=[fact("E(a, b).")])

    def test_pending_repair_blocks_resume_and_is_finished_by_update(self):
        # A crash between the deletion transaction and the re-derive
        # rounds leaves storechase.repair set; resume must refuse and a
        # plain update call must finish the repair.
        base = parse_instance("E(a, b). E(b, c).")
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, base, store, budget=BUDGET)
            digest = store.digest()
            store.set_meta("storechase.repair", "1")
            with pytest.raises(StoreChaseError, match="interrupted incremental"):
                resume_store_chase(store, TC, budget=BUDGET)
            result = update_store_chase(store, TC, budget=BUDGET)
            assert result.terminated
            assert store.get_meta("storechase.repair") == "0"
            assert store.digest() == digest

    def test_noop_update(self):
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, parse_instance("E(a, b)."), store, budget=BUDGET)
            digest = store.digest()
            result = update_store_chase(
                store, TC, add=[fact("E(a, b).")], retract=[fact("E(x1, x2).")]
            )
            assert store.digest() == digest
            assert store.stats.counters["delta.noops"] >= 1
            assert result.terminated

    def test_counters_and_supports_accounting(self):
        base = parse_instance("E(a, b). E(b, c). E(c, d).")
        with SQLiteStore(":memory:") as store:
            chase_into_store(TC, base, store, budget=BUDGET)
            assert store.support_count() > 0
            update_store_chase(store, TC, retract=[fact("E(a, b).")], budget=BUDGET)
            counters = store.stats.counters
            assert counters["delta.updates"] == 1
            assert counters["delta.retracted_base"] == 1
            assert counters["delta.overdeleted"] >= 1
            assert counters["delta.rounds"] >= 1
