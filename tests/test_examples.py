"""Integration tests: every example script runs clean end-to-end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExampleScripts:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Both strategies agree" in result.stdout

    def test_ontology_mediated_qa(self):
        result = _run("ontology_mediated_qa.py")
        assert result.returncode == 0, result.stderr
        assert "Every query agreed" in result.stdout

    @pytest.mark.slow
    def test_frontier_tour(self):
        result = _run("frontier_tour.py")
        assert result.returncode == 0, result.stderr
        assert "Tour complete" in result.stdout
        # Every stop printed its banner.
        for stop in range(1, 8):
            assert f"{stop}." in result.stdout

    @pytest.mark.slow
    def test_td_doubling(self):
        result = _run("td_doubling.py", "2")
        assert result.returncode == 0, result.stderr
        assert "CLEAN" in result.stdout
        assert "G^4" in result.stdout

    def test_normalization_walkthrough(self):
        result = _run("normalization_walkthrough.py")
        assert result.returncode == 0, result.stderr
        assert "Crucial Lemma" in result.stdout
        assert "flat" in result.stdout

    def test_reproduce_all_quick(self):
        result = _run("reproduce_all.py")
        assert result.returncode == 0, result.stderr
        assert "Done in" in result.stdout
        assert "E1: T_d rewriting doubling" in result.stdout
