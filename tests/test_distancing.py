"""Tests for distancing (Definition 43) and its failure for T_d."""

from __future__ import annotations

import pytest

from repro.frontier import (
    distance_contraction,
    local_theories_are_distancing_bound,
    max_contraction_ratio,
)
from repro.frontier.td import doubling_witness
from repro.logic.terms import Constant
from repro.workloads import edge_path, t_d, t_p


class TestLinearTheoriesAreDistancing:
    def test_tp_never_contracts_distances(self):
        """Chasing T_p only grows paths forward; base distances survive."""
        path = edge_path(5)
        pairs = [(Constant("a0"), Constant("a5")), (Constant("a1"), Constant("a4"))]
        measured = distance_contraction(t_p(), path, pairs, depth=4)
        for pair in measured:
            assert pair.chase_distance == pair.base_distance
            assert pair.contraction_ratio <= 1.0

    def test_bounded_ratio_across_growing_paths(self):
        family = [
            (edge_path(n), [(Constant("a0"), Constant(f"a{n}"))]) for n in (3, 5, 7)
        ]
        assert max_contraction_ratio(t_p(), family, depth=4) <= 1.0

    def test_distancing_bound_helper(self):
        assert local_theories_are_distancing_bound(1, 1) == 1
        assert local_theories_are_distancing_bound(3, 2) == 6


class TestTdIsNotDistancing:
    @pytest.mark.parametrize("depth_n", [1, 2])
    def test_contraction_grows_like_two_to_n(self, depth_n):
        """Over G^{2^n}, the chase connects the endpoints within 2n+1 steps
        (the phi_R^n witness path) while the base distance is 2^n."""
        instance, start, end = doubling_witness(depth_n)
        rounds = 2 ** depth_n + 2
        measured = distance_contraction(
            t_d(), instance, [(start, end)], depth=rounds, max_atoms=1_000_000
        )[0]
        assert measured.base_distance == 2 ** depth_n
        assert measured.chase_distance <= 2 * depth_n + 1
        expected_ratio = (2 ** depth_n) / (2 * depth_n + 1)
        assert measured.contraction_ratio >= expected_ratio

    @pytest.mark.slow
    def test_ratio_exceeds_one_at_n_3(self):
        """2^n beats the 2n+1 witness path first at n = 3 (8 > 7): the
        chase genuinely contracts the endpoints' distance below the base
        distance, which no distancing constant can explain as n grows."""
        instance, start, end = doubling_witness(3)
        measured = distance_contraction(
            t_d(), instance, [(start, end)], depth=7, max_atoms=2_000_000
        )[0]
        assert measured.base_distance == 8
        assert measured.chase_distance <= 7
        assert measured.contraction_ratio > 1.0


class TestEdgeCases:
    def test_disconnected_pair_has_zero_ratio(self):
        from repro.logic import parse_instance

        base = parse_instance("E(a, b). E(c, d)")
        measured = distance_contraction(
            t_p(), base, [(Constant("a"), Constant("d"))], depth=3
        )[0]
        assert measured.contraction_ratio == 0.0
