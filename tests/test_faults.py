"""Chaos suite: fault injection, interruption, and crash-exact resume.

Everything here pins the robustness contract of ``docs/robustness.md``:
whatever interrupts a chase — a ``ChaseBudget.deadline_s``, a fired
:class:`~repro.chase.CancellationToken`, an injected worker death, or a
``SIGKILL`` to the whole process — the surviving state is a *complete
round prefix*, and resuming it reaches an atom-for-atom identical
fixpoint with consistent ``chase.*`` counters (Observation 8 made
operational against failure, not just against parallelism).

Injection sites come from :mod:`repro.faults`; the subprocess tests set
``REPRO_FAULTS`` in the child's environment, which is exactly how the CI
chaos job drives the CLI.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.chase import (
    CancellationToken,
    ChaseBudget,
    ChaseBudgetExceeded,
    ChaseCancelled,
    chase,
    resume,
)
from repro.chase.parallel import parallel_available
from repro.logic import parse_instance, parse_theory
from repro.storage import (
    CheckpointError,
    SQLiteStore,
    chase_into_store,
    load_checkpoint,
    open_checkpoint_store,
    resume_store_chase,
    save_checkpoint_atomic,
)
from repro.storage.base import content_digest
from repro.telemetry import Telemetry
from repro.workloads import edge_cycle, example42_tc

ROOT = Path(__file__).resolve().parent.parent

CHASE_COUNTERS = (
    "chase.rounds",
    "chase.matches",
    "chase.atoms_produced",
    "chase.dedup_hits",
)


def terminating_theory():
    return parse_theory(
        "E(x, y) -> R(x, y)\n"
        "R(x, y), E(y, z) -> R(x, z)\n"
        "R(x, y) -> exists w. S(y, w)\n"
        "S(x, y) -> T(y)",
        name="chaos",
    )


def chain(n):
    return parse_instance(" ".join(f"E(a{i}, a{i + 1})." for i in range(n)))


def assert_counters_match(stats, reference):
    for name in CHASE_COUNTERS:
        assert stats.counters[name] == reference.counters[name], name


class CountdownToken:
    """Duck-typed token that reports cancelled after N polls.

    Lets tests cut a run at a *deterministic* control check without
    wall-clock races; the engine only reads ``.cancelled``.
    """

    def __init__(self, checks):
        self.remaining = checks

    @property
    def cancelled(self):
        if self.remaining <= 0:
            return True
        self.remaining -= 1
        return False


class TestFaultRegistry:
    def setup_method(self):
        faults.clear()

    def teardown_method(self):
        faults.clear()

    def test_disarmed_registry_never_fires(self):
        assert not faults.active()
        assert not faults.fire("parallel.worker_death")

    def test_fire_consumes_and_matches_round(self):
        faults.inject("storechase.kill", round=3)
        assert not faults.fire("storechase.kill", round=2)
        assert faults.fire("storechase.kill", round=3)
        assert not faults.fire("storechase.kill", round=3)  # consumed

    def test_times_budget(self):
        faults.inject("sqlite.locked", times=2)
        assert faults.fire("sqlite.locked")
        assert faults.fire("sqlite.locked")
        assert not faults.fire("sqlite.locked")

    def test_install_from_env_parses_rounds(self):
        installed = faults.install_from_env("storechase.kill@4, sqlite.locked")
        assert installed == 2
        assert not faults.fire("storechase.kill", round=3)
        assert faults.fire("storechase.kill", round=4)
        assert faults.fire("sqlite.locked")

    def test_install_from_env_rejects_garbage(self):
        with pytest.raises(ValueError):
            faults.install_from_env("storechase.kill@not-a-round")


class TestEngineInterruption:
    """Deadline and cancellation leave an exactly-resumable prefix."""

    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    def test_deadline_zero_runs_no_rounds(self, backend):
        theory, base = terminating_theory(), chain(8)
        result = chase(
            theory, base, budget=ChaseBudget(deadline_s=0.0), backend=backend
        )
        assert result.rounds_run == 0
        assert not result.terminated
        assert result.stats.counters["chase.deadline_hit"] == 1
        assert result.instance.atoms() == base.atoms()

    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    @pytest.mark.parametrize("checks", [1, 5, 40])
    def test_cancel_resume_identical(self, backend, checks):
        theory, base = terminating_theory(), chain(10)
        reference = chase(theory, base, backend=backend)
        assert reference.terminated

        token = CountdownToken(checks)
        cut = chase(theory, base, backend=backend, cancel=token)
        assert not cut.terminated
        assert cut.stats.counters["chase.cancelled"] == 1
        # Every surviving round is a complete round of the reference run.
        for mine, theirs in zip(cut.round_added, reference.round_added):
            assert frozenset(mine) == frozenset(theirs)

        resumed = resume(cut, 100, backend=backend)
        assert resumed.terminated
        assert content_digest(resumed.instance) == content_digest(
            reference.instance
        )
        assert_counters_match(resumed.stats, reference.stats)

    def test_pre_cancelled_token_raises_under_raise_policy(self):
        theory, base = terminating_theory(), chain(4)
        token = CancellationToken()
        token.cancel()
        with pytest.raises(ChaseCancelled):
            chase(
                theory,
                base,
                budget=ChaseBudget(on_exceeded="raise"),
                cancel=token,
            )
        # ChaseCancelled must stay catchable as the budget error.
        assert issubclass(ChaseCancelled, ChaseBudgetExceeded)

    def test_deadline_interrupt_is_resumable(self):
        theory, base = terminating_theory(), chain(10)
        reference = chase(theory, base)
        cut = chase(theory, base, budget=ChaseBudget(deadline_s=0.0))
        resumed = resume(cut, 100)
        assert resumed.terminated
        assert content_digest(resumed.instance) == content_digest(
            reference.instance
        )
        assert_counters_match(resumed.stats, reference.stats)

    def test_aborted_round_recorded_without_partial_atoms(self):
        theory, base = terminating_theory(), chain(10)
        token = CountdownToken(3)
        cut = chase(theory, base, cancel=token)
        aborted = [entry for entry in cut.stats.rounds if entry.get("aborted")]
        if aborted:  # the cut landed inside a round, not on its boundary
            assert aborted[-1]["round"] == cut.rounds_run + 1
            assert aborted[-1]["total_atoms"] == len(cut.instance)


@pytest.mark.skipif(not parallel_available(), reason="needs fork start method")
class TestParallelFaults:
    def setup_method(self):
        faults.clear()

    def teardown_method(self):
        faults.clear()

    def test_worker_death_retries_shard_and_stays_exact(self):
        theory, cycle = example42_tc(), edge_cycle(6)
        budget = ChaseBudget(max_rounds=5, max_atoms=200_000)
        reference = chase(theory, cycle, budget=budget)
        faults.inject("parallel.worker_death", round=2)
        survived = chase(theory, cycle, budget=budget, workers=2)
        assert survived.stats.counters["parallel.worker_restarts"] == 1
        assert not survived.stats.counters.get("parallel.fallback_inprocess", 0)
        for mine, theirs in zip(survived.round_added, reference.round_added):
            assert frozenset(mine) == frozenset(theirs)
        assert_counters_match(survived.stats, reference.stats)
        assert multiprocessing.active_children() == []

    def test_respawn_failure_degrades_to_sequential(self):
        theory, cycle = example42_tc(), edge_cycle(6)
        budget = ChaseBudget(max_rounds=5, max_atoms=200_000)
        reference = chase(theory, cycle, budget=budget)
        faults.inject("parallel.worker_death", round=2)
        faults.inject("parallel.respawn_fail")
        degraded = chase(theory, cycle, budget=budget, workers=2)
        assert degraded.stats.counters["parallel.fallback_inprocess"] == 1
        for mine, theirs in zip(degraded.round_added, reference.round_added):
            assert frozenset(mine) == frozenset(theirs)
        assert_counters_match(degraded.stats, reference.stats)
        assert multiprocessing.active_children() == []

    @pytest.mark.parametrize("checks", [1, 4])
    def test_parallel_cancel_resume_identical(self, checks):
        theory, base = terminating_theory(), chain(10)
        reference = chase(theory, base)
        token = CountdownToken(checks)
        cut = chase(theory, base, workers=2, cancel=token)
        assert not cut.terminated
        assert cut.stats.counters["chase.cancelled"] == 1
        resumed = resume(cut, 100)
        assert resumed.terminated
        assert content_digest(resumed.instance) == content_digest(
            reference.instance
        )
        assert multiprocessing.active_children() == []

    def test_parallel_deadline_zero(self):
        theory, base = terminating_theory(), chain(8)
        result = chase(
            theory, base, workers=2, budget=ChaseBudget(deadline_s=0.0)
        )
        assert result.rounds_run == 0
        assert result.stats.counters["chase.deadline_hit"] == 1
        assert multiprocessing.active_children() == []

    def test_shutdown_leaves_no_children(self):
        theory, cycle = example42_tc(), edge_cycle(5)
        result = chase(
            theory,
            cycle,
            budget=ChaseBudget(max_rounds=3, max_atoms=200_000),
            workers=2,
        )
        assert not result.stats.counters.get("parallel.leaked_workers", 0)
        assert multiprocessing.active_children() == []


class TestSQLiteHardening:
    def setup_method(self):
        faults.clear()

    def teardown_method(self):
        faults.clear()

    def test_busy_timeout_pragma_set(self):
        with SQLiteStore(":memory:") as store:
            (timeout,) = store.connection.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout == 5_000

    def test_lock_retry_counts_and_succeeds(self):
        faults.inject("sqlite.locked", times=2)
        with SQLiteStore(":memory:") as store:
            store.add_many(chain(3))
            assert store.stats.counters["store.lock_retries"] == 2
            assert len(store) == 3

    def test_non_lock_errors_propagate(self):
        with SQLiteStore(":memory:") as store:
            store.add_many(chain(2))
            import sqlite3

            with pytest.raises(sqlite3.OperationalError):
                store._guarded(
                    lambda: store.connection.execute("SELECT * FROM nope")
                )

    def test_rollback_resets_caches_and_catalog(self):
        with SQLiteStore(":memory:") as store:
            store.add_many(chain(2))
            committed = len(store)
            # Open a transaction with new facts and new terms, then drop it.
            store.buffer(next(iter(parse_instance("Fresh(z1, z2)."))))
            store._flush_pending()
            store.rollback()
            assert len(store) == committed
            # The catalog must not advertise the rolled-back table.
            assert all(
                predicate.name != "Fresh" for predicate in store._tables
            )
            # The store stays fully usable after the reset.
            store.add_many(parse_instance("Fresh(z1, z2)."))
            assert len(store) == committed + 1


class TestStoreChaseCrash:
    """SIGKILL at randomized rounds; resume is digest- and counter-exact."""

    def setup_method(self):
        faults.clear()

    def teardown_method(self):
        faults.clear()

    def _reference(self):
        theory, base = terminating_theory(), chain(12)
        result = chase_into_store(theory, base, SQLiteStore(":memory:"))
        assert result.terminated
        return theory, base, result

    def _kill_subprocess(self, fault, db_path, batch_size=4096):
        script = (
            "import os, sys\n"
            f"os.environ['REPRO_FAULTS'] = {fault!r}\n"
            f"sys.path.insert(0, {str(ROOT / 'src')!r})\n"
            "from repro.storage import SQLiteStore, chase_into_store\n"
            "from repro.logic import parse_instance, parse_theory\n"
            "theory = parse_theory(\n"
            "    'E(x, y) -> R(x, y)\\n'\n"
            "    'R(x, y), E(y, z) -> R(x, z)\\n'\n"
            "    'R(x, y) -> exists w. S(y, w)\\n'\n"
            "    'S(x, y) -> T(y)',\n"
            "    name='chaos',\n"
            ")\n"
            "base = parse_instance(' '.join(\n"
            "    f'E(a{i}, a{i + 1}).' for i in range(12)))\n"
            f"store = SQLiteStore({str(db_path)!r}, batch_size={batch_size})\n"
            "chase_into_store(theory, base, store)\n"
            "raise SystemExit('fault did not fire')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        return proc

    @pytest.mark.parametrize("round_", [1, 2, 4])
    def test_sigkill_before_commit_resumes_exactly(self, tmp_path, round_):
        theory, base, reference = self._reference()
        db = tmp_path / f"kill{round_}.db"
        self._kill_subprocess(f"storechase.kill@{round_}", db)
        with open_checkpoint_store(db) as store:
            assert int(store.get_meta("storechase.rounds")) == round_ - 1
            resumed = resume_store_chase(store)
            assert resumed.terminated
            assert resumed.digest() == reference.digest()
            assert_counters_match(resumed.stats, reference.stats)

    @pytest.mark.parametrize("round_", [2, 3])
    def test_sigkill_midround_resumes_exactly(self, tmp_path, round_):
        theory, base, reference = self._reference()
        db = tmp_path / f"mid{round_}.db"
        # A small batch size forces the mid-round insert path to run (and
        # the kill to land) while the round's rows are still uncommitted.
        self._kill_subprocess(f"storechase.kill_midround@{round_}", db, batch_size=4)
        with open_checkpoint_store(db) as store:
            assert int(store.get_meta("storechase.rounds")) < round_
            resumed = resume_store_chase(store)
            assert resumed.terminated
            assert resumed.digest() == reference.digest()
            assert_counters_match(resumed.stats, reference.stats)

    def test_store_chase_cancel_rolls_back_midround(self):
        theory, base, reference = self._reference()
        token = CancellationToken()
        store = SQLiteStore(":memory:")
        original = SQLiteStore._select
        calls = {"n": 0}

        def tripping(self, sql, params=()):
            calls["n"] += 1
            if calls["n"] == 25:
                token.cancel()
            return original(self, sql, params)

        SQLiteStore._select = tripping
        try:
            cut = chase_into_store(theory, base, store, cancel=token)
        finally:
            SQLiteStore._select = original
        assert not cut.terminated
        assert store.stats.counters["chase.cancelled"] == 1
        resumed = resume_store_chase(store)
        assert resumed.terminated
        assert resumed.digest() == reference.digest()
        assert_counters_match(resumed.stats, reference.stats)

    def test_store_chase_deadline_zero(self):
        theory, base, reference = self._reference()
        store = SQLiteStore(":memory:")
        cut = chase_into_store(
            theory, base, store, budget=ChaseBudget(deadline_s=0.0)
        )
        assert cut.rounds_run == 0 and not cut.terminated
        assert store.stats.counters["chase.deadline_hit"] == 1
        resumed = resume_store_chase(store)
        assert resumed.terminated
        assert resumed.digest() == reference.digest()


class TestCheckpointAtomicity:
    def setup_method(self):
        faults.clear()

    def teardown_method(self):
        faults.clear()

    def test_atomic_save_round_trips(self, tmp_path):
        theory, base = terminating_theory(), chain(6)
        result = chase(theory, base)
        target = tmp_path / "ck.db"
        save_checkpoint_atomic(result, target)
        with open_checkpoint_store(target) as store:
            loaded = load_checkpoint(store)
        assert content_digest(loaded.instance) == content_digest(result.instance)
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_crash_between_write_and_rename_keeps_old_file(self, tmp_path):
        theory, base = terminating_theory(), chain(6)
        target = tmp_path / "ck.db"
        save_checkpoint_atomic(chase(theory, base), target)
        before = target.read_bytes()
        script = (
            "import os, sys\n"
            "os.environ['REPRO_FAULTS'] = 'checkpoint.crash'\n"
            f"sys.path.insert(0, {str(ROOT / 'src')!r})\n"
            "from repro.chase import chase\n"
            "from repro.storage import save_checkpoint_atomic\n"
            "from repro.logic import parse_instance, parse_theory\n"
            "theory = parse_theory('E(x, y) -> R(x, y)', name='crash')\n"
            "base = parse_instance('E(a, b). E(b, c).')\n"
            f"save_checkpoint_atomic(chase(theory, base), {str(target)!r})\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == 70, proc.stderr
        assert target.read_bytes() == before  # old checkpoint untouched

    def test_corrupt_database_is_a_checkpoint_error(self, tmp_path):
        garbage = tmp_path / "garbage.db"
        garbage.write_bytes(b"not a sqlite file" * 64)
        with pytest.raises(CheckpointError):
            open_checkpoint_store(garbage)


class TestTelemetryTimer:
    def test_timer_records_elapsed_on_exception(self):
        stats = Telemetry()
        with pytest.raises(RuntimeError):
            with stats.timer("doomed"):
                time.sleep(0.01)
                raise RuntimeError("boom")
        assert stats.phases["doomed"] >= 0.01
        assert stats.counters["doomed.interrupted"] == 1

    def test_timer_clean_path_matches_phase_semantics(self):
        stats = Telemetry()
        with stats.timer("fine"):
            pass
        assert "fine" in stats.phases
        assert stats.counters.get("fine.interrupted", 0) == 0


class TestCLISigint:
    """First Ctrl-C cancels cooperatively (exit 130, resumable state)."""

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigint_leaves_resumable_db_and_exits_130(self, tmp_path):
        theory_file = tmp_path / "theory.txt"
        theory_file.write_text(
            "E(x, y) -> R(x, y)\nR(x, y), E(y, z) -> R(x, z)\n",
            encoding="utf8",
        )
        instance_file = tmp_path / "instance.txt"
        n = 400
        instance_file.write_text(
            " ".join(f"E(a{i}, a{(i + 1) % n})." for i in range(n)),
            encoding="utf8",
        )
        db = tmp_path / "run.db"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "chase",
                str(theory_file),
                str(instance_file),
                "--backend",
                "sqlite",
                "--db",
                str(db),
                "--rounds",
                "5000",
                "--max-atoms",
                "99999999",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(2.0)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 130, stderr
        assert "--resume" in stderr
        # The interrupted database resumes to the exact fixpoint.
        reference = SQLiteStore(":memory:")
        expected = chase_into_store(
            parse_theory(theory_file.read_text(), name="chaos"),
            parse_instance(instance_file.read_text()),
            reference,
            budget=ChaseBudget(max_rounds=5000, max_atoms=99_999_999),
        )
        with open_checkpoint_store(db) as store:
            resumed = resume_store_chase(
                store,
                budget=ChaseBudget(max_rounds=5000, max_atoms=99_999_999),
            )
            assert resumed.terminated
            assert resumed.digest() == expected.digest()
