"""Tests for repro.chase.termination (Section 5: FES / Core Termination)."""

from __future__ import annotations

import pytest

from repro.chase import (
    all_instances_termination,
    chase,
    core_termination,
    is_model,
    minimize_model,
    violations,
)
from repro.logic import Instance, parse_instance, parse_theory
from repro.logic.atoms import atom
from repro.workloads import edge_cycle, edge_path, exercise23, t_a, t_p


class TestIsModel:
    def test_satisfied_datalog(self):
        theory = parse_theory("E(x, y) -> E(y, x)")
        symmetric = parse_instance("E(a, b). E(b, a)")
        assert is_model(symmetric, theory)
        assert not is_model(parse_instance("E(a, b)"), theory)

    def test_existential_witness_up_to_frontier(self):
        theory = parse_theory("P(x) -> exists y. E(x, y)")
        good = parse_instance("P(a). E(a, b)")
        bad = parse_instance("P(a). E(b, a)")
        assert is_model(good, theory)
        assert not is_model(bad, theory)

    def test_existential_equality_pattern_enforced(self):
        theory = parse_theory("P(x) -> exists y. T(x, y, y)")
        unequal = parse_instance("P(a). T(a, b, c)")
        equal = parse_instance("P(a). T(a, b, b)")
        assert not is_model(unequal, theory)
        assert is_model(equal, theory)

    def test_loop_models_exercise_23(self):
        theory = exercise23()
        model = parse_instance("E(a, b). E(b, c). E(b, b). E(c, c)")
        assert is_model(model, theory)
        assert not is_model(parse_instance("E(a, b). E(b, c). E(c, c)"), theory)
        assert not is_model(parse_instance("E(a, b). E(b, c)"), theory)

    def test_universal_variable_rule(self):
        theory = parse_theory("true -> exists z. R(x, z)")
        good = parse_instance("R(a, b). R(b, b)")
        bad = parse_instance("R(a, b). P(c)")
        assert is_model(good, theory)
        assert not is_model(bad, theory)

    def test_violations_reports_matches(self):
        theory = parse_theory("E(x, y) -> E(y, x)")
        found = violations(parse_instance("E(a, b). E(c, d)"), theory, limit=10)
        assert len(found) == 2


class TestCoreTermination:
    def test_exercise_22_tp_is_not_core_terminating(self):
        """Exercise 22: the path-growing theory has no CT witness."""
        witness = core_termination(t_p(), parse_instance("E(a, b)"), max_depth=6)
        assert witness is None

    def test_exercise_23_is_core_terminating(self):
        witness = core_termination(exercise23(), edge_path(3), max_depth=10)
        assert witness is not None
        assert is_model(witness.model, exercise23())
        assert edge_path(3).issubset(witness.model)

    def test_exercise_23_bound_is_uniform_across_paths(self):
        bounds = [
            core_termination(exercise23(), edge_path(n), max_depth=10).bound
            for n in (2, 3, 5, 7)
        ]
        assert len(set(bounds)) == 1  # Theorem 4's UBDD for this local CT theory

    def test_exercise_23_on_cycles(self):
        witness = core_termination(exercise23(), edge_cycle(4), max_depth=10)
        assert witness is not None
        assert is_model(witness.model, exercise23())

    def test_terminating_chase_gives_fixpoint_model(self):
        theory = parse_theory("P(x) -> exists y. Q(x, y)")
        witness = core_termination(theory, parse_instance("P(a)"), max_depth=5)
        assert witness is not None
        assert witness.bound == 1
        assert is_model(witness.model, theory)

    def test_model_already_saturated(self):
        theory = parse_theory("P(x) -> exists y. E(x, y)")
        saturated = parse_instance("P(a). E(a, b)")
        witness = core_termination(theory, saturated, max_depth=5)
        assert witness is not None
        assert witness.bound == 0

    def test_folding_is_identity_on_base(self):
        witness = core_termination(exercise23(), edge_path(3), max_depth=10)
        for term in edge_path(3).domain():
            assert witness.folding[term] == term


class TestAllInstancesTermination:
    def test_exercise_23_does_not_ait(self):
        """CT holds but the Skolem chase itself never reaches a fixpoint."""
        assert all_instances_termination(exercise23(), edge_path(2), max_rounds=8) is None

    def test_terminating_theory_aits(self):
        theory = parse_theory("P(x) -> exists y. Q(x, y)\nQ(x, y) -> R(y)")
        assert all_instances_termination(theory, parse_instance("P(a)")) == 2

    def test_ait_implies_ct_with_same_or_smaller_bound(self):
        theory = parse_theory("P(x) -> exists y. Q(x, y)\nQ(x, y) -> R(y)")
        base = parse_instance("P(a). P(b)")
        ait = all_instances_termination(theory, base)
        ct = core_termination(theory, base, max_depth=10)
        assert ct is not None and ait is not None
        assert ct.bound <= ait


class TestMinimizeModel:
    def test_fold_redundant_branch(self):
        model = parse_instance("E(a, b). E(a, c)")
        smaller = minimize_model(model)
        assert len(smaller) == 1

    def test_keep_protects_base(self):
        base = parse_instance("E(a, b). E(a, c)")
        kept = minimize_model(base, keep=base)
        assert kept == base

    def test_core_of_path_folding_into_loop(self):
        model = parse_instance("E(a, a). E(b, a)")
        base = parse_instance("E(b, a)")
        smaller = minimize_model(model, keep=base)
        # Nothing folds: b is pinned and E(a,a) is needed by nothing... it
        # can be dropped only via a retraction, but a maps where? a is
        # pinned too (it occurs in the kept base fact).
        assert smaller == model

    def test_disconnected_copy_folds_away(self):
        model = parse_instance("E(a, a). E(b, b)")
        smaller = minimize_model(model)
        assert len(smaller) == 1
