"""End-to-end tests for repro.service (the acceptance criteria live here).

The headline test drives two concurrent asyncio clients against one
sqlite-WAL theory — one appending facts while both answer the same CQ —
and requires every single response to be digest-identical to a fresh
from-scratch ``OMQASession.answer()`` over the final instance, with
``/metrics`` showing exactly one rewriting compile for the shared query
shape (the single-flight pin).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.logic import parse_instance, parse_query, parse_theory
from repro.rewriting import OMQASession
from repro.service import (
    OMQAService,
    ServiceClient,
    ServiceError,
    answers_digest,
)

UNIVERSITY = (
    "EnrolledIn(s, c) -> Student(s)\n"
    "TaughtBy(c, p) -> Professor(p)\n"
    "Professor(p) -> Person(p)"
)

SEED = "EnrolledIn(ann, cs1). TaughtBy(cs1, turing). TaughtBy(cs2, hopper)"


def run(coro):
    return asyncio.run(coro)


async def _with_service(body, **service_kwargs):
    service = OMQAService(port=0, **service_kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.shutdown()


class TestEndToEnd:
    def test_concurrent_append_and_answer_digest_identical(self, tmp_path):
        """The ISSUE's acceptance criterion, verbatim."""

        async def body(service):
            theory = parse_theory(UNIVERSITY, name="uni")
            query = parse_query("q(p) := Person(p)")
            setup = await ServiceClient(service.host, service.port).connect()
            tid = (await setup.register_theory(theory))["id"]
            await setup.upload_facts(tid, parse_instance(SEED))
            info = await setup.theory_info(tid)
            assert info["journal_mode"] == "wal"

            # Appends touch a predicate no rule or query atom mentions,
            # so every interleaved answer equals the final-instance
            # answer — which is what makes "every response is digest-
            # identical to the final from-scratch answer" decidable
            # without controlling the interleaving.
            appended = [
                parse_instance(f"AuditLog(e{i}, ann)") for i in range(6)
            ]
            rounds = 8
            digests: list[str] = []

            async def appender():
                client = await ServiceClient(
                    service.host, service.port
                ).connect()
                try:
                    for i, batch in enumerate(appended):
                        await client.append_facts(tid, batch)
                        document = await client.query(
                            tid, query, backend="sqlite"
                        )
                        digests.append(document["digest"])
                finally:
                    await client.close()

            async def answerer():
                client = await ServiceClient(
                    service.host, service.port
                ).connect()
                try:
                    for _ in range(rounds):
                        document = await client.query(
                            tid, query, backend="sqlite"
                        )
                        digests.append(document["digest"])
                finally:
                    await client.close()

            await asyncio.gather(appender(), answerer())

            final = parse_instance(SEED).copy()
            for batch in appended:
                final.update(batch)
            fresh = OMQASession(theory).answer(query, final)
            expected = answers_digest(fresh)
            assert digests and all(d == expected for d in digests)

            metrics = await setup.metrics()
            counters = metrics["theories"][tid]["counters"]
            # Single-flight: one compile for the shared shape, every
            # other request (across both clients) counted as a hit.
            assert counters["session.rewrite_cache_misses"] == 1
            assert counters["session.rewrite_cache_hits"] >= 1
            assert (
                counters["session.rewrite_cache_hits"]
                == len(appended) + rounds - 1
            )
            await setup.close()

        run(_with_service(body, db_dir=tmp_path / "svc"))

    def test_all_backends_agree_with_library_answers(self):
        async def body(service):
            theory = parse_theory(UNIVERSITY, name="uni")
            instance = parse_instance(SEED)
            client = await ServiceClient(service.host, service.port).connect()
            tid = (await client.register_theory(theory))["id"]
            await client.upload_facts(tid, instance)
            for text in (
                "q(p) := Person(p)",
                "q(s, c) := EnrolledIn(s, c)",
                "q() := exists p. Professor(p)",
            ):
                query = parse_query(text)
                expected = answers_digest(
                    OMQASession(theory).answer(query, instance)
                )
                for backend in ("memory", "columnar", "sqlite"):
                    document = await client.query(tid, query, backend=backend)
                    assert document["digest"] == expected, (text, backend)
            await client.close()

        run(_with_service(body))

    def test_incomplete_rewriting_falls_back_to_chased_store(self):
        """Non-FO-rewritable theory: sqlite answers via the fixpoint."""

        async def body(service):
            theory = parse_theory(
                "E(x, y), E(y, z) -> E(x, z)", name="tc"
            )
            instance = parse_instance("E(a, b). E(b, c). E(c, d)")
            client = await ServiceClient(service.host, service.port).connect()
            tid = (await client.register_theory(theory))["id"]
            await client.upload_facts(tid, instance)
            query = parse_query("q(x, y) := E(x, y)")
            expected = answers_digest(OMQASession(theory).answer(query, instance))
            for backend in ("memory", "columnar", "sqlite"):
                document = await client.query(tid, query, backend=backend)
                assert document["digest"] == expected, backend
            await client.close()

        run(_with_service(body))

    def test_replace_reopens_readers_and_retract_maintains(self):
        async def body(service):
            theory = parse_theory(UNIVERSITY, name="uni")
            client = await ServiceClient(service.host, service.port).connect()
            tid = (await client.register_theory(theory))["id"]
            query = parse_query("q(p) := Person(p)")

            await client.upload_facts(tid, parse_instance(SEED))
            first = await client.query(tid, query, backend="sqlite")
            assert [a for (a,) in map(tuple, first["answers"])] == [
                "hopper",
                "turing",
            ]

            # Replace rebuilds the database (new interned ids); the
            # reader must reopen, not reuse stale term caches.
            await client.upload_facts(
                tid, parse_instance("TaughtBy(ml1, knuth)")
            )
            second = await client.query(tid, query, backend="sqlite")
            assert second["answers"] == [["knuth"]]

            await client.append_facts(tid, parse_instance("TaughtBy(ml2, bob)"))
            await client.retract_facts(tid, parse_instance("TaughtBy(ml1, knuth)"))
            third = await client.query(tid, query, backend="sqlite")
            assert third["answers"] == [["bob"]]
            await client.close()

        run(_with_service(body))

    def test_error_contract(self):
        async def body(service):
            client = await ServiceClient(service.host, service.port).connect()

            status, document = await client.request("GET", "/nope")
            assert status == 404 and document["error"]["code"] == "not_found"

            status, document = await client.request("DELETE", "/healthz")
            assert status == 405

            status, document = await client.request(
                "POST", "/theories", {"theory": {"format": "bogus"}}
            )
            assert status == 400 and document["error"]["code"] == "bad_payload"

            status, document = await client.request(
                "POST", "/theories/t999/query", {"query": None}
            )
            assert status == 404 and document["error"]["code"] == "unknown_theory"

            theory = parse_theory(UNIVERSITY, name="uni")
            tid = (await client.register_theory(theory))["id"]
            status, document = await client.request(
                "POST",
                f"/theories/{tid}/query",
                {
                    "query": {
                        "format": "repro/query@1",
                        "query": "q(p) := Person(p)",
                    },
                    "backend": "warp-drive",
                },
            )
            assert status == 400 and document["error"]["code"] == "bad_backend"

            # Retracting a *derived* fact violates the DRed model → 409.
            await client.upload_facts(tid, parse_instance(SEED))
            with pytest.raises(ServiceError) as excinfo:
                await client.retract_facts(
                    tid, parse_instance("Person(turing)")
                )
            assert excinfo.value.status == 409
            await client.close()

        run(_with_service(body))

    def test_malformed_http_answers_400_and_closes(self):
        async def body(service):
            reader, writer = await asyncio.open_connection(
                service.host, service.port
            )
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            raw = await reader.read(4096)
            assert raw.startswith(b"HTTP/1.1 400 ")
            writer.close()
            await writer.wait_closed()

        run(_with_service(body))

    def test_healthz_and_metrics_shape(self):
        async def body(service):
            client = await ServiceClient(service.host, service.port).connect()
            health = await client.healthz()
            assert health == {"ok": True, "theories": 0}
            tid = (
                await client.register_theory(
                    parse_theory(UNIVERSITY, name="uni")
                )
            )["id"]
            metrics = await client.metrics()
            assert tid in metrics["theories"]
            assert metrics["process"]["service.theories"] == 1
            assert metrics["theories"][tid]["journal_mode"] == "wal"
            info = await client.theory_info(tid)
            assert info["classes"]["known_bdd_by_syntax"] is True
            await client.close()

        run(_with_service(body))

    def test_shutdown_checkpoints_and_persists(self, tmp_path):
        """A --db-dir service survives restart with its data intact."""

        async def first(service):
            client = await ServiceClient(service.host, service.port).connect()
            tid = (
                await client.register_theory(
                    parse_theory(UNIVERSITY, name="uni")
                )
            )["id"]
            await client.upload_facts(tid, parse_instance(SEED))
            await client.close()
            return tid

        db_dir = tmp_path / "persist"
        tid = run(_with_service(first, db_dir=db_dir))
        db_file = db_dir / f"{tid}.db"
        assert db_file.exists()
        # Checkpointed on shutdown: the WAL is truncated into the db.
        wal = db_dir / f"{tid}.db-wal"
        assert not wal.exists() or wal.stat().st_size == 0
