"""Tests for the Section-12 theories T_d^K and the K-level process."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import (
    check_level_pair_doubling,
    composed_tower_bound,
    level_names,
    phi_pair,
    run_process_k,
    tower,
    tower_rank,
    tower_rank_less,
)
from repro.frontier.process import run_process
from repro.frontier.td import phi_r_n
from repro.logic import Instance
from repro.logic.atoms import atom
from repro.logic.containment import are_equivalent
from repro.logic.query import ConjunctiveQuery
from repro.logic.terms import Variable
from repro.workloads import level_path, t_d_k


class TestTheoryShape:
    def test_rule_count(self):
        # 1 (loop) + K (pins_k) + K-1 (grid_i) = 2K rules.  (The paper's
        # prose says "2K+1"; counting its displayed rule schemas gives 2K.)
        for levels in (2, 3, 4):
            assert len(t_d_k(levels)) == 2 * levels

    def test_binary_signature(self):
        assert t_d_k(3).is_binary()

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            t_d_k(1)

    def test_level_names(self):
        assert level_names(3) == ("I1", "I2", "I3")

    def test_loop_creates_all_colour_self_loops(self):
        run = chase(t_d_k(3), Instance([atom("I1", "a", "b")]),
                    budget=ChaseBudget(max_rounds=1, max_atoms=10_000))
        self_loops = {
            item.predicate.name
            for item in run.instance
            if item.args[0] == item.args[1]
        }
        assert self_loops == {"I1", "I2", "I3"}


class TestKProcessMatchesTd:
    def test_k2_reproduces_theorem_5b(self):
        """With K = 2 the pair (2, 1) is literally T_d's (R, G)."""
        result = run_process_k(phi_pair(1, 2), levels=2)
        rewriting = result.rewriting()
        td_result = run_process(phi_r_n(2))
        assert len(rewriting) == len(td_result.rewriting())
        assert rewriting.max_disjunct_size() == td_result.rewriting().max_disjunct_size()


class TestLevelPairDoubling:
    @pytest.mark.parametrize("pair_level", [1, 2])
    def test_k3_pairs_double(self, pair_level):
        check = check_level_pair_doubling(3, pair_level, depth=1)
        assert check.doubled
        assert check.lower_path_found == 2

    def test_k3_depth2_doubles_to_four(self):
        check = check_level_pair_doubling(3, 2, depth=2)
        assert check.lower_path_found == 4

    def test_bad_pair_rejected(self):
        with pytest.raises(ValueError):
            check_level_pair_doubling(3, 3, depth=1)

    def test_tower_bound(self):
        assert tower(0, 3) == 3
        assert tower(1, 3) == 8
        assert tower(2, 2) == 16
        assert composed_tower_bound(3, 2) == 16


class TestDropLoopPattern:
    def test_non_adjacent_in_pattern_is_dropped(self):
        """An unmarked sink with I_1 and I_3 in-atoms can only denote the
        loop element, unreachable from marked variables: unsatisfiable."""
        from repro.frontier.tdk import apply_operation_k
        from repro.logic.terms import FreshVariables

        x, y, z = Variable("x"), Variable("y"), Variable("z")
        from repro.frontier import MarkedQuery

        query = MarkedQuery(
            (x,),
            (atom("I1", x, z), atom("I3", y, z)),
            frozenset({x}),
        )
        record = apply_operation_k(query, FreshVariables(), levels=3)
        assert record.operation == "drop_loop_pattern"
        assert record.results == ()

    def test_dropped_pattern_really_is_unsatisfiable(self):
        """Cross-check against the chase: no base-anchored homomorphism
        realizes the non-adjacent in-pattern."""
        from repro.frontier import marked_holds, MarkedQuery
        from repro.logic.terms import Constant

        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = MarkedQuery(
            (x,), (atom("I1", x, z), atom("I3", y, z)), frozenset({x})
        )
        base = Instance([atom("I1", "a", "b")])
        run = chase(t_d_k(3), base, budget=ChaseBudget(max_rounds=3, max_atoms=400_000))
        assert not marked_holds(run, query, (Constant("a"),))


class TestTowerRanks:
    def test_rank_decreases_under_k_process(self):
        result = run_process_k(phi_pair(2, 1), levels=3, check_ranks=True)
        assert result.rank_violations == []

    def test_rank_comparison_is_lexicographic(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        from repro.frontier import MarkedQuery

        heavy = MarkedQuery(
            (), (atom("I3", x, y), atom("I2", y, z)), frozenset({x})
        )
        light = MarkedQuery((), (atom("I2", x, y),), frozenset({x}))
        assert tower_rank_less(
            tower_rank(light, 3), tower_rank(heavy, 3)
        )
