"""Tests for the semi-oblivious Skolem chase (Definition 6).

Includes a brute-force reference implementation of one chase round that the
semi-naive engine is checked against, plus the paper's Examples 1/7 and
Observation 8 (literal monotonicity under the Skolem naming convention).
"""

from __future__ import annotations

import itertools

import pytest

from repro.chase import ChaseBudget, ChaseBudgetExceeded, chase, chase_to_fixpoint, resume
from repro.chase.skolem import skolemize
from repro.logic import Instance, parse_instance, parse_query, parse_theory
from repro.logic.atoms import Atom
from repro.logic.homomorphism import holds, iter_query_homomorphisms
from repro.logic.instance import subsets_of_size_at_most
from repro.logic.terms import Constant, FunctionTerm
from repro.workloads import (
    edge_path,
    exercise23,
    green_path,
    t_a,
    t_d,
    t_p,
    university_ontology,
)


def reference_round(theory, current: Instance) -> Instance:
    """One literal Definition-6 round: full evaluation, no semi-naive."""
    result = current.copy()
    for rule in theory:
        skolemized = skolemize(rule)
        universal = tuple(sorted(rule.universal_head_variables(), key=lambda v: v.name))
        for body_match in iter_query_homomorphisms(rule.body, current):
            assignments = [body_match]
            if universal:
                assignments = [
                    {**body_match, **dict(zip(universal, combo))}
                    for combo in itertools.product(
                        sorted(current.domain(), key=repr), repeat=len(universal)
                    )
                ]
            for sigma in assignments:
                for head_atom in skolemized.head:
                    result.add(head_atom.substitute(sigma))
    return result


class TestExamples1And7:
    def test_example_7_round_by_round(self, theory_ta, abel):
        result = chase(theory_ta, abel, budget=ChaseBudget(max_rounds=3))
        mum = FunctionTerm  # alias for readability below
        ch1 = result.prefix(1)
        assert len(ch1) == 2  # Human(abel) + Mother(abel, mum(abel))
        mothers = [a for a in ch1 if a.predicate.name == "Mother"]
        assert mothers[0].args[0] == Constant("abel")
        assert isinstance(mothers[0].args[1], mum)
        # Example 7's prose jumps straight to Mother(mum(Abel), mum²(Abel));
        # by the letter of Definition 6 Human(mum(Abel)) lands in Ch_2 and
        # the grandmother atom in Ch_3.
        ch2 = result.prefix(2)
        assert any(
            a.predicate.name == "Human" and isinstance(a.args[0], mum) for a in ch2
        )
        ch3 = result.prefix(3)
        grandmothers = [
            a
            for a in ch3
            if a.predicate.name == "Mother" and isinstance(a.args[0], mum)
        ]
        assert len(grandmothers) == 1

    def test_example_1_entailment(self, theory_ta, abel):
        result = chase(theory_ta, abel, budget=ChaseBudget(max_rounds=4))
        query = parse_query("q() := exists y, z. Mother('abel', y), Mother(y, z)")
        assert holds(query, result.instance)


class TestRoundSemantics:
    @pytest.mark.parametrize(
        "theory_factory, base_text",
        [
            (t_a, "Human(abel)"),
            (exercise23, "E(a, b). E(b, c)"),
            (t_p, "E(a, b)"),
        ],
    )
    def test_semi_naive_matches_reference(self, theory_factory, base_text):
        theory = theory_factory()
        base = parse_instance(base_text)
        result = chase(theory, base, budget=ChaseBudget(max_rounds=4))
        current = base.copy()
        for depth in range(1, 5):
            current = reference_round(theory, current)
            assert result.prefix(depth) == current

    def test_t_d_rounds_match_reference(self):
        theory = t_d()
        base = green_path(2)
        result = chase(theory, base, budget=ChaseBudget(max_rounds=3, max_atoms=100_000))
        current = base.copy()
        for depth in range(1, 4):
            current = reference_round(theory, current)
            assert result.prefix(depth) == current

    def test_round_zero_is_base(self, theory_ta, abel):
        result = chase(theory_ta, abel, budget=ChaseBudget(max_rounds=2))
        assert result.prefix(0) == abel

    def test_depth_of(self, theory_ta, abel):
        result = chase(theory_ta, abel, budget=ChaseBudget(max_rounds=2))
        human = next(iter(abel))
        assert result.depth_of(human) == 0
        produced = [a for a in result.instance if a not in abel]
        assert all(result.depth_of(a) in (1, 2) for a in produced)


class TestObservation8:
    def test_subset_chases_are_literal_subsets(self):
        """Skolem naming makes Ch(T, F) a literal subset of Ch(T, D)."""
        theory = exercise23()
        base = parse_instance("E(a, b). E(b, c). E(c, d)")
        full = chase(theory, base, budget=ChaseBudget(max_rounds=4, max_atoms=50_000)).instance
        for part in subsets_of_size_at_most(base, 2):
            partial = chase(theory, part, budget=ChaseBudget(max_rounds=4, max_atoms=50_000)).instance
            assert partial.issubset(full)

    def test_chasing_a_prefix_continues_identically(self):
        theory = t_a()
        base = parse_instance("Human(abel)")
        direct = chase(theory, base, budget=ChaseBudget(max_rounds=4))
        prefix = direct.prefix(2)
        rerun = chase(theory, prefix, budget=ChaseBudget(max_rounds=2))
        assert rerun.instance == direct.prefix(4)


class TestTermination:
    def test_fixpoint_detection(self):
        theory = parse_theory("P(x) -> exists y. Q(x, y)\nQ(x, y) -> R(y)")
        result = chase(theory, parse_instance("P(a)"), budget=ChaseBudget(max_rounds=10))
        assert result.terminated
        assert result.rounds_run == 2

    def test_chase_to_fixpoint_raises_on_divergence(self):
        with pytest.raises(ChaseBudgetExceeded):
            chase_to_fixpoint(t_p(), parse_instance("E(a, b)"), budget=ChaseBudget(max_rounds=5))

    def test_atom_budget_stops_early(self):
        result = chase(t_d(), green_path(2), budget=ChaseBudget(max_rounds=20, max_atoms=100))
        assert not result.terminated
        assert len(result.instance) > 100  # budget checked per round

    def test_budget_raise_mode(self):
        with pytest.raises(ChaseBudgetExceeded):
            chase(
                t_d(),
                green_path(2),
                budget=ChaseBudget(
                    max_rounds=20, max_atoms=100, on_exceeded="raise"
                ),
            )


class TestResume:
    def test_resume_equals_direct_run(self):
        theory = exercise23()
        base = edge_path(3)
        direct = chase(theory, base, budget=ChaseBudget(max_rounds=5, max_atoms=50_000))
        stepped = chase(theory, base, budget=ChaseBudget(max_rounds=2, max_atoms=50_000))
        stepped = resume(stepped, 3, budget=ChaseBudget(max_atoms=50_000))
        assert stepped.instance == direct.instance
        assert len(stepped.round_added) == len(direct.round_added)

    def test_resume_on_terminated_chase_is_noop(self):
        theory = parse_theory("P(x) -> Q(x)")
        done = chase(theory, parse_instance("P(a)"), budget=ChaseBudget(max_rounds=5))
        assert done.terminated
        assert resume(done, 5) is done


class TestUniversalVariables:
    def test_pins_fire_for_every_domain_element(self):
        theory = parse_theory("true -> exists z. R(x, z)")
        base = parse_instance("P(a). P(b)")
        result = chase(theory, base, budget=ChaseBudget(max_rounds=1))
        sources = {
            item.args[0] for item in result.instance if item.predicate.name == "R"
        }
        assert sources == {Constant("a"), Constant("b")}

    def test_pins_reach_invented_terms_in_later_rounds(self):
        theory = t_d()
        base = parse_instance("G(a, b)")
        result = chase(theory, base, budget=ChaseBudget(max_rounds=2, max_atoms=10_000))
        invented = [t for t in result.instance.domain() if isinstance(t, FunctionTerm)]
        red_sources = {
            item.args[0] for item in result.instance if item.predicate.name == "R"
        }
        assert any(term in red_sources for term in invented)

    def test_loop_fires_once_even_on_empty_instance(self):
        theory = parse_theory("true -> exists x. R(x, x), G(x, x)")
        result = chase(theory, Instance(), budget=ChaseBudget(max_rounds=3))
        assert result.terminated
        assert len(result.instance) == 2

    def test_provenance_recorded(self, theory_ta, abel):
        result = chase(theory_ta, abel, budget=ChaseBudget(max_rounds=2))
        produced = [a for a in result.instance if a not in abel]
        assert all(a in result.derivations for a in produced)
