"""Exercise 14: the rewriting set rew(psi) is unique.

The saturation order must not matter: shuffling the theory's rule order
and the query's atom order yields the same minimal rewriting up to CQ
equivalence.
"""

from __future__ import annotations

import random

import pytest

from repro.logic import parse_query
from repro.logic.containment import are_equivalent
from repro.logic.query import ConjunctiveQuery
from repro.logic.tgd import Theory
from repro.rewriting import rewrite
from repro.workloads import t_a, university_ontology


def _equivalent_sets(left, right) -> bool:
    left, right = list(left), list(right)
    if len(left) != len(right):
        return False
    return all(any(are_equivalent(l, r) for r in right) for l in left) and all(
        any(are_equivalent(r, l) for l in left) for r in right
    )


def _shuffled_theory(theory: Theory, seed: int) -> Theory:
    rules = list(theory)
    random.Random(seed).shuffle(rules)
    return Theory(rules, name=f"{theory.name}~{seed}")


def _shuffled_query(query: ConjunctiveQuery, seed: int) -> ConjunctiveQuery:
    atoms = list(query.atoms)
    random.Random(seed).shuffle(atoms)
    return ConjunctiveQuery(query.answer_vars, tuple(atoms))


CASES = [
    (t_a, "q(x) := exists y, z. Mother(x, y), Mother(y, z)"),
    (
        university_ontology,
        "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Person(p)",
    ),
]


class TestExercise14Uniqueness:
    @pytest.mark.parametrize("factory, text", CASES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rule_order_does_not_matter(self, factory, text, seed):
        theory = factory()
        query = parse_query(text)
        reference = rewrite(theory, query)
        shuffled = rewrite(_shuffled_theory(theory, seed), query)
        assert reference.complete and shuffled.complete
        assert _equivalent_sets(reference.ucq, shuffled.ucq)

    @pytest.mark.parametrize("factory, text", CASES)
    @pytest.mark.parametrize("seed", [4, 5])
    def test_atom_order_does_not_matter(self, factory, text, seed):
        theory = factory()
        query = parse_query(text)
        reference = rewrite(theory, query)
        shuffled = rewrite(theory, _shuffled_query(query, seed))
        assert _equivalent_sets(reference.ucq, shuffled.ucq)

    def test_process_rewriting_matches_generic_engine_on_td_fragment(self):
        """Two independent rewriting procedures, one answer: the generic
        piece-rewriting engine and the five-operation process must agree on
        T_d queries small enough for both."""
        from repro.frontier.process import run_process
        from repro.frontier.td import phi_r_n
        from repro.workloads import t_d

        for depth in (1, 2):
            query = phi_r_n(depth)
            via_process = run_process(query).rewriting()
            via_engine = rewrite(t_d(), query)
            assert via_engine.complete
            assert _equivalent_sets(via_process, via_engine.ucq)
