"""Unit tests for repro.logic.tgd (TGD and Theory)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.logic import parse_instance, parse_rule, parse_theory
from repro.logic.terms import FreshVariables, Variable
from repro.logic.tgd import TGD, Theory
from repro.workloads import t_d, t_p, university_ontology


class TestVariableTaxonomy:
    def test_frontier(self):
        rule = parse_rule("E(x, y), P(x) -> exists z. R(y, z)")
        assert rule.frontier() == {Variable("y")}

    def test_existential_inference(self):
        rule = parse_rule("E(x, y) -> exists z. R(y, z)")
        assert rule.existential == frozenset({Variable("z")})

    def test_existential_in_body_rejected(self):
        with pytest.raises(ValueError):
            TGD(
                parse_rule("E(x, y) -> R(x, y)").body,
                parse_rule("E(x, y) -> R(x, y)").head,
                frozenset({Variable("x")}),
            )

    def test_universal_head_variables(self):
        rule = parse_rule("true -> exists z. R(x, z)")
        assert rule.universal_head_variables() == {Variable("x")}

    def test_frontier_tuple_is_head_occurrence_order(self):
        rule = parse_rule("E(x, y) -> R(y, x)")
        assert rule.frontier_tuple() == (Variable("y"), Variable("x"))


class TestSyntacticClasses:
    def test_linear(self):
        assert parse_rule("E(x, y) -> exists z. E(y, z)").is_linear()
        assert not parse_rule("E(x, y), E(y, z) -> E(x, z)").is_linear()

    def test_datalog(self):
        assert parse_rule("E(x, y), E(y, z) -> E(x, z)").is_datalog()
        assert not parse_rule("E(x, y) -> exists z. E(y, z)").is_datalog()

    def test_universal_head_var_is_not_datalog(self):
        assert not parse_rule("true -> exists z. R(x, z)").is_datalog()

    def test_guarded(self):
        assert parse_rule("T(x, y, z), E(x, y) -> P(x)").is_guarded()
        assert not parse_rule("E(x, y), E(y, z) -> P(x)").is_guarded()

    def test_frontier_guarded(self):
        # Not guarded (no atom covers x,y,z) but the frontier {x} is covered.
        rule = parse_rule("E(x, y), E(y, z) -> P(x)")
        assert rule.is_frontier_guarded()

    def test_frontier_one(self):
        assert parse_rule("E(x, y) -> exists z. E(y, z)").is_frontier_one()
        assert not parse_rule("E(x, y) -> exists z. T(x, y, z)").is_frontier_one()

    def test_detached(self):
        assert parse_rule("P(x) -> exists y, z. E(y, z)").is_detached()
        assert not parse_rule("P(x) -> exists z. E(x, z)").is_detached()
        assert not parse_rule("E(x, y), E(y, z) -> E(x, z)").is_detached()

    def test_connected(self):
        assert parse_rule("E(x, y), E(y, z) -> P(x)").is_connected()
        assert not parse_rule("E(x, y), P(z) -> R(z, y)").is_connected()
        assert parse_rule("true -> exists x. R(x, x)").is_connected()


class TestTransformations:
    def test_rename_apart_preserves_shape(self):
        rule = parse_rule("E(x, y) -> exists z. E(y, z)")
        renamed = rule.rename_apart(FreshVariables())
        assert renamed.variables().isdisjoint(rule.variables())
        assert len(renamed.body) == 1 and len(renamed.head) == 1
        assert len(renamed.existential) == 1

    def test_single_head_equivalent_roundtrip_via_chase(self):
        """Splitting a multi-head rule preserves the original atoms."""
        theory = t_d()
        split = theory.single_head_equivalent()
        base = parse_instance("G(a, b)")
        original = chase(theory, base, budget=ChaseBudget(max_rounds=2, max_atoms=10_000)).instance
        translated = chase(split, base, budget=ChaseBudget(max_rounds=6, max_atoms=100_000)).instance
        original_preds = {i.predicate.name for i in original}
        for item in original:
            # Every original atom must be re-derivable in the translation
            # (possibly later, as the auxiliary atom is produced first).
            matches = [
                other
                for other in translated
                if other.predicate.name == item.predicate.name
            ]
            assert matches, f"{item} lost in single-head translation"
        assert original_preds <= {"R", "G"} | {p for p in original_preds}

    def test_single_head_passthrough(self):
        rule = parse_rule("E(x, y) -> exists z. E(y, z)")
        assert rule.single_head_equivalent() == [rule]

    def test_trivial_trick_raises_arity_and_connects(self):
        theory = parse_theory("E(x, y), P(z) -> R(z, y)")
        connected = theory.apply_trivial_trick()
        assert connected.is_connected()
        assert connected.max_arity() == 3


class TestTheoryContainer:
    def test_fragments(self):
        theory = parse_theory(
            """
            E(x, y) -> exists z. E(y, z)
            E(x, y), E(y, z) -> E(x, z)
            """
        )
        assert len(theory.datalog_rules()) == 1
        assert len(theory.existential_rules()) == 1

    def test_is_binary(self):
        assert t_p().is_binary()
        assert not parse_theory("T(x, y, z) -> P(x)").is_binary()

    def test_university_is_linear(self):
        assert university_ontology().is_linear()

    def test_indexing(self):
        theory = t_p()
        assert theory[0].is_linear()
        assert len(theory) == 1
