"""JSON wire round-trips: the serialize envelopes the service API speaks.

Property-tested contract (satellite pin): ``decode(encode(x))`` is
canonical-key-identical — equal theories/instances, and for queries an
identical :func:`repro.logic.serialize.dump_query` text (the session's
compiled-SQL cache key), so a query that travelled over the wire lands
on the same cache entries as one that never left the process.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    ConjunctiveQuery,
    Constant,
    Instance,
    Variable,
    parse_instance,
    parse_query,
    parse_theory,
)
from repro.logic.atoms import Atom
from repro.logic.signature import Predicate
from repro.logic.serialize import (
    SerializationError,
    dump_query,
    instance_from_json,
    instance_to_json,
    load_query,
    query_from_json,
    query_to_json,
    save_query,
    theory_from_json,
    theory_to_json,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
E = Predicate("E", 2)
P = Predicate("P", 1)

constants = st.integers(min_value=0, max_value=5).map(lambda i: Constant(f"c{i}"))
variables = st.integers(min_value=0, max_value=5).map(lambda i: Variable(f"v{i}"))

facts = st.one_of(
    st.tuples(constants, constants).map(lambda p: Atom(E, p)),
    constants.map(lambda c: Atom(P, (c,))),
)
instances = st.lists(facts, max_size=8).map(Instance)

atom_patterns = st.tuples(
    st.one_of(variables, constants), st.one_of(variables, constants)
).map(lambda p: Atom(E, p))


@st.composite
def queries(draw):
    atoms = tuple(
        dict.fromkeys(draw(st.lists(atom_patterns, min_size=1, max_size=4)))
    )
    all_vars = sorted({v for a in atoms for v in a.variable_set()}, key=repr)
    count = draw(st.integers(min_value=0, max_value=min(2, len(all_vars))))
    return ConjunctiveQuery(tuple(all_vars[:count]), atoms)


RULE_POOL = (
    "Human(y) -> exists z. Mother(y, z)",
    "Mother(x, y) -> Human(y)",
    "EnrolledIn(s, c) -> Student(s)",
    "TaughtBy(c, p) -> Professor(p)",
    "Professor(p) -> Person(p)",
    "E(x, y), E(y, z) -> E(x, z)",
)
theories = st.lists(
    st.sampled_from(RULE_POOL), min_size=1, max_size=6, unique=True
).map(lambda rules: parse_theory("\n".join(rules), name="wire"))


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
class TestRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(theories)
    def test_theory_roundtrip(self, theory):
        doc = json.loads(json.dumps(theory_to_json(theory)))
        decoded = theory_from_json(doc)
        assert tuple(decoded) == tuple(theory)
        assert decoded.name == theory.name

    @settings(max_examples=50, deadline=None)
    @given(instances)
    def test_instance_roundtrip(self, instance):
        doc = json.loads(json.dumps(instance_to_json(instance)))
        decoded = instance_from_json(doc)
        assert decoded.atoms() == instance.atoms()

    @settings(max_examples=100, deadline=None)
    @given(queries())
    def test_query_roundtrip_is_canonical_key_identical(self, query):
        doc = json.loads(json.dumps(query_to_json(query)))
        decoded = query_from_json(doc)
        assert decoded == query
        # The pin that matters to the service: the wire-travelled query
        # keys the same compiled-SQL cache entry as the original.
        assert dump_query(decoded) == dump_query(query)

    def test_save_load_query_file_roundtrip(self, tmp_path):
        query = parse_query("q(x) := exists y. E(x, y), P('c0')")
        path = tmp_path / "q.cq"
        save_query(query, path)
        assert load_query(path) == query


# ----------------------------------------------------------------------
# Malformed documents stay loud (the service maps these to HTTP 400)
# ----------------------------------------------------------------------
class TestMalformed:
    def test_wrong_format_tag(self):
        with pytest.raises(SerializationError):
            theory_from_json({"format": "repro/query@1", "rules": []})

    def test_non_object(self):
        with pytest.raises(SerializationError):
            query_from_json(["q(x) := P(x)"])

    def test_missing_payload(self):
        with pytest.raises(SerializationError):
            instance_from_json({"format": "repro/instance@1"})

    def test_bad_payload_types(self):
        with pytest.raises(SerializationError):
            theory_from_json({"format": "repro/theory@1", "rules": [1]})
        with pytest.raises(SerializationError):
            instance_from_json({"format": "repro/instance@1", "facts": "P(a)"})
        with pytest.raises(SerializationError):
            query_from_json({"format": "repro/query@1", "query": 7})

    def test_unparseable_text(self):
        with pytest.raises(SerializationError):
            theory_from_json({"format": "repro/theory@1", "rules": ["->"]})
        with pytest.raises(SerializationError):
            instance_from_json(
                {"format": "repro/instance@1", "facts": ["P(x y"]}
            )
        with pytest.raises(SerializationError):
            query_from_json({"format": "repro/query@1", "query": "q("})

    def test_empty_instance_is_fine(self):
        decoded = instance_from_json(
            {"format": "repro/instance@1", "facts": []}
        )
        assert len(decoded) == 0
