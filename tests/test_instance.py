"""Unit tests for repro.logic.instance."""

from __future__ import annotations

from repro.logic.atoms import atom
from repro.logic.instance import Instance, subsets_of_size_at_most
from repro.logic.signature import Predicate
from repro.logic.terms import Constant


def sample() -> Instance:
    return Instance(
        [atom("E", "a", "b"), atom("E", "b", "c"), atom("P", "a")]
    )


class TestMutation:
    def test_add_reports_novelty(self):
        instance = Instance()
        assert instance.add(atom("P", "a"))
        assert not instance.add(atom("P", "a"))
        assert len(instance) == 1

    def test_discard(self):
        instance = sample()
        assert instance.discard(atom("P", "a"))
        assert not instance.discard(atom("P", "a"))
        assert atom("P", "a") not in instance

    def test_domain_counts_survive_discard(self):
        instance = sample()
        instance.discard(atom("E", "a", "b"))
        # "a" still occurs in P(a); "b" still occurs in E(b,c).
        assert Constant("a") in instance.domain()
        assert Constant("b") in instance.domain()
        instance.discard(atom("E", "b", "c"))
        assert Constant("b") not in instance.domain()

    def test_update_counts_new(self):
        instance = sample()
        added = instance.update([atom("P", "a"), atom("P", "b")])
        assert added == 1


class TestIndexes:
    def test_with_predicate(self):
        instance = sample()
        assert len(instance.with_predicate(Predicate("E", 2))) == 2

    def test_with_term_at(self):
        instance = sample()
        hits = instance.with_term_at(Predicate("E", 2), 0, Constant("b"))
        assert hits == {atom("E", "b", "c")}

    def test_candidate_count(self):
        instance = sample()
        assert instance.candidate_count(Predicate("E", 2), 1, Constant("b")) == 1
        assert instance.candidate_count(Predicate("E", 2), 1, Constant("z")) == 0

    def test_containing(self):
        instance = sample()
        assert instance.containing(Constant("a")) == {
            atom("E", "a", "b"),
            atom("P", "a"),
        }

    def test_containing_tracks_discard(self):
        instance = sample()
        instance.discard(atom("E", "a", "b"))
        assert instance.containing(Constant("a")) == {atom("P", "a")}
        instance.discard(atom("P", "a"))
        assert instance.containing(Constant("a")) == set()

    def test_containing_returns_fresh_set(self):
        instance = sample()
        hits = instance.containing(Constant("a"))
        hits.clear()
        assert instance.containing(Constant("a"))


class TestSetOperations:
    def test_union_does_not_mutate(self):
        left = sample()
        right = Instance([atom("P", "z")])
        merged = left.union(right)
        assert len(merged) == 4
        assert len(left) == 3

    def test_issubset(self):
        small = Instance([atom("P", "a")])
        assert small.issubset(sample())
        assert not sample().issubset(small)

    def test_equality_is_by_fact_set(self):
        assert sample() == sample()
        assert sample() != Instance([atom("P", "a")])

    def test_copy_is_independent(self):
        original = sample()
        clone = original.copy()
        clone.add(atom("P", "zz"))
        assert atom("P", "zz") not in original

    def test_copy_indexes_are_independent(self):
        # The fast structural copy shares no bucket sets: mutating the
        # clone through add/discard must leave every original index view
        # (predicate, position, term) unchanged.
        original = sample()
        clone = original.copy()
        clone.discard(atom("E", "a", "b"))
        clone.add(atom("E", "a", "zz"))
        assert original.with_predicate(Predicate("E", 2)) == {
            atom("E", "a", "b"),
            atom("E", "b", "c"),
        }
        assert original.with_term_at(Predicate("E", 2), 0, Constant("a")) == {
            atom("E", "a", "b")
        }
        assert original.containing(Constant("a")) == {
            atom("E", "a", "b"),
            atom("P", "a"),
        }
        assert original.domain() == sample().domain()

    def test_copy_preserves_index_answers(self):
        original = sample()
        clone = original.copy()
        assert clone.with_predicate(Predicate("E", 2)) == original.with_predicate(
            Predicate("E", 2)
        )
        assert clone.candidate_count(
            Predicate("E", 2), 1, Constant("b")
        ) == original.candidate_count(Predicate("E", 2), 1, Constant("b"))
        assert clone.predicates() == original.predicates()

    def test_restrict_to_terms_is_induced_substructure(self):
        instance = sample()
        allowed = {Constant("a"), Constant("b")}
        restricted = instance.restrict_to_terms(allowed)
        assert restricted.atoms() == frozenset(
            {atom("E", "a", "b"), atom("P", "a")}
        )


class TestLivePredicates:
    def test_predicates_with_facts_tracks_add(self):
        instance = Instance()
        assert instance.predicates_with_facts() == set()
        instance.add(atom("P", "a"))
        assert instance.predicates_with_facts() == {Predicate("P", 1)}

    def test_predicates_with_facts_tracks_discard(self):
        instance = Instance([atom("P", "a"), atom("P", "b")])
        instance.discard(atom("P", "a"))
        assert Predicate("P", 1) in instance.predicates_with_facts()
        instance.discard(atom("P", "b"))
        assert Predicate("P", 1) not in instance.predicates_with_facts()

    def test_predicates_returns_a_copy(self):
        instance = sample()
        view = instance.predicates()
        view.add(Predicate("Zzz", 3))
        assert Predicate("Zzz", 3) not in instance.predicates()

    def test_live_view_survives_copy(self):
        clone = sample().copy()
        assert clone.predicates_with_facts() == {
            Predicate("E", 2),
            Predicate("P", 1),
        }


class TestSubsetEnumeration:
    def test_counts(self):
        instance = sample()
        ones = [s for s in subsets_of_size_at_most(instance, 1)]
        twos = [s for s in subsets_of_size_at_most(instance, 2)]
        assert len(ones) == 3
        assert len(twos) == 3 + 3  # C(3,1) + C(3,2)

    def test_bound_above_size_includes_everything(self):
        instance = sample()
        all_subsets = list(subsets_of_size_at_most(instance, 10))
        assert len(all_subsets) == 7  # 2^3 - 1 non-empty subsets

    def test_each_subset_is_subset(self):
        instance = sample()
        for part in subsets_of_size_at_most(instance, 2):
            assert part.issubset(instance)
