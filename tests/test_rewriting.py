"""Tests for the UCQ rewriting engine (Theorem 1) and piece unifiers."""

from __future__ import annotations

import pytest

from repro.logic import parse_instance, parse_query, parse_rule, parse_theory
from repro.logic.containment import are_equivalent, evaluate_ucq
from repro.logic.terms import FreshVariables
from repro.rewriting import (
    RewritingBudget,
    answer_by_materialization,
    answer_by_rewriting,
    atomic_rewriting_sizes,
    certain_answers,
    cross_validate,
    depth_bound_from_rewriting,
    enough,
    iter_piece_unifiers,
    probe_bdd,
    rewrite,
    rewriting_size,
)
from repro.workloads import (
    example41,
    t_a,
    t_p,
    university_database,
    university_ontology,
)


class TestPieceUnifiers:
    def test_single_atom_unifies_with_head(self):
        rule = parse_rule("Human(y) -> exists z. Mother(y, z)")
        query = parse_query("q(x) := exists m. Mother(x, m)")
        unifiers = list(iter_piece_unifiers(query, rule, FreshVariables()))
        assert len(unifiers) == 1
        rewritten = unifiers[0].rewrite(query)
        assert rewritten.size == 1
        assert rewritten.atoms[0].predicate.name == "Human"

    def test_existential_position_cannot_take_answer_variable(self):
        rule = parse_rule("Human(y) -> exists z. Mother(y, z)")
        query = parse_query("q(x, m) := Mother(x, m)")  # m is an answer var
        assert list(iter_piece_unifiers(query, rule, FreshVariables())) == []

    def test_existential_position_cannot_leak_shared_variable(self):
        rule = parse_rule("Human(y) -> exists z. Mother(y, z)")
        # m also occurs outside the candidate piece -> must not unify with z.
        query = parse_query("q(x) := exists m. Mother(x, m), Person(m)")
        assert list(iter_piece_unifiers(query, rule, FreshVariables())) == []

    def test_piece_extension_merges_answer_variables(self):
        rule = parse_rule("P(y) -> exists z. E(y, z)")
        # Both atoms share the existential image z; the piece must grow to
        # {E(x,m), E(w,m)}, forcing x = w — legal: the disjunct's answer
        # tuple repeats the representative (Theorem 1 allows q(x, x)).
        query = parse_query("q(x, w) := exists m. E(x, m), E(w, m)")
        unifiers = list(iter_piece_unifiers(query, rule, FreshVariables()))
        merged = [u.rewrite(query) for u in unifiers if len(u.piece) == 2]
        assert merged
        assert all(len(set(q.answer_vars)) == 1 for q in merged)

    def test_piece_extension_succeeds_for_existential_sources(self):
        rule = parse_rule("P(y) -> exists z. E(y, z)")
        query = parse_query("q() := exists x, w, m. E(x, m), E(w, m)")
        unifiers = list(iter_piece_unifiers(query, rule, FreshVariables()))
        assert any(len(u.piece) == 2 for u in unifiers)

    def test_multi_head_unifier(self):
        rule = parse_rule("B(x) -> exists z. R(x, z), G(x, z)")
        query = parse_query("q(x) := exists z. R(x, z), G(x, z)")
        unifiers = list(iter_piece_unifiers(query, rule, FreshVariables()))
        assert any(len(u.piece) == 2 for u in unifiers)


class TestSaturation:
    def test_tp_path_query(self):
        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        result = rewrite(t_p(), query)
        assert result.complete
        sizes = sorted(d.size for d in result.ucq)
        assert sizes == [1, 1]  # E(x,_) or E(_,x)

    def test_ta_grandmother(self):
        query = parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")
        result = rewrite(t_a(), query)
        assert result.complete
        assert len(result.ucq) == 3
        human = parse_query("q(x) := Human(x)")
        assert any(are_equivalent(d, human) for d in result.ucq)

    def test_rewriting_size_measure(self):
        query = parse_query("q(x) := exists y. Mother(x, y)")
        assert rewriting_size(t_a(), query) == 1

    def test_atomic_rewriting_sizes(self):
        sizes = atomic_rewriting_sizes(t_a())
        assert sizes == {"Human": 1, "Mother": 1}

    def test_non_bdd_theory_hits_budget(self):
        query = parse_query("q(x, z) := R(x, z)")
        result = rewrite(
            example41(), query, RewritingBudget(max_kept=40, max_steps=4_000)
        )
        assert not result.complete

    def test_rewriting_size_raises_on_incomplete(self):
        query = parse_query("q(x, z) := R(x, z)")
        with pytest.raises(RuntimeError):
            rewriting_size(
                example41(), query, RewritingBudget(max_kept=40, max_steps=4_000)
            )

    def test_minimality_no_mutual_containment(self):
        from repro.logic.containment import is_contained_in

        query = parse_query(
            "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Person(p)"
        )
        result = rewrite(university_ontology(), query)
        disjuncts = result.ucq.disjuncts()
        for first in disjuncts:
            for second in disjuncts:
                if first is not second:
                    assert not is_contained_in(first, second)


class TestAnswering:
    def test_cross_validation_university(self):
        query = parse_query(
            "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Person(p)"
        )
        report = cross_validate(
            university_ontology(), query, university_database(15, 4, 6, seed=3)
        )
        assert report.agree

    def test_cross_validation_ta(self):
        query = parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")
        report = cross_validate(t_a(), query, parse_instance("Human(abel). Mother(eve, sara)"))
        assert report.agree
        assert report.rewriting_answers

    def test_certain_answers_falls_back_to_chase(self):
        # Example 41 is datalog (terminating chase) but not BDD.
        query = parse_query("q(x, z) := R(x, z)")
        base = parse_instance("E(a, b, c). R(a, c)")
        answers = certain_answers(
            example41(), query, base, RewritingBudget(max_kept=20, max_steps=2_000)
        )
        from repro.logic.terms import Constant

        assert (Constant("b"), Constant("c")) in answers

    def test_rewriting_answers_are_base_only(self):
        query = parse_query("q(x) := exists y. Mother(x, y)")
        base = parse_instance("Human(abel)")
        answers = answer_by_rewriting(t_a(), query, base)
        from repro.logic.terms import Constant

        assert answers == {(Constant("abel"),)}

    def test_materialization_depth_control(self):
        query = parse_query("q(x) := exists y. Mother(x, y)")
        base = parse_instance("Human(abel)")
        shallow = answer_by_materialization(t_a(), query, base, depth=0)
        deep = answer_by_materialization(t_a(), query, base, depth=2)
        assert shallow == set()
        assert deep


class TestBddDiagnostics:
    def test_enough_for_ta(self):
        query = parse_query("q(x) := exists y. Mother(x, y)")
        base = parse_instance("Human(abel)")
        assert not enough(t_a(), query, base, depth=0, probe_depth=4)
        assert enough(t_a(), query, base, depth=1, probe_depth=4)

    def test_depth_bound_from_rewriting(self):
        query = parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")
        bound = depth_bound_from_rewriting(t_a(), query)
        base = parse_instance("Human(abel)")
        assert enough(t_a(), query, base, depth=bound, probe_depth=bound + 3)

    def test_probe_bdd_positive(self):
        verdict = probe_bdd(t_a(), parse_query("q(x) := Human(x)"))
        assert verdict.certified_bdd
        assert verdict.depth_bound is not None

    def test_probe_bdd_negative_budget(self):
        verdict = probe_bdd(
            example41(),
            parse_query("q(x, z) := R(x, z)"),
            RewritingBudget(max_kept=30, max_steps=3_000),
        )
        assert not verdict.certified_bdd
