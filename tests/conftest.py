"""Shared fixtures: the paper's named theories and witness instances."""

from __future__ import annotations

import pytest

from repro.logic import Instance, parse_instance
from repro.workloads import (
    edge_cycle,
    edge_path,
    example39_sticky,
    example42_tc,
    example66,
    exercise23,
    green_path,
    sticky_star,
    t_a,
    t_d,
    t_p,
    university_ontology,
)


@pytest.fixture
def theory_ta():
    return t_a()


@pytest.fixture
def theory_tp():
    return t_p()


@pytest.fixture
def theory_ex23():
    return exercise23()


@pytest.fixture
def theory_ex39():
    return example39_sticky()


@pytest.fixture
def theory_tc():
    return example42_tc()


@pytest.fixture
def theory_td():
    return t_d()


@pytest.fixture
def theory_ex66():
    return example66()


@pytest.fixture
def theory_university():
    return university_ontology()


@pytest.fixture
def abel() -> Instance:
    return parse_instance("Human(abel)")


@pytest.fixture
def path3() -> Instance:
    return edge_path(3)


@pytest.fixture
def cycle4() -> Instance:
    return edge_cycle(4)


@pytest.fixture
def green4() -> Instance:
    return green_path(4)


@pytest.fixture
def star3() -> Instance:
    return sticky_star(3)
