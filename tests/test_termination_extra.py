"""Extra Core-Termination tests: Exercise 25 and Definition 19/20 duality."""

from __future__ import annotations

from repro.chase import (
    ChaseBudget,
    chase,
    core_termination,
    is_model,
    minimize_model,
)
from repro.logic import parse_instance, parse_theory
from repro.workloads import edge_cycle, edge_path, exercise23


class TestExercise25:
    def test_model_is_its_own_core(self):
        """If D |= T then Core(D) = D (first bullet of Exercise 25)."""
        theory = exercise23()
        model = parse_instance("E(a, b). E(b, b)")
        assert is_model(model, theory)
        witness = core_termination(theory, model, max_depth=5)
        assert witness is not None
        assert witness.bound == 0
        assert witness.model == model

    def test_core_is_idempotent(self):
        """Core(Core(D)) = Core(D) (second bullet)."""
        theory = exercise23()
        base = edge_path(3)
        witness = core_termination(theory, base, max_depth=8)
        core = minimize_model(witness.model, keep=base)
        again = minimize_model(core, keep=base)
        assert again == core
        # And the core of the core *as an instance* is itself: it is
        # already a model, so its Core-Termination bound is 0.
        rewitness = core_termination(theory, core, max_depth=5)
        assert rewitness is not None and rewitness.bound == 0


class TestDefinition19And20Duality:
    def test_witness_yields_both_forms(self):
        """Definition 19 (a homomorphism from the chase) and Definition 20
        (a model inside a prefix) are interchangeable: the witness carries
        both and they certify each other."""
        theory = exercise23()
        base = edge_cycle(4)
        witness = core_termination(theory, base, max_depth=8)
        assert witness is not None
        # Definition 20 form: D ⊆ M ⊆ Ch_n and M |= T.
        prefix = chase(theory, base, budget=ChaseBudget(max_rounds=witness.bound, max_atoms=50_000))
        assert base.issubset(witness.model)
        assert witness.model.issubset(prefix.instance)
        assert is_model(witness.model, theory)
        # Definition 19 form: the folding maps a deeper prefix into the
        # model, fixing the model's domain.
        deeper = chase(
            theory,
            base,
            budget=ChaseBudget(max_rounds=witness.bound + 1, max_atoms=50_000),
        )
        for term in witness.model.domain():
            assert witness.folding.get(term, term) == term
        for term in deeper.instance.domain():
            assert witness.folding[term] in witness.model.domain()

    def test_folding_is_a_homomorphism(self):
        from repro.logic.homomorphism import apply_structure_homomorphism

        theory = exercise23()
        base = edge_path(2)
        witness = core_termination(theory, base, max_depth=8)
        deeper = chase(
            theory,
            base,
            budget=ChaseBudget(max_rounds=witness.bound + 1, max_atoms=50_000),
        )
        image = apply_structure_homomorphism(deeper.instance, witness.folding)
        assert image.issubset(witness.model.union(image))  # total map
        assert image == witness.model  # exactly the eventual image


class TestCoreSizes:
    def test_core_no_larger_than_witness_model(self):
        theory = exercise23()
        base = edge_path(4)
        witness = core_termination(theory, base, max_depth=8)
        core = minimize_model(witness.model, keep=base)
        assert len(core) <= len(witness.model)
        assert base.issubset(core)
        assert is_model(core, theory)

    def test_cycle_instance_core_keeps_whole_cycle(self):
        theory = exercise23()
        base = edge_cycle(5)
        witness = core_termination(theory, base, max_depth=8)
        core = minimize_model(witness.model, keep=base)
        assert base.issubset(core)
