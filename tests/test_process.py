"""Tests for the five-operation rewriting process (Section 10) and
Theorem 5: T_d is BDD (A) with doubling rewritings (B)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import run_process
from repro.frontier.td import (
    check_theorem_5b,
    doubling_witness,
    g_path_query,
    phi_r_n,
)
from repro.logic import Instance, holds, parse_query
from repro.logic.atoms import atom
from repro.logic.containment import are_equivalent
from repro.workloads import t_d


class TestProcessMechanics:
    def test_process_terminates_without_live_queries(self):
        result = run_process(phi_r_n(1))
        from repro.frontier import is_live

        assert all(not is_live(mq) for mq in result.survivors)

    def test_survivors_are_totally_marked_or_empty(self):
        result = run_process(phi_r_n(1))
        for mq in result.survivors:
            assert mq.is_totally_marked() or mq.is_empty()

    def test_deduplication_keeps_process_small(self):
        result = run_process(phi_r_n(2))
        assert result.steps < 100

    def test_boolean_connected_query_is_trivially_true(self):
        """Section 10: thanks to (loop), Ch_1(D) satisfies every boolean
        query; the process discovers this via peeling."""
        query = parse_query("q() := exists x, y, z. R(x, y), G(y, z)")
        result = run_process(query)
        assert any(mq.is_empty() for mq in result.survivors)
        assert result.holds_on_base(Instance([atom("P", "a")]), ())

    def test_records_collected_on_demand(self):
        result = run_process(phi_r_n(1), collect_records=True)
        assert result.records
        operations = {record.operation for record in result.records}
        assert operations <= {
            "cut-red",
            "cut-green",
            "fuse-red",
            "fuse-green",
            "reduce",
        }


class TestTheorem5B:
    @pytest.mark.parametrize("depth", [1, 2])
    def test_green_power_path_in_rewriting(self, depth):
        """G^{2^n} appears among the rewriting's disjuncts."""
        result = run_process(phi_r_n(depth))
        target = g_path_query(2 ** depth)
        assert any(are_equivalent(d, target) for d in result.rewriting())

    @pytest.mark.slow
    def test_green_power_path_n3(self):
        result = run_process(phi_r_n(3))
        target = g_path_query(8)
        assert any(are_equivalent(d, target) for d in result.rewriting())

    @pytest.mark.parametrize("depth", [1, 2])
    def test_chase_witness(self, depth):
        """Claims (i) and (ii): the full green path satisfies phi_R^n in
        the chase; one-edge-removed subsets never do."""
        check = check_theorem_5b(depth, max_atoms=600_000)
        assert check.positive
        assert check.subsets_fail
        assert check.path_length == 2 ** depth

    def test_max_disjunct_size_doubles(self):
        sizes = [
            run_process(phi_r_n(depth)).rewriting().max_disjunct_size()
            for depth in (1, 2)
        ]
        assert sizes[1] >= 2 * sizes[0]


class TestProcessSoundness:
    """The process output is a true rewriting: evaluation over D matches
    chase-based certain answers (the (spades) + totally-marked conversion)."""

    @pytest.mark.slow
    def test_cross_validation_on_random_instances(self):
        rng = random.Random(11)
        query = phi_r_n(1)
        result = run_process(query)
        theory = t_d()
        for trial in range(20):
            constants = [f"c{i}" for i in range(3)]
            facts = [
                atom(
                    rng.choice(["R", "G"]),
                    rng.choice(constants),
                    rng.choice(constants),
                )
                for _ in range(rng.randint(1, 4))
            ]
            base = Instance(facts)
            run = chase(theory, base, budget=ChaseBudget(max_rounds=4, max_atoms=300_000))
            domain = sorted(base.domain(), key=repr)
            for pair in itertools.product(domain, repeat=2):
                via_chase = holds(query, run.instance, pair)
                via_rewriting = result.holds_on_base(base, pair)
                assert via_chase == via_rewriting, (base, pair)

    def test_rewriting_evaluation_on_doubling_witness(self):
        query = phi_r_n(2)
        result = run_process(query)
        instance, start, end = doubling_witness(2)
        assert result.holds_on_base(instance, (start, end))
        # Reversed endpoints: no.
        assert not result.holds_on_base(instance, (end, start))

    def test_rewriting_rejects_short_paths(self):
        from repro.workloads import green_path
        from repro.logic.terms import Constant

        query = phi_r_n(2)
        result = run_process(query)
        short = green_path(3)
        assert not result.holds_on_base(
            short, (Constant("a0"), Constant("a3"))
        )
