"""Tests for the chase join planner (rule plans, static orders, pruning).

The planner is a pure optimization: every test here pins that down by
comparing planned semi-naive runs against the unplanned full-evaluation
ablation (``semi_naive=False``), atom-for-atom and round-for-round — the
equivalence Skolem determinism (Observation 8) guarantees.  The ``plan.*``
telemetry counters are asserted exactly on hand-built theories.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase, resume
from repro.chase.planner import plan_rule
from repro.logic import parse_instance, parse_theory
from repro.logic.homomorphism import (
    compile_query_patterns,
    connectivity_order,
    iter_pattern_homomorphisms,
    plan_join,
)
from repro.logic.instance import Instance
from repro.logic.parser import parse_rule
from repro.telemetry import Telemetry
from repro.workloads import (
    edge_cycle,
    edge_path,
    exercise23,
    green_path,
    t_a,
    t_d,
    t_p,
    university_database,
    university_ontology,
)


def assert_chases_identical(theory, base, rounds):
    """Planned semi-naive run == full-evaluation run, atom for atom."""
    budget = ChaseBudget(max_rounds=rounds, max_atoms=200_000)
    planned = chase(theory, base, budget=budget, semi_naive=True)
    naive = chase(theory, base, budget=budget, semi_naive=False)
    assert planned.round_added == naive.round_added
    assert planned.instance == naive.instance
    assert planned.terminated == naive.terminated


class TestConnectivityOrder:
    def test_chain_is_followed(self):
        patterns = compile_query_patterns(
            parse_rule("E(x,y), E(y,z), E(z,w) -> P(x)").body
        )
        order, connected = connectivity_order(patterns)
        assert connected
        # Each atom after the first shares a variable with the prefix.
        assert sorted(order) == [0, 1, 2]
        assert order[1] in (0, 1, 2)

    def test_pivot_start_respected(self):
        patterns = compile_query_patterns(
            parse_rule("E(x,y), E(y,z) -> P(x)").body
        )
        order, connected = connectivity_order(patterns, first=1)
        assert connected
        assert order[0] == 1

    def test_disconnected_body_flagged(self):
        patterns = compile_query_patterns(
            parse_rule("E(x,y), F(u,v) -> P(x)").body
        )
        _, connected = connectivity_order(patterns)
        assert not connected

    def test_deterministic(self):
        patterns = compile_query_patterns(
            parse_rule("E(x,y), E(y,z), G(z,x) -> P(x)").body
        )
        assert connectivity_order(patterns) == connectivity_order(patterns)


class TestPlanJoin:
    def test_connected_body_gets_all_orders(self):
        patterns = compile_query_patterns(
            parse_rule("E(x,y), E(y,z) -> P(x)").body
        )
        plan = plan_join(patterns)
        assert plan.base_order is not None
        assert len(plan.pivot_orders) == 2
        assert all(order is not None for order in plan.pivot_orders)
        for pivot, order in enumerate(plan.pivot_orders):
            assert order[0] == pivot

    def test_disconnected_body_falls_back(self):
        patterns = compile_query_patterns(
            parse_rule("E(x,y), F(u,v) -> P(x)").body
        )
        plan = plan_join(patterns)
        assert plan.base_order is None
        assert all(order is None for order in plan.pivot_orders)

    def test_planned_search_same_homomorphisms(self):
        rule = parse_rule("E(x,y), E(y,z), G(z,w) -> P(x)")
        patterns = compile_query_patterns(rule.body)
        plan = plan_join(patterns)
        instance = parse_instance(
            "E(a,b), E(b,c), E(c,d), G(c,e), G(d,f), E(b,b), G(b,a)"
        )
        unplanned = [
            tuple(sorted((k.name, repr(v)) for k, v in hom.items()))
            for hom in iter_pattern_homomorphisms(patterns, instance)
        ]
        planned = [
            tuple(sorted((k.name, repr(v)) for k, v in hom.items()))
            for hom in iter_pattern_homomorphisms(patterns, instance, plan=plan)
        ]
        assert sorted(unplanned) == sorted(planned)

    def test_planned_delta_search_same_homomorphisms(self):
        rule = parse_rule("E(x,y), G(y,z) -> P(x)")
        patterns = compile_query_patterns(rule.body)
        plan = plan_join(patterns)
        instance = parse_instance("E(a,b), G(b,c), E(b,c), G(c,a)")
        delta = parse_instance("G(b,c)")
        unplanned = {
            tuple(sorted((k.name, repr(v)) for k, v in hom.items()))
            for hom in iter_pattern_homomorphisms(patterns, instance, delta=delta)
        }
        planned = {
            tuple(sorted((k.name, repr(v)) for k, v in hom.items()))
            for hom in iter_pattern_homomorphisms(
                patterns, instance, delta=delta, plan=plan
            )
        }
        assert unplanned == planned


class TestRulePlan:
    def test_body_predicates_and_universal(self):
        rule = parse_rule("E(x,y) -> exists z. R(y,z)")
        plan = plan_rule(rule, compile_query_patterns(rule.body))
        assert {p.name for p in plan.body_predicates} == {"E"}
        assert plan.universal == ()
        assert plan.has_body

    def test_universal_rule_relevant_on_new_terms(self):
        rule = parse_rule("true -> exists z. R(x,z)")
        plan = plan_rule(rule, compile_query_patterns(rule.body))
        assert not plan.has_body
        assert [v.name for v in plan.universal] == ["x"]
        assert plan.relevant(set(), {object()})
        assert not plan.relevant(set(), set())

    def test_body_rule_irrelevant_when_predicates_disjoint(self):
        rule = parse_rule("E(x,y) -> P(x)")
        plan = plan_rule(rule, compile_query_patterns(rule.body))
        p = parse_rule("P(x) -> Q(x)").body[0].predicate
        assert not plan.relevant({p}, {object()})
        assert plan.relevant({rule.body[0].predicate}, None)


class TestChaseEquivalence:
    """Planned semi-naive chase == unplanned full evaluation, everywhere."""

    def test_t_a_family_tree(self):
        base = parse_instance("Human('abel')")
        assert_chases_identical(t_a(), base, rounds=4)

    def test_t_p_paths(self):
        assert_chases_identical(t_p(), edge_path(4), rounds=4)

    def test_t_d_universal_rules_on_green_path(self):
        # T_d has empty-body rules and universal head variables: the
        # delta-restricted product must cover exactly the new-term
        # assignments each round.
        assert_chases_identical(t_d(), green_path(3), rounds=3)

    def test_exercise23_on_cycle(self):
        assert_chases_identical(exercise23(), edge_cycle(4), rounds=4)

    def test_university_ontology(self):
        base = university_database(students=12, professors=3, courses=5, seed=7)
        assert_chases_identical(university_ontology(), base, rounds=3)

    def test_resume_mid_run_matches_straight_run(self):
        theory = t_d()
        base = green_path(3)
        straight = chase(theory, base, budget=ChaseBudget(max_rounds=3))
        prefix = chase(theory, base, budget=ChaseBudget(max_rounds=1))
        resumed = resume(prefix, 2)
        assert resumed.round_added == straight.round_added
        assert resumed.instance == straight.instance

    def test_resume_equivalent_to_naive(self):
        theory = university_ontology()
        base = university_database(students=10, professors=2, courses=4, seed=3)
        naive = chase(theory, base, budget=ChaseBudget(max_rounds=3), semi_naive=False)
        prefix = chase(theory, base, budget=ChaseBudget(max_rounds=1))
        resumed = resume(prefix, 2)
        assert resumed.round_added == naive.round_added
        assert resumed.instance == naive.instance


class TestPlanTelemetry:
    def test_rules_skipped_exact(self):
        # Two rule "islands": once the E-island stops producing, the
        # F-island rule must be skipped by relevance (and vice versa).
        theory = parse_theory(
            """
            E(x,y) -> E(y,x)
            F(x) -> G(x)
            """
        )
        base = parse_instance("E(a,b), F(c)")
        result = chase(theory, base, budget=ChaseBudget(max_rounds=5))
        counters = result.stats.counters
        # Round 1: full evaluation, nothing skipped. Round 2 (the empty
        # fixpoint-confirming round): delta is {E(b,a), G(c)}; the F-rule's
        # body predicate is absent -> skipped exactly once.
        assert result.rounds_run == 1
        assert result.terminated
        assert counters["plan.rules_skipped"] == 1
        assert counters["plan.nodes_saved"] >= 1

    def test_empty_body_rule_skipped_after_first_round(self):
        # true -> R(c, c) with no universal variable can only ever fire in
        # round 1; relevance must skip it every later round.
        theory = parse_theory("true -> R('c','c')")
        base = parse_instance("P('a')")
        result = chase(theory, base, budget=ChaseBudget(max_rounds=5))
        assert result.rounds_run == 1
        assert result.terminated
        assert result.stats.counters["plan.rules_skipped"] == 1

    def test_pivots_skipped_exact(self):
        # Body E(x,y), G(y,z): round 2's delta contains only G-atoms, so
        # the E-pivot search is skipped.
        theory = parse_theory(
            """
            E(x,y) -> G(x,y)
            E(x,y), G(y,z) -> P(x)
            """
        )
        base = parse_instance("E(a,b), E(b,c)")
        result = chase(theory, base, budget=ChaseBudget(max_rounds=4))
        counters = result.stats.counters
        assert counters["plan.pivots_skipped"] > 0
        assert counters["plan.plans_reused"] > 0

    def test_plans_reused_counts_every_ordered_search(self):
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        base = edge_path(3)
        result = chase(theory, base, budget=ChaseBudget(max_rounds=4))
        counters = result.stats.counters
        # Round 1 (full eval): 1 ordered search. Later rounds: one per
        # unskipped pivot.
        assert counters["plan.plans_reused"] >= 3
        assert counters["plan.rules_skipped"] == 0

    def test_counters_absent_without_telemetry_sharing(self):
        # Ablation path: an unplanned search must not touch plan counters.
        telemetry = Telemetry()
        theory = parse_theory("E(x,y) -> P(x)")
        chase(theory, parse_instance("E(a,b)"), semi_naive=False, telemetry=telemetry)
        assert telemetry.counters["plan.rules_skipped"] == 0
        assert telemetry.counters["plan.pivots_skipped"] == 0


class TestPreparedRuleCache:
    def test_same_theory_object_shares_preparation(self):
        from repro.chase.engine import _prepare_rules

        theory = t_p()
        assert _prepare_rules(theory) is _prepare_rules(theory)

    def test_distinct_theory_objects_prepare_independently(self):
        from repro.chase.engine import _prepare_rules

        assert _prepare_rules(t_p()) is not _prepare_rules(t_p())


class TestDepthIndex:
    def test_depth_of_matches_round_added(self):
        result = chase(t_p(), edge_path(4), budget=ChaseBudget(max_rounds=4))
        for depth, added in enumerate(result.round_added):
            for item in added:
                assert result.depth_of(item) == depth

    def test_depth_of_unknown_atom_is_none(self):
        result = chase(t_p(), edge_path(3), budget=ChaseBudget(max_rounds=2))
        stranger = parse_instance("Zzz(q)").atoms()
        assert result.depth_of(next(iter(stranger))) is None

    def test_depth_of_after_resume_sees_new_rounds(self):
        prefix = chase(t_d(), green_path(3), budget=ChaseBudget(max_rounds=1))
        assert prefix.depth_of(next(iter(prefix.round_added[1]))) == 1
        resumed = resume(prefix, 2)
        late = next(iter(resumed.round_added[-1]))
        assert resumed.depth_of(late) == len(resumed.round_added) - 1
