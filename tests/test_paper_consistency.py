"""Cross-consistency checks between independent parts of the reproduction.

Each test pits two different implementations (or two different paper
routes to the same fact) against each other: translation layers, the
renamed T_d^2 vs T_d, rewriting-size bounds vs distance contraction
(Observation 44), and the class-catalogue's promised inclusions.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import distance_contraction
from repro.frontier.tdk import phi_pair, run_process_k
from repro.frontier.process import run_process
from repro.frontier.td import phi_r_n
from repro.logic import parse_instance, parse_query
from repro.logic.atoms import Atom
from repro.logic.signature import Predicate
from repro.logic.terms import Constant
from repro.rewriting import rewrite
from repro.workloads import (
    edge_path,
    green_path,
    level_path,
    t_d,
    t_d_k,
    t_p,
    university_ontology,
)


class TestTdVersusTdK2:
    """T_d^2 is T_d with I_2 = R, I_1 = G (the pins rules split per level,
    which cannot change which atoms exist, only their Skolem spellings)."""

    def _rename(self, instance):
        renaming = {"R": Predicate("I2", 2), "G": Predicate("I1", 2)}
        return {
            (renaming[a.predicate.name].name, a.args)
            for a in instance
            if a.predicate.name in renaming
        }

    @pytest.mark.parametrize("rounds", [1, 2, 3])
    def test_same_atom_counts_per_round(self, rounds):
        td_run = chase(t_d(), green_path(2), budget=ChaseBudget(max_rounds=rounds, max_atoms=200_000))
        tdk_run = chase(
            t_d_k(2),
            level_path(2, 1),
            budget=ChaseBudget(max_rounds=rounds, max_atoms=200_000),
        )
        assert len(td_run.instance) == len(tdk_run.instance)

    def test_same_rewriting_shape(self):
        td_rewriting = run_process(phi_r_n(2)).rewriting()
        tdk_rewriting = run_process_k(phi_pair(1, 2), levels=2).rewriting()
        assert len(td_rewriting) == len(tdk_rewriting)
        assert sorted(d.size for d in td_rewriting) == sorted(
            d.size for d in tdk_rewriting
        )


class TestSingleHeadTranslation:
    """Footnote 10's multi-head-to-single-head translation preserves the
    original-signature entailments (at the cost of higher arity)."""

    def test_td_translation_preserves_phi_r_1(self):
        theory = t_d()
        translated = theory.single_head_equivalent()
        base = green_path(2)
        query = phi_r_n(1)
        original = chase(theory, base, budget=ChaseBudget(max_rounds=3, max_atoms=200_000))
        # The translation interleaves Aux production and projections, so
        # it may need up to twice the rounds for the same atoms.
        doubled = chase(translated, base, budget=ChaseBudget(max_rounds=6, max_atoms=400_000))
        from repro.logic.homomorphism import holds

        answer = (Constant("a0"), Constant("a2"))
        assert holds(query, original.instance, answer) == holds(
            query, doubled.instance, answer
        )

    def test_translation_raises_arity(self):
        translated = t_d().single_head_equivalent()
        assert translated.max_arity() > 2
        assert translated.is_single_head()


class TestObservation44Link:
    """Linear-size rewritings come with bounded distance contraction; the
    two measurements must agree on which theories are tame."""

    def test_tp_small_rewritings_and_no_contraction(self):
        query = parse_query(
            "q(x0) := E(x0, x1), E(x1, x2), E(x2, x3)"
        )
        result = rewrite(t_p(), query)
        assert result.complete
        assert result.max_disjunct_size() <= query.size  # linear-size
        path = edge_path(6)
        pair = distance_contraction(
            t_p(), path, [(Constant("a0"), Constant("a6"))], depth=4
        )[0]
        assert pair.contraction_ratio <= 1.0  # distancing

    def test_td_large_rewritings_and_contraction_go_together(self):
        process = run_process(phi_r_n(3))
        assert process.rewriting().max_disjunct_size() >= 8  # 2^3 disjunct
        from repro.frontier.td import doubling_witness

        instance, start, end = doubling_witness(3)
        pair = distance_contraction(
            t_d(), instance, [(start, end)], depth=7, max_atoms=2_000_000
        )[0]
        assert pair.contraction_ratio > 1.0  # non-distancing


class TestCatalogueInclusions:
    """Section 1's promised inclusions, checked on the whole catalogue."""

    def test_linear_implies_guarded_and_sticky(self):
        from repro.classes import classify
        from repro.workloads import t_a, university_ontology

        for theory in (t_p(), t_a(), university_ontology()):
            report = classify(theory)
            assert report.linear
            assert report.guarded  # one body atom guards trivially
            assert report.sticky

    def test_guarded_implies_frontier_guarded(self):
        from repro.classes import classify
        from repro.workloads import example41

        report = classify(example41())
        assert report.guarded
        assert report.frontier_guarded

    def test_university_rewriting_depth_matches_chain_length(self):
        """The depth bound certified by rewriting tracks the ontology's
        longest implication chain."""
        from repro.rewriting import depth_bound_from_rewriting

        query = parse_query("q() := exists p, d. MemberOf(p, d), Department(d)")
        bound = depth_bound_from_rewriting(university_ontology(), query)
        assert 1 <= bound <= len(university_ontology())
