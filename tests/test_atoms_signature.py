"""Unit tests for repro.logic.atoms and repro.logic.signature."""

from __future__ import annotations

import pytest

from repro.logic.atoms import Atom, atom, variables_of_atoms
from repro.logic.signature import Predicate, Signature
from repro.logic.terms import Constant, Variable


class TestPredicate:
    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Predicate("P", -1)

    def test_equality(self):
        assert Predicate("E", 2) == Predicate("E", 2)
        assert Predicate("E", 2) != Predicate("E", 3)

    def test_repr_shows_arity(self):
        assert repr(Predicate("E", 2)) == "E/2"


class TestSignature:
    def test_lookup_by_name(self):
        sig = Signature([Predicate("E", 2)])
        assert sig.get("E") == Predicate("E", 2)
        assert sig.get("missing") is None

    def test_arity_conflict_rejected(self):
        sig = Signature([Predicate("E", 2)])
        with pytest.raises(ValueError):
            sig.add(Predicate("E", 3))

    def test_readding_same_predicate_is_fine(self):
        sig = Signature([Predicate("E", 2)])
        sig.add(Predicate("E", 2))
        assert len(sig) == 1

    def test_is_binary(self):
        assert Signature([Predicate("E", 2), Predicate("P", 1)]).is_binary()
        assert not Signature([Predicate("T", 3)]).is_binary()

    def test_max_arity_of_empty_signature(self):
        assert Signature().max_arity() == 0

    def test_membership(self):
        sig = Signature([Predicate("E", 2)])
        assert Predicate("E", 2) in sig
        assert Predicate("E", 3) not in sig


class TestAtom:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Atom(Predicate("E", 2), (Constant("a"),))

    def test_atom_helper_infers_arity(self):
        fact = atom("E", "a", "b")
        assert fact.predicate == Predicate("E", 2)
        assert fact.args == (Constant("a"), Constant("b"))

    def test_groundness(self):
        assert atom("E", "a", "b").is_ground()
        assert not atom("E", Variable("x"), "b").is_ground()

    def test_variable_set(self):
        item = atom("E", Variable("x"), Variable("x"))
        assert item.variable_set() == {Variable("x")}

    def test_variables_yields_occurrences(self):
        item = atom("E", Variable("x"), Variable("x"))
        assert len(list(item.variables())) == 2

    def test_substitute(self):
        item = atom("E", Variable("x"), "b")
        result = item.substitute({Variable("x"): Constant("a")})
        assert result == atom("E", "a", "b")

    def test_substitute_no_change_returns_self(self):
        item = atom("E", "a", "b")
        assert item.substitute({Variable("x"): Constant("c")}) is item

    def test_nullary_atom(self):
        marker = Atom(Predicate("M", 0), ())
        assert marker.is_ground()
        assert marker.variable_set() == set()

    def test_variables_of_atoms(self):
        atoms = [atom("E", Variable("x"), "a"), atom("P", Variable("y"))]
        assert variables_of_atoms(atoms) == {Variable("x"), Variable("y")}

    def test_repr(self):
        assert repr(atom("E", "a", Variable("x"))) == "E(a,x)"
