"""Tests for the FUS/FES machinery (Sections 6 and 8, Theorem 4)."""

from __future__ import annotations

import pytest

from repro.chase import chase, chase_to_fixpoint, core_termination, is_model
from repro.frontier import (
    banned_terms,
    global_folding,
    h_star,
    m_f_structure,
    small_subset_cores,
    uniform_bound_profile,
)
from repro.logic import Instance, parse_instance, parse_theory
from repro.logic.instance import subsets_of_size_at_most
from repro.workloads import edge_cycle, edge_path, example28_slice, exercise23


@pytest.fixture
def ait_theory():
    """A terminating (AIT) theory: full chases are finite, so every lemma
    of Section 8 is checkable exactly."""
    return parse_theory(
        """
        P(x) -> exists y. E(x, y)
        E(x, y) -> Q(y)
        """,
        name="AIT",
    )


class TestSubsetCores:
    def test_c_d_contains_base(self):
        base = edge_path(3)
        cores = small_subset_cores(exercise23(), base, bound=2)
        assert base.issubset(cores.union_of_cores)

    def test_every_witness_is_a_model(self):
        cores = small_subset_cores(exercise23(), edge_path(3), bound=2)
        for part, witness in cores.witnesses:
            assert part.issubset(witness.model)
            assert is_model(witness.model, exercise23())

    def test_k_bound_is_max_of_subset_bounds(self):
        cores = small_subset_cores(exercise23(), edge_path(3), bound=2)
        assert cores.max_core_depth == max(w.bound for _, w in cores.witnesses)

    def test_non_ct_theory_raises(self):
        theory = parse_theory("E(x, y) -> exists z. E(y, z)")
        with pytest.raises(RuntimeError):
            small_subset_cores(theory, edge_path(2), bound=1, max_depth=4)


class TestLemma35:
    def test_h_star_is_identity_on_core(self, ait_theory):
        base = parse_instance("P(a). P(b). E(a, c)")
        core, hom = h_star(ait_theory, base)
        assert is_model(core, ait_theory)
        for term in core.domain():
            assert hom[term] == term

    def test_h_star_maps_chase_into_core(self, ait_theory):
        base = parse_instance("P(a). E(a, c)")
        core, hom = h_star(ait_theory, base)
        full = chase_to_fixpoint(ait_theory, base).instance
        for term in full.domain():
            assert hom[term] in core.domain()


class TestLemma37:
    def test_m_f_is_a_model(self, ait_theory):
        """Definition 36's M_F satisfies the theory (checked exactly on a
        terminating chase)."""
        base = parse_instance("P(a). P(b)")
        full = chase_to_fixpoint(ait_theory, base).instance
        for part in subsets_of_size_at_most(base, 1):
            part_chase = chase_to_fixpoint(ait_theory, part).instance
            core, _ = h_star(ait_theory, part)
            m_f = m_f_structure(full, part_chase, core)
            assert is_model(m_f, ait_theory)
            assert base.issubset(m_f)

    def test_banned_terms_excluded(self, ait_theory):
        base = parse_instance("P(a). P(b)")
        full = chase_to_fixpoint(ait_theory, base).instance
        part = Instance([next(iter(parse_instance("P(a)")))])
        part_chase = chase_to_fixpoint(ait_theory, part).instance
        core, _ = h_star(ait_theory, part)
        banned = banned_terms(part_chase, core)
        m_f = m_f_structure(full, part_chase, core)
        assert banned.isdisjoint(m_f.domain())


class TestGlobalFolding:
    def test_folding_lands_in_c_d(self):
        """Section 8's punchline: the composed homomorphism sends every
        (small-subset-covered) term into dom(C_D)."""
        fold, cores = global_folding(exercise23(), edge_path(3), bound=2, depth=4)
        base_domain = edge_path(3).domain()
        for term in base_domain:
            assert fold[term] == term

    def test_folding_respects_base_identity(self):
        fold, _ = global_folding(exercise23(), edge_cycle(3), bound=2, depth=4)
        for term in edge_cycle(3).domain():
            assert fold[term] == term


class TestUniformBounds:
    def test_exercise_23_profile_is_flat(self):
        """Theorem 4 (via Observation 27): one constant c_T covers every
        instance of the local, core-terminating Exercise-23 theory."""
        profile = uniform_bound_profile(
            exercise23(),
            [edge_path(n) for n in (2, 3, 4, 6)] + [edge_cycle(4)],
        )
        assert profile.looks_uniform
        assert profile.uniform_bound == 2

    def test_example_28_slices_grow(self):
        """The infinite theory of Example 28 defeats uniformity: deeper
        slices need deeper chases, so no single c_T exists."""
        bounds = []
        for level in (1, 2, 3):
            theory = example28_slice(level)
            base = parse_instance(f"E{level}(a, b)")
            bounds.append(uniform_bound_profile(theory, [base]).bounds[0])
        assert bounds == [1, 2, 3]

    def test_profile_raises_without_witness(self):
        theory = parse_theory("E(x, y) -> exists z. E(y, z)")
        with pytest.raises(RuntimeError):
            uniform_bound_profile(theory, [edge_path(2)], max_depth=4)


class TestDefinition26Directly:
    def test_ubdd_enough_for_exercise_23(self):
        """Definition 26 head-on: c_T + n_at rounds suffice for every
        sampled query over every sampled instance."""
        from repro.frontier import ubdd_enough_check
        from repro.logic import parse_query

        queries = [
            parse_query("q(x) := exists y. E(x, y)"),
            parse_query("q(x, y) := E(x, y)"),
            parse_query("q(x) := exists y, z. E(x, y), E(y, z)"),
            parse_query("q() := exists x. E(x, x)"),
        ]
        instances = [edge_path(3), edge_path(5), edge_cycle(4)]
        theory = exercise23()
        # c_T = 2 (E6) plus the Exercise-17 delay: 4 rounds are uniform.
        assert ubdd_enough_check(theory, queries, instances, bound=4)

    def test_bound_zero_is_refuted(self):
        from repro.frontier import ubdd_enough_check
        from repro.logic import parse_query

        query = parse_query("q() := exists x. E(x, x)")
        assert not ubdd_enough_check(
            exercise23(), [query], [edge_path(3)], bound=0
        )
