"""Failure-injection and edge-behaviour tests across the stack.

Budgets, malformed inputs and impossible requests must fail loudly and
precisely — never with silent wrong answers (the repository-wide
convention documented in docs/architecture.md §5)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, ChaseBudgetExceeded, chase, chase_to_fixpoint
from repro.frontier import (
    MarkedQuery,
    NoMaximalVariable,
    NormalizationError,
    apply_operation,
    normalize,
)
from repro.frontier.process import run_process
from repro.frontier.td import phi_r_n
from repro.logic import Instance, ParseError, parse_instance, parse_query, parse_theory
from repro.logic.atoms import atom
from repro.logic.terms import FreshVariables, Variable
from repro.rewriting import RewritingBudget, answer_by_materialization, rewrite
from repro.workloads import t_p


class TestChaseBudgets:
    def test_raise_mode_is_loud(self):
        with pytest.raises(ChaseBudgetExceeded):
            chase(t_p(), parse_instance("E(a, b)"),
                  budget=ChaseBudget(max_rounds=30, max_atoms=5,
                                     on_exceeded="raise"))

    def test_return_mode_flags_truncation(self):
        result = chase(t_p(), parse_instance("E(a, b)"), budget=ChaseBudget(max_rounds=3))
        assert not result.terminated

    def test_invalid_budget_mode_rejected(self):
        with pytest.raises(ValueError):
            ChaseBudget(on_exceeded="whatever")

    def test_fixpoint_helper_refuses_divergence(self):
        with pytest.raises(ChaseBudgetExceeded):
            chase_to_fixpoint(t_p(), parse_instance("E(a, b)"), budget=ChaseBudget(max_rounds=4))

    def test_empty_instance_empty_theory(self):
        from repro.logic.tgd import Theory

        result = chase(Theory([], name="empty"), Instance(), budget=ChaseBudget(max_rounds=3))
        assert result.terminated
        assert len(result.instance) == 0


class TestRewritingBudgets:
    def test_incomplete_result_cannot_answer(self):
        from repro.rewriting import answer_by_rewriting
        from repro.workloads import example41

        query = parse_query("q(x, z) := R(x, z)")
        result = rewrite(example41(), query, RewritingBudget(max_kept=10, max_steps=300))
        assert not result.complete
        with pytest.raises(RuntimeError):
            answer_by_rewriting(example41(), query, Instance(), prepared=result)

    def test_materialization_without_depth_requires_termination(self):
        query = parse_query("q(x) := exists y. E(x, y)")
        with pytest.raises(RuntimeError):
            answer_by_materialization(
                t_p(), query, parse_instance("E(a, b)"),
                budget=ChaseBudget(max_rounds=4),
            )

    def test_max_disjunct_budget_marks_incomplete(self):
        query = parse_query("q(x) := exists y, z. E(x, y), E(y, z)")
        result = rewrite(t_p(), query, RewritingBudget(max_disjunct_atoms=0))
        assert not result.complete


class TestProcessFailures:
    def test_step_budget_is_loud(self):
        with pytest.raises(RuntimeError):
            run_process(phi_r_n(2), max_steps=3)

    def test_no_maximal_variable_is_a_bug_signal(self):
        x, y = Variable("x"), Variable("y")
        totally = MarkedQuery((), (atom("G", x, y),), frozenset({x, y}))
        with pytest.raises(NoMaximalVariable):
            apply_operation(totally, FreshVariables())


class TestNormalizationScope:
    def test_ternary_theory_rejected(self):
        with pytest.raises(NormalizationError):
            normalize(parse_theory("T(x, y, z) -> P(x)"))

    def test_frontier_two_existential_rule_rejected(self):
        # Binary signature but a frontier of size two in an existential
        # rule cannot happen with binary atoms... build a sneaky one with
        # two binary body atoms and a two-variable frontier head.
        theory = parse_theory("E(x, y) -> exists z. F(x, z), F(y, z)")
        with pytest.raises(NormalizationError):
            normalize(theory)

    def test_exhausted_rewriting_budget_fails_loudly(self):
        from repro.workloads import example66

        with pytest.raises(NormalizationError):
            normalize(example66(), RewritingBudget(max_steps=0))

    def test_transitive_closure_bodies_still_normalize(self):
        # Perhaps surprisingly, single-atom bodies rewrite *completely*
        # under transitive closure (longer paths are subsumed), so this
        # non-BDD theory still normalizes — the BDD assumption is about
        # the rule bodies' rewritings, which is all Appendix A needs.
        transitive = parse_theory(
            """
            E(x, y), E(y, z) -> E(x, z)
            E(x, y) -> exists w. F(y, w)
            """
        )
        result = normalize(transitive)
        assert len(result.normalized) >= 2


class TestParserFailures:
    @pytest.mark.parametrize(
        "text",
        [
            "E(x, y -> E(y, x)",      # unclosed paren
            "E(x, y) -> exists . E(y, x)",  # empty quantifier list
            "E(x, y) ->",             # missing head
        ],
    )
    def test_malformed_rules(self, text):
        from repro.logic import parse_rule

        with pytest.raises(ParseError):
            parse_rule(text)

    def test_arity_conflict_across_facts(self):
        with pytest.raises(ValueError):
            # Same predicate name at two arities: the Instance's signature
            # accepts it (predicates are name+arity pairs), so assert the
            # *signature* object flags it instead.
            from repro.logic.signature import Predicate, Signature

            Signature([Predicate("E", 2), Predicate("E", 3)])
