"""Tests for repro.telemetry and its threading through the engines.

The counter assertions are exact: on theories small enough to trace by
hand, the instrumentation must report precisely the work Definition 6
prescribes — that is what makes the stats trustworthy on big runs.
"""

from __future__ import annotations

import json

import pytest

from repro.chase import ChaseBudget, chase, chase_to_fixpoint, resume
from repro.logic import parse_instance, parse_query, parse_theory
from repro.rewriting import answer_by_materialization, rewrite
from repro.telemetry import Telemetry, validate_stats_dict


class TestTelemetryPrimitives:
    def test_count_and_gauge(self):
        t = Telemetry()
        t.count("x.a")
        t.count("x.a", 4)
        t.gauge_max("x.peak", 3)
        t.gauge_max("x.peak", 2)
        assert t.counters["x.a"] == 5
        assert t.counters["x.peak"] == 3

    def test_phase_accumulates(self):
        t = Telemetry()
        with t.phase("p"):
            pass
        first = t.phases["p"]
        with t.phase("p"):
            pass
        assert t.phases["p"] >= first

    def test_hooks_see_round_records(self):
        seen = []
        t = Telemetry(hooks=(lambda event, payload: seen.append((event, payload)),))
        entry = t.record_round(round=1, matches=2)
        assert seen == [("round", entry)]

    def test_fork_is_independent(self):
        t = Telemetry()
        t.count("a")
        t.record_round(round=1)
        copy = t.fork()
        copy.count("a")
        copy.record_round(round=2)
        assert t.counters["a"] == 1 and copy.counters["a"] == 2
        assert len(t.rounds) == 1 and len(copy.rounds) == 2

    def test_merge_sums(self):
        left, right = Telemetry(), Telemetry()
        left.count("a", 2)
        right.count("a", 3)
        right.record_round(round=1)
        left.merge(right)
        assert left.counters["a"] == 5
        assert len(left.rounds) == 1

    def test_as_dict_is_json_ready(self):
        t = Telemetry()
        t.count("a")
        with t.phase("p"):
            pass
        t.record_round(round=1, seconds=0.5, terminated=True)
        document = t.as_dict()
        validate_stats_dict(document)
        json.dumps(document)  # must not raise


class TestStatsSchema:
    def test_accepts_minimal(self):
        validate_stats_dict({"counters": {}, "phases": {}, "rounds": []})

    @pytest.mark.parametrize(
        "bad",
        [
            [],
            {"counters": {}, "phases": {}},
            {"counters": {"a": "1"}, "phases": {}, "rounds": []},
            {"counters": {}, "phases": {"p": "fast"}, "rounds": []},
            {"counters": {}, "phases": {}, "rounds": [{"nested": {}}]},
            {"counters": {}, "phases": {}, "rounds": [["not", "a", "dict"]]},
        ],
    )
    def test_rejects_violations(self, bad):
        with pytest.raises(ValueError):
            validate_stats_dict(bad)


class TestChaseCounters:
    def test_single_rule_exact_counts(self):
        # P(a) |= P(x) -> Q(x): one match in round 1, one empty
        # fixpoint-confirming round after it.
        theory = parse_theory("P(x) -> Q(x)")
        result = chase(theory, parse_instance("P(a)"))
        assert result.terminated and result.rounds_run == 1
        counters = result.stats.counters
        assert counters["chase.rounds"] == 2
        assert counters["chase.matches"] == 1
        assert counters["chase.atoms_produced"] == 1
        assert counters["chase.dedup_hits"] == 0
        # Per-round records: the productive round, then the empty one.
        assert len(result.stats.rounds) == 2
        first, last = result.stats.rounds
        assert first["round"] == 1 and first["matches"] == 1
        assert first["atoms_produced"] == 1 and first["total_atoms"] == 2
        assert last["round"] == 2 and last["atoms_produced"] == 0

    def test_cycle_counts_dedup_hit(self):
        # Round 2 re-derives P(a) from Q(a); the duplicate is counted.
        theory = parse_theory("P(x) -> Q(x)\nQ(x) -> P(x)")
        result = chase(theory, parse_instance("P(a)"))
        assert result.terminated
        counters = result.stats.counters
        assert counters["chase.matches"] == 2
        assert counters["chase.atoms_produced"] == 1
        assert counters["chase.dedup_hits"] == 1

    def test_hom_counters_populated(self):
        theory = parse_theory("E(x, y) -> E(y, x)")
        result = chase(theory, parse_instance("E(a, b)"))
        counters = result.stats.counters
        assert counters["hom.nodes"] > 0
        assert counters["hom.candidates_scanned"] > 0
        assert counters["hom.candidates_estimated"] >= 0

    def test_truncated_run_has_no_terminal_record(self):
        theory = parse_theory(
            "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"
        )
        result = chase(
            theory, parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=3)
        )
        assert not result.terminated and result.rounds_run == 3
        assert len(result.stats.rounds) == 3
        assert all(entry["atoms_produced"] > 0 for entry in result.stats.rounds)


class TestResumeEquivalence:
    THEORY = "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"

    def test_resume_matches_one_shot_run(self):
        theory = parse_theory(self.THEORY)
        base = parse_instance("Human(abel)")
        one_shot = chase(theory, base, budget=ChaseBudget(max_rounds=4))
        prefix = chase(theory, base, budget=ChaseBudget(max_rounds=2))
        resumed = resume(prefix, 2)
        assert resumed.instance == one_shot.instance
        assert resumed.round_added == one_shot.round_added
        # Stats continue seamlessly: same records modulo wall time.
        strip = lambda rounds: [
            {k: v for k, v in entry.items() if k != "seconds"} for entry in rounds
        ]
        assert strip(resumed.stats.rounds) == strip(one_shot.stats.rounds)
        assert (
            resumed.stats.counters["chase.matches"]
            == one_shot.stats.counters["chase.matches"]
        )

    def test_resume_does_not_mutate_prefix_stats(self):
        theory = parse_theory(self.THEORY)
        prefix = chase(
            theory, parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=1)
        )
        before = len(prefix.stats.rounds)
        resume(prefix, 2)
        assert len(prefix.stats.rounds) == before


class TestBudgetAPI:
    def test_legacy_kwargs_removed(self):
        # The pre-ChaseBudget kwargs (deprecated in 1.1) are gone: every
        # entry point rejects them with a pointer at ChaseBudget.
        theory = parse_theory("P(x) -> Q(x)")
        base = parse_instance("P(a)")
        with pytest.raises(TypeError, match="ChaseBudget"):
            chase(theory, base, max_rounds=2)
        with pytest.raises(TypeError, match="ChaseBudget"):
            chase(theory, base, max_atoms=10)
        truncated = chase(
            theory,
            parse_instance("Human(abel)"),
            budget=ChaseBudget(max_rounds=1),
        )
        with pytest.raises(TypeError, match="ChaseBudget"):
            resume(truncated, 1, max_atoms=10)
        with pytest.raises(TypeError, match="ChaseBudget"):
            chase_to_fixpoint(theory, base, max_rounds=5)
        with pytest.raises(TypeError, match="ChaseBudget"):
            answer_by_materialization(
                theory, parse_query("q(x) := Q(x)"), base, max_rounds=5
            )

    def test_legacy_kwargs_rejected_before_any_work(self):
        # The TypeError fires during argument resolution, not mid-chase.
        theory = parse_theory("P(x) -> Q(x)")
        with pytest.raises(TypeError, match="max_rounds"):
            chase(theory, parse_instance("P(a)"), max_rounds=0)

    def test_budget_path_is_silent(self, recwarn):
        theory = parse_theory("P(x) -> Q(x)")
        chase(theory, parse_instance("P(a)"), budget=ChaseBudget(max_rounds=2))
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_both_spellings_rejected(self):
        theory = parse_theory("P(x) -> Q(x)")
        with pytest.raises(TypeError):
            chase(
                theory,
                parse_instance("P(a)"),
                budget=ChaseBudget(),
                max_rounds=2,
            )

    def test_on_exceeded_validated(self):
        with pytest.raises(ValueError):
            ChaseBudget(on_exceeded="explode")

    def test_on_exceeded_raise(self):
        from repro.chase.engine import ChaseBudgetExceeded

        theory = parse_theory(
            "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"
        )
        with pytest.raises(ChaseBudgetExceeded):
            chase(
                theory,
                parse_instance("Human(abel)"),
                budget=ChaseBudget(max_rounds=50, max_atoms=5, on_exceeded="raise"),
            )


class TestRewriteCounters:
    def test_atomic_rewriting_counts(self):
        theory = parse_theory("Trusted(x) -> Admitted(x)")
        result = rewrite(theory, parse_query("q(v) := Admitted(v)"))
        counters = result.stats.counters
        assert result.complete
        assert counters["rewrite.kept"] == 2
        assert counters["rewrite.produced"] == 1
        assert counters["rewrite.steps"] == 1
        assert counters["rewrite.queue_peak"] >= 1
        assert "rewrite" in result.stats.phases
