"""Tests for the columnar chase kernel and the unified backend registry.

The columnar kernel is a pure optimization, exactly like the planner and
the parallel executor before it: every test here pins that down by
comparing ``backend="columnar"`` runs against the object engine
(``backend="memory"``) atom-for-atom, round-for-round, and — because the
kernel mirrors the engine's pivot semantics — *counter-for-counter* on
``chase.matches`` / ``chase.atoms_produced`` / ``chase.dedup_hits``.
The equivalence is guaranteed by Skolem-naming determinism
(Observation 8): both kernels derive the same head atom from the same
trigger, whatever order the joins ran in.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase, resume
from repro.chase.columnar_kernel import evaluate_ucq_columnar
from repro.logic import parse_instance, parse_query, parse_theory
from repro.logic.containment import evaluate_ucq
from repro.rewriting import OMQASession, answer, rewrite
from repro.rewriting.engine import RewritingBudget
from repro.storage import (
    BACKEND_NAMES,
    ColumnarStore,
    MemoryStore,
    SQLiteStore,
    resolve_backend,
)
from repro.workloads import (
    edge_cycle,
    edge_path,
    example42_tc,
    exercise23,
    green_path,
    t_a,
    t_d,
    t_p,
    university_database,
    university_ontology,
)
from repro.workloads.generators import random_instance

EXACT_COUNTERS = ("chase.matches", "chase.atoms_produced", "chase.dedup_hits")


def assert_columnar_identical(theory, base, rounds, **chase_kwargs):
    """Columnar run == object-engine run, atom for atom and count for count."""
    budget = ChaseBudget(max_rounds=rounds, max_atoms=200_000)
    reference = chase(theory, base, budget=budget, backend="memory", **chase_kwargs)
    columnar = chase(theory, base, budget=budget, backend="columnar", **chase_kwargs)
    assert columnar.round_added == reference.round_added
    assert columnar.instance == reference.instance
    assert columnar.terminated == reference.terminated
    for name in EXACT_COUNTERS:
        assert (
            columnar.stats.counters[name] == reference.stats.counters[name]
        ), name
    return columnar


class TestRoundEquivalence:
    """Every planner-equivalence fixture, columnar vs object engine."""

    def test_t_a_family_tree(self):
        assert_columnar_identical(t_a(), parse_instance("Human('abel')"), rounds=4)

    def test_t_p_paths(self):
        assert_columnar_identical(t_p(), edge_path(4), rounds=4)

    def test_t_d_universal_rules_on_green_path(self):
        # Universal head variables (the T_d family) are outside the
        # kernel's datalog shape; those rules fall back to the object
        # engine while the rest stay columnar — same rounds either way.
        result = assert_columnar_identical(t_d(), green_path(3), rounds=3)
        assert result.stats.counters["columnar.fallback_rules"] > 0
        assert result.stats.counters["columnar.matches"] > 0

    def test_exercise23_on_cycle(self):
        assert_columnar_identical(exercise23(), edge_cycle(4), rounds=4)

    def test_tc_on_cycle(self):
        assert_columnar_identical(example42_tc(), edge_cycle(5), rounds=8)

    def test_university_ontology(self):
        base = university_database(students=12, professors=3, courses=5, seed=7)
        assert_columnar_identical(university_ontology(), base, rounds=3)

    def test_full_evaluation_mode(self):
        # semi_naive=False exercises the kernel's base-order join only.
        assert_columnar_identical(
            exercise23(), edge_cycle(4), rounds=4, semi_naive=False
        )

    def test_random_workload_parity(self):
        # The parallel suite's seeded stress workload: transitive closure
        # plus existential invention over random edges.
        theory = parse_theory(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> exists w. F(y,w)
            F(x,y), E(z,x) -> G(z,y)
            """
        )
        predicates = {
            atom.predicate for rule in theory.rules() for atom in rule.body
        }
        base = random_instance(
            sorted(predicates, key=lambda p: p.name),
            fact_count=40,
            domain_size=12,
            seed=20260805,
        )
        assert_columnar_identical(theory, base, rounds=4)

    def test_columnar_is_the_default_backend(self):
        result = chase(t_p(), edge_path(3), budget=ChaseBudget(max_rounds=3))
        assert result.stats.counters["columnar.rounds"] > 0


class TestRuleShapes:
    """Body shapes that stress the id-level join compiler."""

    def test_body_constants(self):
        theory = parse_theory("E('hub', x), E(x, y) -> Reach(y)")
        base = parse_instance("E('hub','a'), E('a','b'), E('b','c'), E('other','z')")
        assert_columnar_identical(theory, base, rounds=3)

    def test_repeated_variables(self):
        theory = parse_theory("E(x, x) -> Loop(x)\nE(x, y), E(y, x) -> Mutual(x, y)")
        base = parse_instance("E('a','a'), E('a','b'), E('b','a'), E('b','c')")
        assert_columnar_identical(theory, base, rounds=2)

    def test_disconnected_body(self):
        # plan_join refuses disconnected bodies (base_order None); the
        # kernel joins them with its identity fallback order.
        theory = parse_theory("P(x), Q(y) -> R(x, y)")
        base = parse_instance("P('a'), P('b'), Q('c')")
        assert_columnar_identical(theory, base, rounds=2)

    def test_nullary_predicates(self):
        theory = parse_theory("P(x) -> Flag()\nFlag() -> Done()")
        base = parse_instance("P('a'), P('b')")
        assert_columnar_identical(theory, base, rounds=3)

    def test_skolem_terms_round_trip(self):
        # Invented terms are interned on first derivation and feed later
        # joins; deep nesting must decode back to the engine's atoms.
        theory = parse_theory(
            "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"
        )
        assert_columnar_identical(theory, parse_instance("Human('abel')"), rounds=4)


class TestResume:
    THEORY = "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"

    def test_resume_columnar_matches_one_shot(self):
        theory = parse_theory(self.THEORY)
        base = parse_instance("Human('abel')")
        one_shot = chase(
            theory, base, budget=ChaseBudget(max_rounds=4), backend="columnar"
        )
        prefix = chase(
            theory, base, budget=ChaseBudget(max_rounds=2), backend="columnar"
        )
        resumed = resume(prefix, 2, backend="columnar")
        assert resumed.instance == one_shot.instance
        assert resumed.round_added == one_shot.round_added
        for name in EXACT_COUNTERS:
            assert resumed.stats.counters[name] == one_shot.stats.counters[name]

    def test_resume_crosses_backends(self):
        # A memory prefix resumed columnar (and vice versa) lands on the
        # same chase — the kernels agree mid-run, not just from round 0.
        theory = parse_theory(self.THEORY)
        base = parse_instance("Human('abel')")
        reference = chase(theory, base, budget=ChaseBudget(max_rounds=4))
        prefix_mem = chase(
            theory, base, budget=ChaseBudget(max_rounds=2), backend="memory"
        )
        assert resume(prefix_mem, 2, backend="columnar").instance == reference.instance
        prefix_col = chase(
            theory, base, budget=ChaseBudget(max_rounds=2), backend="columnar"
        )
        assert resume(prefix_col, 2, backend="memory").instance == reference.instance


class TestColumnarTelemetry:
    def test_counters_populated(self):
        result = chase(
            example42_tc(),
            edge_cycle(4),
            budget=ChaseBudget(max_rounds=6),
            backend="columnar",
        )
        counters = result.stats.counters
        assert counters["columnar.rounds"] > 0
        assert counters["columnar.rules"] > 0
        assert counters["columnar.matches"] == counters["chase.matches"]
        assert counters["columnar.atoms_produced"] == counters["chase.atoms_produced"]
        assert "columnar.fallback_rules" not in counters  # all datalog-shaped
        assert counters["hom.nodes"] > 0  # join effort reported as hom.*

    def test_memory_backend_has_no_columnar_counters(self):
        result = chase(
            example42_tc(),
            edge_cycle(4),
            budget=ChaseBudget(max_rounds=6),
            backend="memory",
        )
        assert not any(
            name.startswith("columnar.") for name in result.stats.counters
        )


class TestResolveBackend:
    def test_registry_names(self):
        assert BACKEND_NAMES == ("memory", "columnar", "sqlite")

    def test_default(self):
        assert resolve_backend(None).name == "memory"
        assert resolve_backend(None, default="columnar").name == "columnar"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="nosql"):
            resolve_backend("nosql")

    def test_path_only_for_sqlite(self):
        assert resolve_backend("sqlite", "/tmp/facts.db").path == "/tmp/facts.db"
        for name in ("memory", "columnar"):
            with pytest.raises(ValueError, match="database path"):
                resolve_backend(name, "/tmp/facts.db")

    def test_allowed_subset_with_hint(self):
        with pytest.raises(ValueError, match="chase_into_store"):
            resolve_backend(
                "sqlite",
                allowed=("memory", "columnar"),
                hint="a SQLite-backed chase runs through chase_into_store",
            )

    def test_open_dispatches(self):
        assert isinstance(resolve_backend("memory").open(), MemoryStore)
        assert isinstance(resolve_backend("columnar").open(), ColumnarStore)
        with resolve_backend("sqlite").open() as store:
            assert isinstance(store, SQLiteStore)

    def test_chase_rejects_sqlite(self):
        theory = parse_theory("P(x) -> Q(x)")
        with pytest.raises(ValueError, match="chase_into_store"):
            chase(theory, parse_instance("P('a')"), backend="sqlite")

    def test_answer_rejects_unknown(self):
        theory = parse_theory("P(x) -> Q(x)")
        with pytest.raises(ValueError, match="backend"):
            answer(
                theory,
                parse_query("q(x) := Q(x)"),
                parse_instance("P('a')"),
                backend="postgres",
            )


class TestColumnarQueryEvaluation:
    THEORY = "Trusted(x) -> Admitted(x)\nAdmitted(x), Sponsor(x, y) -> Vouched(y)"
    INSTANCE = "Trusted('a'), Sponsor('a','b'), Admitted('c')"

    def test_ucq_matches_object_evaluation(self):
        theory = parse_theory(self.THEORY)
        instance = parse_instance(self.INSTANCE)
        result = rewrite(theory, parse_query("q(v) := Vouched(v)"))
        assert result.complete
        with ColumnarStore(instance) as store:
            columnar = evaluate_ucq_columnar(result.ucq, store)
        assert columnar == evaluate_ucq(result.ucq, instance)

    def test_boolean_query(self):
        instance = parse_instance(self.INSTANCE)
        cq = parse_query("q() := Trusted(x), Sponsor(x, y)")
        with ColumnarStore(instance) as store:
            assert evaluate_ucq_columnar(cq, store) == {()}
            absent = parse_query("q() := Sponsor(x, x)")
            assert evaluate_ucq_columnar(absent, store) == set()

    def test_unknown_constant_short_circuits(self):
        # A query constant the store never interned cannot match.
        with ColumnarStore(parse_instance("P('a')")) as store:
            query = parse_query("q(x) := P(x), Q('ghost')")
            assert evaluate_ucq_columnar(query, store) == set()

    def test_answer_backend_equivalence_complete(self):
        theory = parse_theory(self.THEORY)
        instance = parse_instance(self.INSTANCE)
        query = parse_query("q(v) := Admitted(v)")
        expected = answer(theory, query, instance, backend="memory")
        assert answer(theory, query, instance, backend="columnar") == expected
        assert answer(theory, query, instance, backend="sqlite") == expected

    def test_answer_backend_equivalence_incomplete(self):
        # Cut the rewriting short so the columnar route exercises its
        # materialize-then-evaluate fallback.
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        instance = parse_instance("E('a','b'), E('b','c'), E('c','d')")
        query = parse_query("q(x, z) := E(x, z)")
        budget = RewritingBudget(max_steps=1)
        assert not rewrite(theory, query, budget).complete
        expected = answer(theory, query, instance, backend="memory", budget=budget)
        got = answer(theory, query, instance, backend="columnar", budget=budget)
        assert got == expected


class TestSessionColumnarStrategy:
    def test_strategy_matches_rewrite(self):
        theory = parse_theory("Trusted(x) -> Admitted(x)")
        instance = parse_instance("Trusted('a'), Admitted('b')")
        query = parse_query("q(v) := Admitted(v)")
        session = OMQASession(theory)
        assert session.answer(query, instance, strategy="columnar") == session.answer(
            query, instance, strategy="rewrite"
        )

    def test_store_cached_by_content(self):
        theory = parse_theory("Trusted(x) -> Admitted(x)")
        instance = parse_instance("Trusted('a')")
        query = parse_query("q(v) := Admitted(v)")
        session = OMQASession(theory)
        session.answer(query, instance, strategy="columnar")
        session.answer(query, instance, strategy="columnar")
        info = session.cache_info()["columnar"]
        assert info == {"hits": 1, "misses": 1, "entries": 1}
        # A different instance reloads (miss), same content hits again.
        session.answer(query, parse_instance("Trusted('b')"), strategy="columnar")
        assert session.cache_info()["columnar"]["misses"] == 2

    def test_strategy_falls_back_to_materialization(self):
        theory = parse_theory("E(x,y), E(y,z) -> E(x,z)")
        instance = parse_instance("E('a','b'), E('b','c'), E('c','d')")
        query = parse_query("q(x, z) := E(x, z)")
        session = OMQASession(
            theory, rewriting_budget=RewritingBudget(max_steps=1)
        )
        assert not session.prepare(query).complete
        columnar = session.answer(query, instance, strategy="columnar")
        materialized = session.answer(query, instance, strategy="materialize")
        assert columnar == materialized
        assert session.cache_info()["chase"]["entries"] == 1
