"""Unit tests for the storage subsystem (repro.storage).

Covers the :class:`FactStore` contract on both backends, content
digests, the id-native bulk-insert path, SQL compilation of UCQ
rewritings, and the store-backed chase's error surface.  End-to-end
equivalence properties live in ``test_storage_equivalence.py``;
checkpoint/resume exactness in ``test_storage_checkpoint.py``.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.logic import parse_instance, parse_query, parse_theory
from repro.logic.query import UnionOfCQs
from repro.logic.containment import evaluate_ucq
from repro.logic.homomorphism import evaluate
from repro.storage import (
    ColumnarStore,
    MemoryStore,
    SQLiteStore,
    StoreChaseError,
    chase_into_store,
    compile_ucq,
    content_digest,
    evaluate_ucq_sql,
    execute_compiled,
    open_store,
)
from repro.workloads import edge_cycle, edge_path, example42_tc

BACKENDS = [MemoryStore, ColumnarStore, lambda: SQLiteStore(":memory:")]
BACKEND_IDS = ["memory", "columnar", "sqlite"]


@pytest.fixture(params=BACKENDS, ids=BACKEND_IDS)
def store(request):
    with request.param() as handle:
        yield handle


class TestFactStoreContract:
    def test_add_and_contains(self, store):
        facts = parse_instance("E(a, b). E(b, c). P(a)")
        assert store.add_many(facts) == 3
        assert len(store) == 3
        for atom in facts:
            assert atom in store
        assert parse_instance("E(c, a)").atoms().__iter__().__next__() not in store

    def test_add_is_idempotent(self, store):
        atom = parse_instance("E(a, b)").atoms().__iter__().__next__()
        assert store.add(atom) is True
        assert store.add(atom) is False
        assert len(store) == 1

    def test_round_tags(self, store):
        base = parse_instance("E(a, b)")
        derived = parse_instance("R(a, b)")
        store.add_many(base, round_=0)
        store.add_many(derived, round_=1)
        assert store.max_round() == 1
        assert store.atoms_in_round(0) == base.atoms()
        assert store.atoms_in_round(1) == derived.atoms()
        assert store.count_in_round(1) == 1

    def test_iteration_and_facts(self, store):
        facts = parse_instance("E(a, b). E(b, c). P(a)")
        store.add_many(facts)
        assert set(store) == facts.atoms()
        edges = {atom for atom in store.facts(next(iter(facts)).predicate.name)}
        assert all(atom.predicate.name == next(iter(facts)).predicate.name for atom in edges)

    def test_to_instance_round_trip(self, store):
        facts = edge_path(4)
        store.add_many(facts)
        assert store.to_instance() == facts

    def test_digest_matches_instance_digest(self, store):
        facts = edge_cycle(5)
        store.add_many(facts)
        assert store.digest() == content_digest(facts)

    def test_digest_is_order_independent(self):
        facts = list(parse_instance("E(a, b). E(b, c). P(a)"))
        with SQLiteStore(":memory:") as forward, SQLiteStore(":memory:") as backward:
            forward.add_many(facts)
            backward.add_many(reversed(facts))
            assert forward.digest() == backward.digest()

    def test_meta_round_trip(self, store):
        assert store.get_meta("missing") is None
        store.set_meta("k", "v")
        assert store.get_meta("k") == "v"


class TestOpenStore:
    def test_no_path_means_memory(self):
        with open_store() as handle:
            assert isinstance(handle, MemoryStore)
            assert handle.backend == "memory"

    def test_path_means_sqlite(self, tmp_path):
        path = tmp_path / "facts.db"
        with open_store(str(path)) as handle:
            assert handle.backend == "sqlite"
            handle.add_many(edge_path(3))
        assert path.exists()
        with open_store(str(path)) as handle:
            assert len(handle) == 3


class TestSQLiteStore:
    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "facts.db")
        facts = edge_cycle(6)
        with SQLiteStore(path) as writer:
            writer.add_many(facts)
            digest = writer.digest()
        with SQLiteStore(path) as reader:
            assert reader.to_instance() == facts
            assert reader.digest() == digest

    def test_buffered_writes_flush(self):
        with SQLiteStore(":memory:", batch_size=4) as handle:
            for atom in edge_path(10):
                handle.buffer(atom)
            handle.flush()
            assert len(handle) == 10
            assert handle.stats.counters["store.batches"] >= 2

    def test_insert_rows_counts_new_only(self):
        from repro.logic.signature import Predicate
        from repro.logic.terms import Constant

        edge = Predicate("E", 2)
        with SQLiteStore(":memory:") as handle:
            ids = [handle.intern_term(Constant(name)) for name in ("a", "b", "c")]
            rows = [(ids[0], ids[1]), (ids[1], ids[2])]
            assert handle.insert_rows(edge, rows, round_=1) == 2
            assert handle.insert_rows(edge, rows, round_=2) == 0
            assert len(handle) == 2
            assert handle.max_round() == 1

    def test_clear_facts_keeps_terms(self):
        with SQLiteStore(":memory:") as handle:
            handle.add_many(edge_path(3))
            before = handle.stats.counters["store.terms_interned"]
            handle.clear_facts()
            assert len(handle) == 0
            handle.add_many(edge_path(3))
            assert handle.stats.counters["store.terms_interned"] == before

    def test_arity_zero_predicate(self):
        with SQLiteStore(":memory:") as handle:
            fact = parse_instance("Started()").atoms().__iter__().__next__()
            assert handle.add(fact) is True
            assert handle.add(fact) is False
            assert fact in handle
            assert set(handle) == {fact}

    def test_telemetry_counters_move(self):
        with SQLiteStore(":memory:") as handle:
            handle.add_many(edge_path(5))
            list(handle)
            counters = handle.stats.counters
            assert counters["store.writes"] == 5
            assert counters["store.terms_interned"] == 6
            assert counters["store.rows_scanned"] >= 5
            assert counters["store.sql_queries"] >= 1

    def test_wal_and_rollback_journal_digests_identical(self, tmp_path):
        facts = edge_cycle(6)
        with SQLiteStore(str(tmp_path / "wal.db"), wal=True) as wal_store:
            wal_store.add_many(facts)
            wal_digest = wal_store.digest()
            assert wal_store.journal_mode == "wal"
            assert wal_store.stats.counters["store.wal_opens"] == 1
        with SQLiteStore(str(tmp_path / "rollback.db"), wal=False) as plain:
            plain.add_many(facts)
            assert plain.digest() == wal_digest == content_digest(facts)
            assert plain.journal_mode == "delete"
            assert plain.stats.counters["store.rollback_opens"] == 1

    def test_memory_database_reports_granted_mode(self):
        # SQLite refuses WAL for :memory: databases; the attribute must
        # report what was granted, never what was asked for.
        with SQLiteStore(":memory:", wal=True) as handle:
            assert handle.journal_mode == "memory"
            assert handle.stats.counters["store.rollback_opens"] == 1

    def test_reload_catalog_sees_writer_tables(self, tmp_path):
        path = str(tmp_path / "shared.db")
        with SQLiteStore(path) as writer, SQLiteStore(path) as reader:
            writer.add_many(parse_instance("E(a, b)"))
            assert len(reader.predicates()) == 0  # stale catalog cache
            reader.reload_catalog()
            assert {p.name for p in reader.predicates()} == {"E"}
            assert reader.digest() == writer.digest()


class TestSqlCompile:
    def test_compiled_cq_matches_memory(self):
        query = parse_query("q(x, y) := exists z. E(x, z), E(z, y)")
        facts = edge_path(5)
        with SQLiteStore(":memory:") as handle:
            handle.add_many(facts)
            assert evaluate_ucq_sql(query, handle) == evaluate(query, facts)

    def test_constants_and_repeated_variables(self):
        query = parse_query("q(y) := E('a0', y), E(y, y)")
        facts = parse_instance("E(a0, a0). E(a0, b). E(b, c)")
        with SQLiteStore(":memory:") as handle:
            handle.add_many(facts)
            assert evaluate_ucq_sql(query, handle) == evaluate(query, facts)

    def test_ucq_union_deduplicates(self):
        disjuncts = UnionOfCQs(
            [
                parse_query("q(x) := P(x)"),
                parse_query("q(x) := exists y. E(x, y)"),
            ]
        )
        facts = parse_instance("P(a). E(a, b). E(b, c)")
        with SQLiteStore(":memory:") as handle:
            handle.add_many(facts)
            compiled = compile_ucq(disjuncts, handle)
            answers = execute_compiled(compiled, handle)
            assert answers == evaluate_ucq(disjuncts, facts)

    def test_unknown_predicate_prunes_disjunct(self):
        disjuncts = UnionOfCQs(
            [
                parse_query("q(x) := Missing(x)"),
                parse_query("q(x) := P(x)"),
            ]
        )
        facts = parse_instance("P(a)")
        with SQLiteStore(":memory:") as handle:
            handle.add_many(facts)
            compiled = compile_ucq(disjuncts, handle)
            assert execute_compiled(compiled, handle) == evaluate_ucq(disjuncts, facts)

    def test_boolean_query_short_circuits(self):
        query = parse_query("q() := exists x, y. E(x, y)")
        with SQLiteStore(":memory:") as handle:
            handle.add_many(parse_instance("E(a, b)"))
            assert evaluate_ucq_sql(query, handle) == {()}
        with SQLiteStore(":memory:") as handle:
            handle.add_many(parse_instance("P(a)"))
            assert evaluate_ucq_sql(query, handle) == set()


class TestStoreChase:
    def test_rejects_dirty_store_without_state(self):
        with SQLiteStore(":memory:") as handle:
            handle.add_many(edge_path(2))
            with pytest.raises(StoreChaseError):
                chase_into_store(example42_tc(), edge_path(2), handle)

    def test_rejects_theory_mismatch_on_resume(self):
        theory = example42_tc()
        other = parse_theory("E(x, y) -> R(x, y)", name="other")
        with SQLiteStore(":memory:") as handle:
            chase_into_store(
                theory, edge_cycle(3), handle, budget=ChaseBudget(max_rounds=1)
            )
            with pytest.raises(StoreChaseError):
                chase_into_store(other, None, handle)

    def test_rejects_base_on_resume(self):
        theory = example42_tc()
        with SQLiteStore(":memory:") as handle:
            chase_into_store(
                theory, edge_cycle(3), handle, budget=ChaseBudget(max_rounds=1)
            )
            with pytest.raises(StoreChaseError):
                chase_into_store(theory, edge_cycle(3), handle)

    def test_rejects_universal_head_variables(self):
        # T_d-style rules with fresh universal head variables have no
        # Skolem reading; the store chase must refuse, not guess.
        theory = parse_theory("P(x) -> Q(x, y)", name="universal-head")
        with SQLiteStore(":memory:") as handle:
            with pytest.raises(StoreChaseError):
                chase_into_store(theory, parse_instance("P(a)"), handle)

    def test_unsupported_theory_leaves_store_untouched(self):
        # The refusal must fire before any facts or storechase.* meta
        # land in the store, so a caller falling back to the in-memory
        # engine (the CLI's checkpoint path) finds a clean database and
        # a later checkpoint --resume is not hijacked by stale state.
        theory = parse_theory("P(x) -> Q(x, y)", name="universal-head")
        with SQLiteStore(":memory:") as handle:
            with pytest.raises(StoreChaseError):
                chase_into_store(theory, parse_instance("P(a)"), handle)
            assert len(handle) == 0
            assert handle.get_meta("storechase.schema") is None
            assert handle.get_meta("storechase.theory") is None

    def test_max_atoms_raise(self):
        theory = example42_tc()
        budget = ChaseBudget(max_rounds=50, max_atoms=10, on_exceeded="raise")
        with SQLiteStore(":memory:") as handle:
            with pytest.raises(Exception):
                chase_into_store(theory, edge_cycle(6), handle, budget=budget)

    def test_matches_in_memory_chase(self):
        theory = example42_tc()
        cycle = edge_cycle(5)
        budget = ChaseBudget(max_rounds=4, max_atoms=100_000)
        reference = chase(theory, cycle, budget=budget)
        with SQLiteStore(":memory:") as handle:
            outcome = chase_into_store(theory, cycle, handle, budget=budget)
            assert outcome.digest() == content_digest(reference.instance)
            for round_ in range(outcome.rounds_run + 1):
                assert handle.atoms_in_round(round_) == reference.round_added[round_]
