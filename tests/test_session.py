"""Tests for repro.rewriting.session (OMQASession, query_shape)."""

from __future__ import annotations

import pytest

from repro import OMQASession
from repro.chase import ChaseBudget
from repro.chase.engine import ChaseBudgetExceeded
from repro.logic import parse_instance, parse_query, parse_theory
from repro.rewriting import certain_answers, query_shape

TA = "Human(y) -> exists z. Mother(y, z)\nMother(x, y) -> Human(y)"
UNIVERSITY = (
    "EnrolledIn(s, c) -> Student(s)\n"
    "TaughtBy(c, p) -> Professor(p)\n"
    "Professor(p) -> Person(p)"
)


class TestQueryShape:
    def test_alpha_equivalent_queries_share_shape(self):
        left = parse_query("q(x) := exists y. Mother(x, y)")
        right = parse_query("q(u) := exists w. Mother(u, w)")
        assert query_shape(left) == query_shape(right)

    def test_different_structure_different_shape(self):
        left = parse_query("q(x) := exists y. Mother(x, y)")
        right = parse_query("q(x) := exists y. Mother(y, x)")
        assert query_shape(left) != query_shape(right)

    def test_answer_variables_renamed_first(self):
        query = parse_query("q(b, a) := R(a, b)")
        shape = query_shape(query)
        assert [v.name for v in shape.answer_vars] == ["_s0", "_s1"]


class TestRewritingCache:
    def test_alpha_equivalent_queries_hit(self):
        session = OMQASession(parse_theory(TA))
        session.prepare(parse_query("q(x) := exists y. Mother(x, y)"))
        session.prepare(parse_query("q(u) := exists w. Mother(u, w)"))
        info = session.cache_info()["rewriting"]
        assert info == {"hits": 1, "misses": 1, "entries": 1}

    def test_distinct_shapes_miss(self):
        session = OMQASession(parse_theory(TA))
        session.prepare(parse_query("q(x) := Human(x)"))
        session.prepare(parse_query("q(x) := exists y. Mother(x, y)"))
        assert session.cache_info()["rewriting"]["entries"] == 2

    def test_cache_counters_mirrored_into_stats(self):
        """Hits and misses land in session.stats, hence in --stats output."""
        session = OMQASession(parse_theory(TA))
        session.prepare(parse_query("q(x) := exists y. Mother(x, y)"))
        session.prepare(parse_query("q(u) := exists w. Mother(u, w)"))
        session.prepare(parse_query("q(x) := Human(x)"))
        counters = session.stats.counters
        assert counters["session.rewrite_cache_hits"] == 1
        assert counters["session.rewrite_cache_misses"] == 2
        info = session.cache_info()["rewriting"]
        assert counters["session.rewrite_cache_hits"] == info["hits"]
        assert counters["session.rewrite_cache_misses"] == info["misses"]


class TestChaseCache:
    def test_same_content_hits(self):
        session = OMQASession(parse_theory(UNIVERSITY))
        first = parse_instance("EnrolledIn(ann, cs1). TaughtBy(cs1, turing)")
        second = parse_instance("TaughtBy(cs1, turing). EnrolledIn(ann, cs1)")
        session.materialize(first)
        session.materialize(second)
        info = session.cache_info()["chase"]
        assert info == {"hits": 1, "misses": 1, "entries": 1}

    def test_non_terminating_materialization_raises_and_is_not_cached(self):
        session = OMQASession(
            parse_theory(TA), chase_budget=ChaseBudget(max_rounds=2)
        )
        with pytest.raises(ChaseBudgetExceeded):
            session.materialize(parse_instance("Human(abel)"))
        assert session.cache_info()["chase"]["entries"] == 0


class TestAnswering:
    def test_answers_match_certain_answers(self):
        theory = parse_theory(UNIVERSITY)
        instance = parse_instance(
            "EnrolledIn(ann, cs1). EnrolledIn(bob, cs1). TaughtBy(cs1, turing)"
        )
        query = parse_query(
            "q(s) := exists c, p. EnrolledIn(s, c), TaughtBy(c, p), Person(p)"
        )
        session = OMQASession(theory)
        assert session.answer(query, instance) == certain_answers(
            theory, query, instance
        )

    def test_materialize_strategy(self):
        theory = parse_theory(UNIVERSITY)
        instance = parse_instance("TaughtBy(cs1, turing)")
        query = parse_query("q(p) := Person(p)")
        session = OMQASession(theory)
        answers = session.answer(query, instance, strategy="materialize")
        assert answers == certain_answers(theory, query, instance)
        assert session.cache_info()["chase"]["entries"] == 1

    def test_answer_many_shares_caches(self):
        theory = parse_theory(UNIVERSITY)
        instance = parse_instance("EnrolledIn(ann, cs1). TaughtBy(cs1, turing)")
        queries = [
            parse_query("q(s) := Student(s)"),
            parse_query("q(t) := Student(t)"),  # alpha-equivalent
            parse_query("q(p) := Person(p)"),
        ]
        session = OMQASession(theory)
        results = session.answer_many(queries, instance)
        assert results[0] == results[1]
        assert session.cache_info()["rewriting"]["hits"] >= 1

    def test_invalid_strategy_rejected(self):
        session = OMQASession(parse_theory(TA))
        with pytest.raises(ValueError):
            session.answer(
                parse_query("q(x) := Human(x)"), parse_instance("Human(a)"), "guess"
            )

    def test_stats_aggregate_across_runs(self):
        session = OMQASession(parse_theory(UNIVERSITY))
        instance = parse_instance("TaughtBy(cs1, turing)")
        session.answer(parse_query("q(p) := Person(p)"), instance)
        assert session.stats.counters["rewrite.steps"] >= 1

    def test_clear_drops_entries_keeps_stats(self):
        session = OMQASession(parse_theory(UNIVERSITY))
        session.prepare(parse_query("q(s) := Student(s)"))
        counter_snapshot = dict(session.stats.counters)
        session.clear()
        assert session.cache_info()["rewriting"]["entries"] == 0
        assert dict(session.stats.counters) == counter_snapshot


def _fact(text):
    return next(iter(parse_instance(text)))


class TestLiveUpdates:
    def test_add_facts_seeds_cache_without_rechase(self):
        session = OMQASession(parse_theory(UNIVERSITY))
        instance = parse_instance("EnrolledIn(ann, cs1). TaughtBy(cs1, turing)")
        session.materialize(instance)
        new_fact = _fact("EnrolledIn(bob, cs1)")
        updated = session.add_facts(instance, [new_fact])
        assert new_fact in updated and new_fact not in instance
        assert session.cache_info()["chase"]["entries"] == 2
        session.materialize(updated)  # served from the maintained cache
        assert session.cache_info()["chase"] == {
            "hits": 1,
            "misses": 1,
            "entries": 2,
        }

    def test_answers_after_updates_match_fresh_session(self):
        theory = parse_theory(UNIVERSITY)
        query = parse_query("q(p) := Person(p)")
        instance = parse_instance("TaughtBy(cs1, turing). TaughtBy(cs2, hopper)")
        session = OMQASession(theory)
        session.answer(query, instance, strategy="materialize")
        updated = session.add_facts(instance, [_fact("TaughtBy(cs3, curie)")])
        updated = session.retract_facts(updated, [_fact("TaughtBy(cs1, turing)")])
        live = session.answer(query, updated, strategy="materialize")
        fresh = OMQASession(theory).answer(query, updated, strategy="materialize")
        assert live == fresh
        assert session.cache_info()["chase"]["hits"] >= 1

    def test_mutate_then_restore_hits_cache(self):
        # Satellite pin: cache keys are content-based, so updating an
        # instance and undoing the update lands back on the original
        # cache entry instead of re-chasing.
        session = OMQASession(parse_theory(UNIVERSITY))
        instance = parse_instance("EnrolledIn(ann, cs1). TaughtBy(cs1, turing)")
        session.materialize(instance)
        new_fact = _fact("EnrolledIn(bob, cs1)")
        updated = session.add_facts(instance, [new_fact])
        restored = session.retract_facts(updated, [new_fact])
        assert restored.atoms() == instance.atoms()
        session.materialize(restored)
        info = session.cache_info()["chase"]
        assert info["hits"] == 1 and info["misses"] == 1

    def test_chase_cache_counters_mirrored_into_stats(self):
        session = OMQASession(parse_theory(UNIVERSITY))
        instance = parse_instance("TaughtBy(cs1, turing)")
        session.materialize(instance)
        session.materialize(parse_instance("TaughtBy(cs1, turing)"))
        counters = session.stats.counters
        assert counters["session.chase_cache_hits"] == 1
        assert counters["session.chase_cache_misses"] == 1
        info = session.cache_info()["chase"]
        assert counters["session.chase_cache_hits"] == info["hits"]
        assert counters["session.chase_cache_misses"] == info["misses"]

    def test_updates_merge_delta_counters(self):
        session = OMQASession(parse_theory(UNIVERSITY))
        instance = parse_instance("EnrolledIn(ann, cs1). TaughtBy(cs1, turing)")
        session.materialize(instance)
        session.add_facts(instance, [_fact("EnrolledIn(bob, cs1)")])
        assert session.stats.counters["delta.updates"] == 1
        assert session.stats.counters["delta.added_base"] == 1


class TestThreadSafety:
    """Satellite pin: sessions survive concurrent answer() callers.

    The service (repro.service) answers requests from a threadpool over
    one shared session per theory; these tests hammer the caches from 8
    threads and require (a) every thread sees the single-threaded
    answers and (b) the rewriting compiled exactly once per shape
    (single-flight: losers of the compile race count as cache hits).
    """

    THREADS = 8
    ROUNDS = 5

    def _hammer(self, strategy):
        import threading

        theory = parse_theory(UNIVERSITY)
        instance = parse_instance(
            "EnrolledIn(ann, cs1). EnrolledIn(bob, cs2). "
            "TaughtBy(cs1, turing). TaughtBy(cs2, hopper)"
        )
        queries = [
            parse_query("q(s) := Student(s)"),
            parse_query("q(p) := Person(p)"),
            parse_query("q(s, c) := EnrolledIn(s, c)"),
        ]
        expected = [certain_answers(theory, q, instance) for q in queries]
        session = OMQASession(theory)
        failures = []
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()  # maximize contention on first-compile races
            for _ in range(self.ROUNDS):
                for query, want in zip(queries, expected):
                    got = session.answer(query, instance, strategy=strategy)
                    if got != want:
                        failures.append((strategy, query, got))

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        return session

    def test_concurrent_answer_auto(self):
        session = self._hammer("auto")
        info = session.cache_info()["rewriting"]
        # Single-flight: one compile per distinct shape, every other
        # request (including compile-race losers) is a hit.
        assert info["misses"] == 3
        assert info["entries"] == 3
        assert info["hits"] == self.THREADS * self.ROUNDS * 3 - 3

    def test_concurrent_answer_sql(self):
        session = self._hammer("sql")
        info = session.cache_info()["sql"]
        assert info["misses"] == 3 and info["entries"] == 3

    def test_concurrent_answer_columnar(self):
        session = self._hammer("columnar")
        # One load of the shared store; no thread saw a half-populated one.
        assert session.cache_info()["columnar"]["misses"] == 1
