"""Unit tests for repro.logic.gaifman."""

from __future__ import annotations

from repro.logic.atoms import atom
from repro.logic.gaifman import (
    atoms_are_connected,
    connected_components,
    distance,
    gaifman_graph,
    instance_distance,
    is_connected,
    iter_balls,
    max_degree,
    query_gaifman_graph,
)
from repro.logic.instance import Instance
from repro.logic.terms import Constant, Variable
from repro.workloads import edge_cycle, edge_path, sticky_star


class TestInstanceGraph:
    def test_path_distances(self):
        path = edge_path(4)
        assert instance_distance(path, Constant("a0"), Constant("a4")) == 4
        assert instance_distance(path, Constant("a0"), Constant("a0")) == 0

    def test_disconnected_distance_is_infinite(self):
        two = Instance([atom("E", "a", "b"), atom("E", "c", "d")])
        assert instance_distance(two, Constant("a"), Constant("d")) == float("inf")

    def test_missing_vertex_distance_is_infinite(self):
        path = edge_path(2)
        assert instance_distance(path, Constant("a0"), Constant("zz")) == float("inf")

    def test_cycle_distance_wraps(self):
        cycle = edge_cycle(6)
        assert instance_distance(cycle, Constant("a0"), Constant("a5")) == 1

    def test_higher_arity_atoms_make_cliques(self):
        instance = Instance([atom("T", "a", "b", "c")])
        graph = gaifman_graph(instance)
        assert graph[Constant("a")] == {Constant("b"), Constant("c")}

    def test_max_degree_of_star(self):
        # Example 39's witness: hub "a" neighbours b1, b2 and the colours
        # c1..c4 (c1 via both the E-fact and R(a,c1), counted once).
        star = sticky_star(4)
        assert max_degree(star) == 6

    def test_max_degree_of_cycle_is_two(self):
        assert max_degree(edge_cycle(5)) == 2


class TestComponents:
    def test_connected_components(self):
        two = Instance([atom("E", "a", "b"), atom("E", "c", "d")])
        components = connected_components(gaifman_graph(two))
        assert len(components) == 2

    def test_empty_graph_is_connected(self):
        assert is_connected({})

    def test_iter_balls(self):
        path = edge_path(5)
        graph = gaifman_graph(path)
        ball = set(iter_balls(graph, Constant("a0"), 2))
        assert ball == {Constant("a0"), Constant("a1"), Constant("a2")}


class TestQueryGraph:
    def test_variables_are_vertices(self):
        x, y = Variable("x"), Variable("y")
        graph = query_gaifman_graph([atom("E", x, y)])
        assert graph[x] == {y}

    def test_constants_are_not_vertices(self):
        x = Variable("x")
        graph = query_gaifman_graph([atom("E", x, "a")])
        assert Constant("a") not in graph

    def test_connectivity_through_shared_variable(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        assert atoms_are_connected([atom("E", x, y), atom("E", y, z)])
        assert not atoms_are_connected([atom("E", x, y), atom("P", z)])

    def test_single_atom_is_connected(self):
        assert atoms_are_connected([atom("P", "a")])

    def test_ground_atom_alongside_others_disconnects(self):
        x = Variable("x")
        assert not atoms_are_connected([atom("P", x), atom("Q", "a")])

    def test_empty_atom_set_is_connected(self):
        assert atoms_are_connected([])

    def test_distance_identity(self):
        graph = {1: {2}, 2: {1}}
        assert distance(graph, 1, 1) == 0
        assert distance(graph, 1, 2) == 1
