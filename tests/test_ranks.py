"""Tests for R-paths, elevation/cost and erk/qrk (Definitions 59-62)."""

from __future__ import annotations

import pytest

from repro.frontier import MarkedQuery, hike_costs, qrk
from repro.frontier.process import run_process
from repro.frontier.ranks import erk
from repro.frontier.td import phi_r_n
from repro.logic.atoms import atom
from repro.logic.terms import Variable

X, Y, Z, W = (Variable(n) for n in "xyzw")


def mq(atoms, marked, answers=()):
    return MarkedQuery(tuple(answers), tuple(atoms), frozenset(marked))


class TestHandComputedRanks:
    def test_single_green_edge_from_marked_source(self):
        """No red atoms: elevation is 3^0 = 1, one green step costs 1."""
        query = mq([atom("G", X, Y)], {X})
        assert erk(query, atom("G", X, Y)) == 1

    def test_green_edge_behind_forward_red(self):
        """|Q_R| = 1: base elevation 3; crossing the red first lifts the
        elevation to 9, so the green step costs 9... unless the hike can
        start at a marked variable past the red edge."""
        query = mq([atom("R", X, Y), atom("G", Y, Z)], {X})
        assert erk(query, atom("G", Y, Z)) == 9

    def test_green_edge_behind_backward_red(self):
        """Walking the red edge backwards divides the elevation by 3."""
        query = mq([atom("R", Y, X), atom("G", Y, Z)], {X})
        assert erk(query, atom("G", Y, Z)) == 1  # 3^1 / 3 = 1

    def test_marked_variable_adjacent_to_green_wins(self):
        query = mq(
            [atom("R", X, Y), atom("G", Y, Z), atom("G", X, W)], {X}
        )
        # G(x, w) starts right at the marked variable: cost = elevation 3.
        assert erk(query, atom("G", X, W)) == 3
        # G(y, z) needs the red climb: cost 9.
        assert erk(query, atom("G", Y, Z)) == 9

    def test_unreachable_green_atom_is_infinite(self):
        query = mq([atom("G", X, Y), atom("G", Z, W)], {X})
        costs = hike_costs(query)
        assert costs[atom("G", X, Y)] == 3 ** 0
        assert costs[atom("G", Z, W)] == float("inf")

    def test_red_atom_used_at_most_once(self):
        """A hike cannot bounce over the same red edge to pump elevation
        down: (*) of Definition 59."""
        query = mq([atom("R", Y, X), atom("G", Y, Z)], {X})
        # The only route is backward over R once: 3/3 = 1; re-crossing is
        # forbidden so no cheaper (or different) cost exists.
        assert hike_costs(query)[atom("G", Y, Z)] == 1

    def test_qrk_components(self):
        query = mq([atom("R", X, Y), atom("G", Y, Z)], {X})
        red_count, costs = qrk(query)
        assert red_count == 1
        assert sorted(costs.elements()) == [9]


class TestLemma53OnRealRuns:
    @pytest.mark.parametrize("depth", [1, 2])
    def test_process_ranks_strictly_decrease(self, depth):
        """Machine-check Lemma 53: every operation output ranks strictly
        below its input in <_R."""
        result = run_process(phi_r_n(depth), check_ranks=True)
        assert result.rank_violations == []

    def test_reduce_decreases_green_rank(self):
        """Definition 58's replacement lowers the erk of the new greens
        below the removed one (claim (iv)(b))."""
        from repro.frontier.operations import find_maximal_variable, reduce_step
        from repro.logic.terms import FreshVariables

        query = mq([atom("R", X, Z), atom("G", Y, Z)], {X, Y})
        removed_rank = erk(query, atom("G", Y, Z))
        maximal = find_maximal_variable(query)
        produced = reduce_step(query, maximal, FreshVariables())[2]  # fully marked
        new_greens = produced.atoms_of("G")
        for green in new_greens:
            assert erk(produced, green) < removed_rank
