"""Tests for the Appendix-A normalization (Theorem 3's machinery)."""

from __future__ import annotations

import pytest

from repro.chase import ChaseBudget, chase
from repro.frontier import (
    NormalizationError,
    crucial_lemma_check,
    detached_terms,
    existential_atoms,
    lemma70_check,
    normalize,
    sensible_forest,
    tree_ancestor_sizes,
)
from repro.logic import parse_instance, parse_theory
from repro.workloads import example66, example66_instance, t_a, t_p


class TestScope:
    def test_non_binary_rejected(self):
        wide = parse_theory("T(x, y, z) -> exists w. P(w)")
        with pytest.raises(NormalizationError):
            normalize(wide)

    def test_multi_head_rejected(self):
        from repro.workloads import t_d

        with pytest.raises(NormalizationError):
            normalize(t_d())

    def test_linear_theory_normalizes(self):
        nf = normalize(t_p())
        assert len(nf.normalized) >= 1
        assert nf.constants.bound > 0


class TestExample66:
    def test_separated_rule_encapsulates_p_facts(self):
        """The disconnected P(z) dependency becomes a nullary marker."""
        nf = normalize(example66())
        marker_rules = [
            rule
            for rule in nf.normalized
            if rule.head[0].predicate.name.startswith("M_")
            and rule.body
            and rule.body[0].predicate.name == "P"
        ]
        assert marker_rules, "no M_phi producer rewritten down to P(z)"

    def test_lemma_70_chases_agree(self):
        nf = normalize(example66())
        base = example66_instance(3)
        assert lemma70_check(nf, base, depth=4)

    def test_lemma_70_on_other_instances(self):
        nf = normalize(example66())
        base = parse_instance("E(a, b). E(b, c). P(p1). R(p1, b)")
        assert lemma70_check(nf, base, depth=3)

    @pytest.mark.parametrize("spokes", [2, 4])
    def test_crucial_lemma_bound_holds(self, spokes):
        nf = normalize(example66())
        observed, bound = crucial_lemma_check(
            nf, example66_instance(spokes), depth=5
        )
        assert observed <= bound

    def test_normalized_ancestry_does_not_grow_with_spokes(self):
        """The Crucial Lemma's point: after normalization the per-tree
        connected ancestry is flat in the instance size."""
        nf = normalize(example66())
        observed = [
            crucial_lemma_check(nf, example66_instance(spokes), depth=5)[0]
            for spokes in (2, 3, 5)
        ]
        assert observed[0] == observed[1] == observed[2]


class TestTaxonomy:
    def test_detached_terms_found(self):
        theory = parse_theory("P(x) -> exists y, z. E(y, z)")
        run = chase(theory, parse_instance("P(a)"), budget=ChaseBudget(max_rounds=3, max_atoms=10_000))
        found = detached_terms(run)
        assert len(found) == 2

    def test_sensible_forest_roots(self):
        run = chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=3))
        forest = sensible_forest(run)
        from repro.logic.terms import Constant

        assert Constant("abel") in forest
        assert forest[Constant("abel")]  # the mother chain hangs below abel

    def test_forest_trees_partition_sensible_atoms(self):
        run = chase(t_a(), parse_instance("Human(a). Human(b)"), budget=ChaseBudget(max_rounds=3))
        forest = sensible_forest(run)
        total = sum(len(atoms) for atoms in forest.values())
        sensible = [
            item
            for item, d in run.derivations.items()
            if not d.rule.is_datalog() and not d.rule.is_detached()
        ]
        assert total == len(sensible)

    def test_existential_atoms_exclude_datalog_products(self):
        run = chase(t_a(), parse_instance("Human(abel)"), budget=ChaseBudget(max_rounds=3))
        exist = existential_atoms(run)
        datalog_products = [
            item
            for item, d in run.derivations.items()
            if d.rule.is_datalog()
        ]
        assert all(item not in exist for item in datalog_products)


class TestConstants:
    def test_bound_formula(self):
        nf = normalize(example66())
        constants = nf.constants
        assert constants.bound == (
            constants.tree_budget * constants.max_body
            + constants.nullary_count * constants.max_body
        )
