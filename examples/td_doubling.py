#!/usr/bin/env python3
"""Theorem 5 end-to-end: the five-operation process and the Figure-1 grid.

Builds phi_R^n, runs the marked-query process of Sections 10-11 (with the
Lemma-53 rank certificate switched on), prints the exponential disjunct,
and renders the doubling triangle of Figure 1 over G^8.

Run:  python examples/td_doubling.py [n]    (default n = 2, try 3)
"""

import sys

from repro.frontier.process import run_process
from repro.frontier.td import (
    figure1_apex_counts,
    g_path_query,
    phi_r_n,
    render_figure1,
)
from repro.logic.containment import are_equivalent


def main(depth: int) -> None:
    query = phi_r_n(depth)
    print(f"phi_R^{depth} =", query)
    print(f"  size {query.size} — Theorem 5(B) promises a disjunct of "
          f"size {2 ** depth} in its rewriting.\n")

    result = run_process(query, check_ranks=(depth <= 2), collect_records=True)
    rewriting = result.rewriting()
    print(f"Process finished in {result.steps} steps; "
          f"{len(rewriting)} minimal disjuncts.")
    if depth <= 2:
        print(f"Lemma-53 rank certificate: "
              f"{'CLEAN' if not result.rank_violations else 'VIOLATED'} "
              f"({len(result.records)} operations re-checked).")

    operations = {}
    for record in result.records:
        operations[record.operation] = operations.get(record.operation, 0) + 1
    print("Operation counts:", dict(sorted(operations.items())))

    target = g_path_query(2 ** depth)
    exponential = [d for d in rewriting if are_equivalent(d, target)]
    print(f"\nThe exponential disjunct G^{2 ** depth}:")
    print("  ", exponential[0] if exponential else "NOT FOUND (bug!)")

    sizes = sorted(d.size for d in rewriting)
    print(f"\nAll disjunct sizes: {sizes}")

    print(f"\n{render_figure1(8, 6)}")
    print("\nThe doubling triangle, quantified (level k spans windows of "
          "width 2^k):")
    for level, satisfied, expected in figure1_apex_counts(3):
        bar = "#" * satisfied
        print(f"  level {level}: {satisfied:>2}/{expected:<2} windows  {bar}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
