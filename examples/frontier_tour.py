#!/usr/bin/env python3
"""A guided tour of the paper's counterexamples, each checked live.

Stops on the tour (all claims are re-verified by running the actual
machinery, not asserted from memory):

1. Exercise 12/22 — T_p is BDD (linear) but not Core Terminating.
2. Exercise 23   — Core Terminating but not All-Instances Terminating,
                    with a *uniform* bound c_T (Theorem 4 in action).
3. Example 28    — finite slices of the infinite counterexample: the
                    bound grows with the slice, killing uniformity.
4. Example 39    — a sticky (BDD) theory that is not local.
5. Example 41    — bounded-degree local but not BDD.
6. Example 42    — T_c: BDD but not even bd-local (cycles of degree 2).
7. Definition 45 — T_d: BDD but not distancing; rewritings double.

Run:  python examples/frontier_tour.py
"""

from repro.chase import all_instances_termination, core_termination
from repro.frontier import (
    check_theorem_5b,
    distance_contraction,
    doubling_witness,
    locality_defect,
    min_support_size,
    uniform_bound_profile,
)
from repro.frontier.process import run_process
from repro.frontier.td import g_path_query, phi_r_n
from repro.logic import parse_instance, parse_query
from repro.logic.containment import are_equivalent
from repro.rewriting import RewritingBudget, probe_bdd, rewrite
from repro.workloads import (
    edge_cycle,
    edge_path,
    example28_slice,
    example39_sticky,
    example41,
    example42_tc,
    exercise23,
    sticky_star,
    t_d,
    t_p,
)


def stop(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    stop("1. Exercise 12/22: T_p = {E(x,y) -> exists z. E(y,z)}")
    verdict = probe_bdd(t_p(), parse_query("q(x) := exists y. E(x, y)"))
    print("BDD certified by rewriting saturation:", verdict.certified_bdd)
    witness = core_termination(t_p(), parse_instance("E(a, b)"), max_depth=6)
    print("Core-Termination witness within depth 6:", witness, "(none: not FES)")

    stop("2. Exercise 23: add E(x,x1),E(x1,x2) -> E(x1,x1)")
    theory = exercise23()
    ait = all_instances_termination(theory, edge_path(2), max_rounds=8)
    print("Skolem-chase fixpoint within 8 rounds:", ait, "(none: not AIT)")
    profile = uniform_bound_profile(
        theory, [edge_path(n) for n in (2, 3, 5, 7)] + [edge_cycle(4)]
    )
    print("c_{T,D} per instance:", profile.bounds,
          "-> uniform bound c_T =", profile.uniform_bound,
          "(flat: the FUS/FES conjecture holds here, Theorem 4)")

    stop("3. Example 28: slices of the infinite counterexample")
    for level in (1, 2, 3, 4):
        theory = example28_slice(level)
        base = parse_instance(f"E{level}(a, b)")
        bound = uniform_bound_profile(theory, [base]).bounds[0]
        print(f"  slice K={level}: c = {bound}")
    print("The bound tracks the slice level: no uniform c_T for the union.")

    stop("4. Example 39: sticky, BDD, but NOT local")
    theory = example39_sticky()
    for spokes in (2, 3):
        defect = locality_defect(theory, sticky_star(spokes), bound=spokes, depth=spokes)
        print(f"  star with {spokes} colours: {len(defect.missing)} chase atoms "
              f"need more than {spokes} base facts")
    star = sticky_star(3)
    from repro.chase import ChaseBudget, chase
    run = chase(theory, star, budget=ChaseBudget(max_rounds=3, max_atoms=100_000))
    worst_atom, worst_support = None, 0
    for deep in sorted(run.round_added[3], key=repr):
        support = min_support_size(theory, star, deep, depth=4) or 0
        if support > worst_support:
            worst_atom, worst_support = deep, support
    print(f"  worst atom needs {worst_support} of {len(star)} base facts:")
    print("   ", worst_atom)

    stop("5. Example 41: bd-local but NOT BDD")
    result = rewrite(
        example41(),
        parse_query("q(x, z) := R(x, z)"),
        RewritingBudget(max_kept=40, max_steps=4_000),
    )
    print("Rewriting saturation within budget:", result.complete,
          f"({len(result.ucq)} disjuncts kept before giving up)")

    stop("6. Example 42: T_c is BDD but not bd-local")
    for length in (3, 4, 5):
        defect = locality_defect(
            example42_tc(), edge_cycle(length), bound=length - 1, depth=length
        )
        print(f"  {length}-cycle (degree 2): {len(defect.missing)} atoms need "
              f"all {length} edges")

    stop("7. Definition 45: T_d — BDD but not distancing")
    for n in (1, 2):
        check = check_theorem_5b(n, max_atoms=600_000)
        print(f"  n={n}: Ch(T_d, G^{check.path_length}) |= phi_R^{n}: "
              f"{check.positive} (round {check.chase_rounds}); "
              f"proper subsets fail: {check.subsets_fail}")
    for n in (1, 2):
        process = run_process(phi_r_n(n))
        target = g_path_query(2 ** n)
        found = any(are_equivalent(d, target) for d in process.rewriting())
        print(f"  rew(phi_R^{n}) contains G^{2 ** n}: {found} "
              f"({len(process.rewriting())} disjuncts, "
              f"largest {process.rewriting().max_disjunct_size()} atoms)")
    instance, start, end = doubling_witness(2)
    pair = distance_contraction(t_d(), instance, [(start, end)], depth=6,
                                max_atoms=1_000_000)[0]
    print(f"  distance contraction on G^4: base {pair.base_distance} vs "
          f"chase {pair.chase_distance} — grows like 2^n/(2n+1) with n")

    print("\nTour complete: every claim checked against the running system.")


if __name__ == "__main__":
    main()
