#!/usr/bin/env python3
"""Appendix A walkthrough: normalizing Example 66 and bounding ancestries.

Theorem 3 says binary BDD theories are local; its proof normalizes the
theory so that "disconnected ancestors" route through nullary markers.
This script shows each step on the paper's own Example 66:

1. why the naive ancestor bound fails (some derivation of one atom cites
   every P-fact);
2. the three normalization steps (body rewriting, body separation, marker
   producers);
3. Lemma 70 — the normalized theory produces the same existential atoms;
4. the Crucial Lemma — after normalization, per-tree connected ancestries
   are bounded by a theory constant, whatever the instance.

Run:  python examples/normalization_walkthrough.py
"""

from repro.chase import ChaseBudget, chase, possible_ancestors
from repro.frontier import (
    crucial_lemma_check,
    lemma70_check,
    normalize,
    tree_possible_ancestor_sizes,
)
from repro.workloads import example66, example66_instance


def main() -> None:
    theory = example66()
    print("The Example-66 theory:")
    print(theory)

    print("\n--- 1. The problem ------------------------------------------")
    base = example66_instance(4)
    print(f"Instance: one E-edge plus 4 P-facts ({len(base)} facts).")
    run = chase(theory, base, budget=ChaseBudget(max_rounds=5, max_atoms=50_000))
    produced_e = sorted(
        (a for a in run.instance if a.predicate.name == "E" and a not in base),
        key=repr,
    )
    anc = possible_ancestors(run, produced_e[:1])
    print(f"Across all derivation choices, ONE produced E-atom can cite "
          f"{len(anc)} base facts:")
    for item in sorted(anc, key=repr):
        print("   ", item)
    print("The chase non-deterministically spreads the P-facts into the "
          "E-chain's ancestry — the naive Lemma 65 is false.")

    print("\n--- 2. The normalization ------------------------------------")
    normalized = normalize(theory)
    print(f"T_NF ({len(normalized.normalized)} rules, "
          f"{normalized.constants.nullary_count} nullary markers):")
    for rule in normalized.normalized:
        print("   ", rule)
    print("Note the P(z) dependency now lives behind a nullary M_... atom: "
          "body rewriting exposed it, body separation encapsulated it.")

    print("\n--- 3. Lemma 70 ---------------------------------------------")
    for spokes in (2, 4):
        agreed = lemma70_check(normalized, example66_instance(spokes), depth=3)
        print(f"  spokes={spokes}: existential chases agree: {agreed}")

    print("\n--- 4. The Crucial Lemma ------------------------------------")
    print(f"Theory constants: h={normalized.constants.max_body}, "
          f"k={normalized.constants.nullary_count}, "
          f"n={normalized.constants.rule_count}, "
          f"bound M = {normalized.constants.bound}")
    print(f"{'spokes':>8} | {'raw worst ancestry':>20} | {'normalized (canc)':>18}")
    for spokes in (2, 3, 4, 6):
        instance = example66_instance(spokes)
        raw = max(
            tree_possible_ancestor_sizes(theory, instance, depth=5).values(),
            default=0,
        )
        observed, bound = crucial_lemma_check(normalized, instance, depth=5)
        print(f"{spokes:>8} | {raw:>20} | {observed:>18}   (<= M = {bound})")
    print("\nRaw ancestries grow with the instance; normalized ones are flat "
          "— the heart of Theorem 3's locality proof.")


if __name__ == "__main__":
    main()
