#!/usr/bin/env python3
"""Ontology-mediated query answering over a synthetic university database.

The workload the paper's introduction motivates: an incomplete database, a
(linear, hence BDD and local) ontology filling in implied facts, and
queries answered against the implied model — either by materializing the
chase or by rewriting the query into a UCQ over the raw data.

Run:  python examples/ontology_mediated_qa.py
"""

import time

from repro.classes import classify
from repro.logic import parse_query
from repro.rewriting import (
    answer_by_materialization,
    answer_by_rewriting,
    depth_bound_from_rewriting,
    rewrite,
)
from repro.workloads import university_database, university_ontology


QUERIES = {
    "persons": "q(x) := Person(x)",
    "enrolled somewhere": "q(x) := exists c. EnrolledIn(x, c)",
    "taught by a person": (
        "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Person(p)"
    ),
    "departments exist": "q() := exists p, d. MemberOf(p, d), Department(d)",
}


def main() -> None:
    ontology = university_ontology()
    print(*classify(ontology).lines(), sep="\n")

    database = university_database(students=60, professors=12, courses=20, seed=7)
    print(f"\nDatabase: {len(database)} facts, {database.domain_size()} elements "
          "(deliberately incomplete)")

    for name, text in QUERIES.items():
        query = parse_query(text)
        started = time.perf_counter()
        rewriting = rewrite(ontology, query)
        rewrite_seconds = time.perf_counter() - started

        bound = depth_bound_from_rewriting(ontology, query)
        started = time.perf_counter()
        answers = answer_by_rewriting(ontology, query, database, prepared=rewriting)
        eval_seconds = time.perf_counter() - started

        started = time.perf_counter()
        via_chase = answer_by_materialization(ontology, query, database, depth=bound)
        chase_seconds = time.perf_counter() - started

        assert answers == via_chase
        print(f"\n[{name}]")
        print(f"  rewriting: {len(rewriting.ucq)} disjuncts "
              f"(built in {rewrite_seconds * 1000:.1f} ms), depth bound {bound}")
        print(f"  answers: {len(answers)}  "
              f"(rewrite-eval {eval_seconds * 1000:.1f} ms, "
              f"chase-eval {chase_seconds * 1000:.1f} ms)")
        sample = sorted(map(repr, answers))[:5]
        if sample:
            print(f"  sample: {', '.join(sample)}")

    print("\nEvery query agreed across both strategies — the ontology is "
          "linear, so rewriting is complete and depth bounds are certified.")


if __name__ == "__main__":
    main()
