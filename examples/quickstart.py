#!/usr/bin/env python3
"""Quickstart: parse a theory, chase a database, rewrite and answer a query.

This walks the paper's opening scenario (Section 1): a database D, a TGD
theory T, and a conjunctive query phi — answered two ways:

1. materialize: build a chase prefix Ch_n(T, D) and evaluate phi on it;
2. rewrite:     compute rew(phi) (Theorem 1) and evaluate the UCQ on D.

Run:  python examples/quickstart.py
"""

from repro import ChaseBudget, parse_instance, parse_query, parse_theory, run_chase
from repro.rewriting import (
    answer_by_materialization,
    answer_by_rewriting,
    depth_bound_from_rewriting,
    rewrite,
)


def main() -> None:
    # Example 1 of the paper: humans have (human) mothers.
    theory = parse_theory(
        """
        Human(y) -> exists z. Mother(y, z)
        Mother(x, y) -> Human(y)
        """,
        name="T_a",
    )
    database = parse_instance("Human(abel). Mother(cain, eve)")
    query = parse_query("q(x) := exists y, z. Mother(x, y), Mother(y, z)")

    print("Theory:")
    print(theory)
    print("\nDatabase:", database)
    print("\nQuery:", query)

    # --- Strategy 1: chase, then evaluate -----------------------------
    chase_result = run_chase(theory, database, budget=ChaseBudget(max_rounds=4))
    print(f"\nChase ran {chase_result.rounds_run} rounds, "
          f"{len(chase_result.instance)} atoms (infinite in the limit: "
          "T_a is BDD but not core-terminating).")

    # --- Strategy 2: rewrite, then evaluate on D ----------------------
    rewriting = rewrite(theory, query)
    print(f"\nrew(q) — {len(rewriting.ucq)} disjuncts (Theorem 1):")
    for disjunct in rewriting.ucq:
        print("   |", disjunct)

    bound = depth_bound_from_rewriting(theory, query)
    print(f"\nDerivation-depth bound n_q = {bound} (Definition 11).")

    via_rewriting = answer_by_rewriting(theory, query, database, prepared=rewriting)
    via_chase = answer_by_materialization(theory, query, database, depth=bound)
    print("\nCertain answers via rewriting:      ", sorted(map(repr, via_rewriting)))
    print("Certain answers via materialization:", sorted(map(repr, via_chase)))
    assert via_rewriting == via_chase, "the two strategies must agree"
    print("\nBoth strategies agree — that is the BDD property at work.")


if __name__ == "__main__":
    main()
