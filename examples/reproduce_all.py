#!/usr/bin/env python3
"""Reproduce every experiment table in one run (no pytest needed).

Loads each bench module from ``benchmarks/`` and executes its ``run_*``
function directly, printing the tables that EXPERIMENTS.md quotes.  The
slowest experiments (E4's exhaustive support search, E12's G^8 chase) are
skipped unless ``--full`` is given.

Run:  python examples/reproduce_all.py [--full]
"""

from __future__ import annotations

import importlib.util
import sys
import time
from pathlib import Path

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"

QUICK = [
    ("bench_e1_doubling", "run_doubling"),
    ("bench_e2_tower", "run_tower"),
    ("bench_e3_linear_rewritings", "run_linear_rewritings"),
    ("bench_e5_tc_cycles", "run_tc_cycles"),
    ("bench_e6_uniform_bound", "run_uniform_bound"),
    ("bench_e7_nonterminating", "run_nonterminating"),
    ("bench_e8_infinite_slices", "run_infinite_slices"),
    ("bench_e9_crossover", "run_crossover"),
    ("bench_e10_chase_variants", "run_chase_variants"),
    ("bench_e11_normalization", "run_normalization"),
    ("bench_e13_bdlocal_sticky", "run_bdlocal_sticky"),
    ("bench_e14_ontologies", "run_ontologies"),
    ("bench_a1_seminaive", "run_seminaive_ablation"),
    ("bench_a2_process_dedup", "run_process_dedup_ablation"),
    ("bench_a3_rewriting_cores", "run_eviction_ablation"),
]

FULL_ONLY = [
    ("bench_f1_figure1", "run_figure1"),
    ("bench_e4_sticky_nonlocal", "run_sticky_nonlocal"),
    ("bench_e12_distancing", "run_distancing"),
]


def _load(module_name: str):
    spec = importlib.util.spec_from_file_location(
        module_name, BENCHMARKS / f"{module_name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def main(full: bool) -> None:
    targets = QUICK + (FULL_ONLY if full else [])
    total_started = time.perf_counter()
    for module_name, function_name in targets:
        started = time.perf_counter()
        module = _load(module_name)
        table = getattr(module, function_name)()
        elapsed = time.perf_counter() - started
        print()
        print(table.render())
        print(f"  [{module_name} in {elapsed:.1f}s]")
    skipped = [] if full else [name for name, _ in FULL_ONLY]
    print(f"\nDone in {time.perf_counter() - total_started:.1f}s.")
    if skipped:
        print(f"Skipped (pass --full): {', '.join(skipped)}")


if __name__ == "__main__":
    main("--full" in sys.argv[1:])
