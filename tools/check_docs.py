#!/usr/bin/env python
"""Documentation checker: links, anchors, and executable examples.

Run from the repository root (CI's docs job does):

    python tools/check_docs.py

Three checks, all zero-dependency:

1. **Relative links resolve.**  Every ``[text](target)`` in the checked
   markdown files whose target is not an URL must point at an existing
   file (relative to the file containing the link).
2. **Anchors resolve.**  A ``file.md#anchor`` (or in-page ``#anchor``)
   target must match a heading in the target file under GitHub's
   slugification (lowercase, spaces to dashes, punctuation dropped).
3. **Examples run.**  Every fenced ``python`` block in ``README.md``,
   ``EXPERIMENTS.md``, ``docs/performance.md``, ``docs/architecture.md``,
   ``docs/robustness.md``, ``docs/incremental.md`` and
   ``docs/service.md`` is executed with ``src/`` on ``sys.path``; a
   failing example fails the build.  Examples in those files are a
   documented contract, not decoration.

Exit code 0 on success, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKED_FILES = [
    ROOT / "README.md",
    ROOT / "EXPERIMENTS.md",
    *sorted((ROOT / "docs").glob("*.md")),
]
EXECUTED_FILES = [
    ROOT / "README.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "performance.md",
    ROOT / "docs" / "architecture.md",
    ROOT / "docs" / "robustness.md",
    ROOT / "docs" / "incremental.md",
    ROOT / "docs" / "service.md",
]

# [text](target) — but not ![image](...) captures, which we treat the same,
# and not reference-style links (none are used in this repository).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCED = re.compile(r"```[a-z]*\n.*?```", re.DOTALL)
_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces to dashes."""
    text = heading.strip().lower()
    # Drop inline code/emphasis markers and trailing formatting.
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- §]", "", text, flags=re.UNICODE)
    text = text.replace("§", "")
    return re.sub(r"\s+", "-", text.strip())


def heading_slugs(path: Path) -> set[str]:
    # Strip fenced blocks first so commented '#' lines are not headings.
    text = _FENCED.sub("", path.read_text(encoding="utf8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf8")
    for match in _LINK.finditer(_FENCED.sub("", text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path.relative_to(ROOT)}: broken anchor -> {target}"
                )
    return problems


def run_examples(path: Path) -> list[str]:
    problems: list[str] = []
    sys.path.insert(0, str(ROOT / "src"))
    text = path.read_text(encoding="utf8")
    for index, block in enumerate(_PYTHON_BLOCK.findall(text)):
        try:
            exec(compile(block, f"{path.name}[block {index}]", "exec"), {})
        except Exception as exc:  # report and continue to the next block
            problems.append(
                f"{path.relative_to(ROOT)}: python block {index} failed: "
                f"{type(exc).__name__}: {exc}"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    for path in CHECKED_FILES:
        problems.extend(check_links(path))
    for path in EXECUTED_FILES:
        problems.extend(run_examples(path))
    if problems:
        print(f"{len(problems)} documentation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    blocks = sum(
        len(_PYTHON_BLOCK.findall(p.read_text(encoding="utf8")))
        for p in EXECUTED_FILES
    )
    print(
        f"docs OK: {len(CHECKED_FILES)} files link-checked, "
        f"{blocks} example block(s) executed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
