"""The SQLite fact store: one table per predicate, interned terms.

This is the durable data plane behind ``backend="sqlite"``.  Schema:

``repro_terms (id, kind, payload, display)``
    the **interned term dictionary**.  Every term — constant, variable
    (instances may legally contain variables, see Observation 31) or
    Skolem function term — appears exactly once and is referenced by
    integer id everywhere else.  ``payload`` is the structural identity
    (for function terms: the functor plus the *child ids*, so deep Skolem
    trees cost O(1) per node, not O(depth) per mention); ``display`` is
    the term's repr, kept so fact reprs — and hence
    :func:`~repro.storage.base.content_digest` checksums — can be
    rendered straight from SQL without rebuilding Python terms.

``f_<predicate>_<arity> (a0, ..., ak, round)``
    one **fact table per predicate**, columns holding term ids, primary
    key over all positions (``WITHOUT ROWID``: the fact *is* the key),
    plus one index per non-leading position — the SQL analogue of the
    ``(predicate, position, term)`` index that makes the in-memory
    homomorphism search usable.  ``round`` tags the chase round that
    first produced the fact (0 = base), powering checkpoint/resume.

``repro_predicates`` / ``repro_meta``
    the catalog mapping predicates to table names, and a key/value side
    table for checkpoint state.

Writes are **batched**: ``add``/``add_many`` append to a buffer that is
flushed with one ``executemany`` per predicate inside a single
transaction once ``batch_size`` rows accumulate (or on any read).
Deduplication is ``INSERT OR IGNORE`` against the primary key — re-adding
a fact never changes its round tag, which is exactly the "first round it
appeared in" semantics of Definition 6.

Concurrency: connections open with ``PRAGMA busy_timeout`` so writers
wait for each other at the SQLite level, and every commit (plus the
batched write paths) runs under a bounded jittered-backoff retry on
``database is locked`` — transient contention between processes sharing
a database file degrades to latency, not an exception (counted under
``store.lock_retries``; see ``docs/robustness.md``).

Journal mode is an open option: ``wal=True`` (the default) sets
``PRAGMA journal_mode=WAL`` + ``synchronous=NORMAL`` — the service
deployment shape, where many reader connections answer compiled queries
while one writer chases (readers never block the writer and vice versa);
``wal=False`` keeps SQLite's rollback journal (``DELETE``) with
``synchronous=FULL``.  The mode actually granted by SQLite is exposed as
:attr:`SQLiteStore.journal_mode` and counted once per open under
``store.wal_opens`` / ``store.rollback_opens``; stored content is
journal-mode-independent — both modes produce identical
:meth:`~SQLiteStore.digest` values (tested).  Connections are opened
with ``check_same_thread=False`` so a store may be handed between
threadpool workers; callers serialize access themselves (the service
holds a per-theory write lock, ``OMQASession`` a per-session lock).

Telemetry (``store.*`` counters, see ``docs/architecture.md`` §6):
``store.writes`` facts submitted, ``store.batches`` buffer flushes,
``store.sql_queries`` SELECT statements executed, ``store.rows_scanned``
result rows fetched, ``store.terms_interned`` dictionary inserts,
``store.lock_retries`` lock-contention retries.
"""

from __future__ import annotations

import random
import re
import sqlite3
import time
from pathlib import Path
from typing import Iterable, Iterator

from .. import faults
from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.signature import Predicate
from ..telemetry import Telemetry
from .base import content_digest
from .interning import TermInterningMixin

_SCHEMA = """
CREATE TABLE IF NOT EXISTS repro_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS repro_terms (
    id INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    display TEXT NOT NULL,
    UNIQUE (kind, payload)
);
CREATE TABLE IF NOT EXISTS repro_predicates (
    name TEXT NOT NULL,
    arity INTEGER NOT NULL,
    table_name TEXT NOT NULL UNIQUE,
    PRIMARY KEY (name, arity)
);
CREATE TABLE IF NOT EXISTS repro_supports (
    child TEXT NOT NULL,
    parent TEXT NOT NULL,
    PRIMARY KEY (child, parent)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS ix_repro_supports_parent ON repro_supports (parent);
"""

# A soft cap on the Python-side term caches: the store must stay usable
# for chases far larger than RAM would allow the in-memory engine, so
# the id/display maps cannot be allowed to mirror the whole dictionary.
_CACHE_CAP = 500_000

# How long SQLite itself waits on a locked database before returning
# SQLITE_BUSY (milliseconds), and how many times the Python layer then
# retries the statement with jittered exponential backoff on top.
_BUSY_TIMEOUT_MS = 5_000
_LOCK_RETRIES = 5


def _trim(cache: dict) -> None:
    if len(cache) > _CACHE_CAP:
        cache.clear()


def fact_key(predicate: Predicate, ids: "tuple[int, ...]") -> str:
    """The canonical row key used by the ``repro_supports`` edge table.

    ``name/arity:id0,id1,...`` — term *ids*, not displays, so the key is
    stable across connections (ids live in ``repro_terms``) and costs no
    term decoding to build on the chase's hot path.
    """
    return f"{predicate.name}/{predicate.arity}:{','.join(map(str, ids))}"


# The id list is digits-and-commas only, so the last "/<digits>:" split
# is unambiguous even for exotic predicate names.
_FACT_KEY = re.compile(r"^(.*)/(\d+):([\d,]*)$", re.DOTALL)


def parse_fact_key(key: str) -> "tuple[Predicate, tuple[int, ...]]":
    matched = _FACT_KEY.match(key)
    if matched is None:
        raise ValueError(f"malformed fact key {key!r}")
    name, arity, ids = matched.groups()
    return (
        Predicate(name, int(arity)),
        tuple(int(part) for part in ids.split(",")) if ids else (),
    )


class SQLiteStore(TermInterningMixin):
    """A :class:`~repro.storage.base.FactStore` backed by SQLite.

    ``path`` may be a filesystem path or SQLite's ``":memory:"``.
    ``batch_size`` bounds the write buffer (rows, across predicates).
    """

    def __init__(
        self,
        path: "str | Path" = ":memory:",
        batch_size: int = 4096,
        telemetry: Telemetry | None = None,
        wal: bool = True,
    ) -> None:
        self.path = str(path)
        self.batch_size = batch_size
        self.stats = telemetry if telemetry is not None else Telemetry()
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._conn.executescript(_SCHEMA)
        if wal:
            # Durability tuned for a data plane, not a ledger: WAL keeps
            # readers unblocked during chase flushes, NORMAL sync is safe
            # against process crashes (checkpoints re-derive on power loss).
            granted = self._conn.execute("PRAGMA journal_mode=WAL").fetchone()
            self._conn.execute("PRAGMA synchronous=NORMAL")
        else:
            granted = self._conn.execute("PRAGMA journal_mode=DELETE").fetchone()
            self._conn.execute("PRAGMA synchronous=FULL")
        # SQLite may refuse WAL (e.g. ":memory:" databases stay in
        # "memory" mode); record what was actually granted, not asked.
        self.journal_mode: str = str(granted[0]).lower()
        self.stats.counters[
            "store.wal_opens" if self.journal_mode == "wal" else "store.rollback_opens"
        ] += 1
        self._conn.execute("PRAGMA temp_store=MEMORY")
        self._conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        self._tables: dict[Predicate, str] = {}
        self._init_term_caches()
        self._pending: dict[Predicate, list[tuple]] = {}
        self._pending_rows = 0
        for name, arity, table in self._conn.execute(
            "SELECT name, arity, table_name FROM repro_predicates"
        ):
            self._tables[Predicate(name, arity)] = table

    @property
    def backend(self) -> str:
        return "sqlite"

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError("store is closed")
        return self._conn

    def _select(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run a SELECT with ``store.sql_queries`` accounting."""
        self.stats.counters["store.sql_queries"] += 1
        return self.connection.execute(sql, params)

    def _guarded(self, action):
        """Run a write action, retrying transient ``database is locked``.

        ``PRAGMA busy_timeout`` absorbs most contention inside SQLite;
        whatever still surfaces as ``OperationalError: database is
        locked`` is retried up to ``_LOCK_RETRIES`` times with jittered
        exponential backoff (counted under ``store.lock_retries``) —
        concurrent writers on one database file cost latency, never an
        exception.  Any other error, or exhaustion, propagates.  The
        ``sqlite.locked`` fault injects one synthetic contention here.
        """
        attempt = 0
        while True:
            try:
                if faults.active() and faults.fire("sqlite.locked"):
                    raise sqlite3.OperationalError("database is locked")
                return action()
            except sqlite3.OperationalError as error:
                if "locked" not in str(error).lower() or attempt >= _LOCK_RETRIES:
                    raise
                attempt += 1
                self.stats.counters["store.lock_retries"] += 1
                delay = min(0.02 * (2**attempt), 0.25)
                time.sleep(delay * (0.5 + random.random() / 2))

    def commit(self) -> None:
        """Commit the open transaction (lock-retried, see :meth:`_guarded`)."""
        self._guarded(self.connection.commit)

    def rollback(self) -> None:
        """Discard the open transaction and resynchronize Python state.

        SQLite rolls back rows *and* in-transaction DDL, so everything
        the Python layer learned during the transaction is suspect: the
        write buffer is dropped, the interning caches are reset (they
        may hold ids of dictionary rows that no longer exist) and the
        predicate-table catalog is rebuilt from ``repro_predicates``.
        The store chase calls this when a deadline or cancellation
        abandons a round mid-insert — the database then holds exactly
        the last committed round.
        """
        self._pending.clear()
        self._pending_rows = 0
        self.connection.rollback()
        self._init_term_caches()
        self.reload_catalog()

    def reload_catalog(self) -> None:
        """Re-read the predicate-table catalog from ``repro_predicates``.

        Reader connections sharing a WAL database with a writer call this
        when the writer may have created new predicate tables since the
        reader opened (the service does so on every data-version bump):
        the Python-side ``_tables`` map is a cache of committed catalog
        rows, and query compilation treats a predicate missing from it as
        provably empty.  Interning caches stay valid — the dictionary is
        append-only.
        """
        self._tables = {}
        for name, arity, table in self.connection.execute(
            "SELECT name, arity, table_name FROM repro_predicates"
        ):
            self._tables[Predicate(name, arity)] = table

    # ------------------------------------------------------------------
    # Predicate tables
    # ------------------------------------------------------------------
    def table_for(self, predicate: Predicate, create: bool = False) -> str | None:
        """The fact table for ``predicate`` (``None`` when absent).

        With ``create=True`` the table (and its per-position indexes) is
        created and cataloged on first sight.
        """
        table = self._tables.get(predicate)
        if table is not None or not create:
            return table
        safe = re.sub(r"[^A-Za-z0-9_]", "_", predicate.name)
        table = f"f_{safe}_{predicate.arity}"
        if table in self._tables.values():  # sanitation collision (E' vs E_)
            table = f"{table}_{len(self._tables)}"
        columns = ", ".join(f"a{i} INTEGER NOT NULL" for i in range(predicate.arity))
        key = ", ".join(f"a{i}" for i in range(predicate.arity))
        conn = self.connection
        if predicate.arity:
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {table} ({columns}, "
                f"round INTEGER NOT NULL DEFAULT 0, PRIMARY KEY ({key})) "
                "WITHOUT ROWID"
            )
        else:  # nullary predicates: a one-row presence table
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {table} "
                "(present INTEGER PRIMARY KEY CHECK (present = 1), "
                "round INTEGER NOT NULL DEFAULT 0)"
            )
        for position in range(1, predicate.arity):
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS ix_{table}_a{position} "
                f"ON {table} (a{position})"
            )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS ix_%s_round ON %s (round)" % (table, table)
        )
        conn.execute(
            "INSERT OR IGNORE INTO repro_predicates (name, arity, table_name) "
            "VALUES (?, ?, ?)",
            (predicate.name, predicate.arity, table),
        )
        self._tables[predicate] = table
        return table

    # ------------------------------------------------------------------
    # Term dictionary (shared surface lives in TermInterningMixin; the
    # three primitives below bind it to the repro_terms table)
    # ------------------------------------------------------------------
    def _trim_term_cache(self, cache: dict) -> None:
        _trim(cache)

    def _dict_lookup(self, kind: str, payload: str) -> "int | None":
        row = self._select(
            "SELECT id FROM repro_terms WHERE kind = ? AND payload = ?",
            (kind, payload),
        ).fetchone()
        return None if row is None else int(row[0])

    def _dict_insert(self, kind: str, payload: str, display: str) -> int:
        cursor = self.connection.execute(
            "INSERT INTO repro_terms (kind, payload, display) VALUES (?, ?, ?)",
            (kind, payload, display),
        )
        self.stats.counters["store.terms_interned"] += 1
        return int(cursor.lastrowid)

    def _dict_fetch(self, term_id: int) -> "tuple[str, str, str] | None":
        row = self._select(
            "SELECT kind, payload, display FROM repro_terms WHERE id = ?",
            (term_id,),
        ).fetchone()
        return None if row is None else (row[0], row[1], row[2])

    # ------------------------------------------------------------------
    # Writes (buffered, batched)
    # ------------------------------------------------------------------
    def _encode(self, item: Atom, round_: int) -> tuple:
        if item.predicate.arity == 0:
            return (1, round_)
        return tuple(self.intern_term(term) for term in item.args) + (round_,)

    def add(self, item: Atom, round_: int = 0) -> bool:
        """Add one fact; returns True when it was not present before.

        The membership probe forces a buffer flush, so prefer
        :meth:`add_many` on hot paths.
        """
        present = item in self
        self.add_many((item,), round_=round_)
        return not present

    def add_many(self, items: Iterable[Atom], round_: int = 0) -> int:
        """Buffer facts for insertion; returns how many were *new*.

        The count is exact (``INSERT OR IGNORE`` against the primary
        key), measured as the connection's change-count delta across the
        flush.
        """
        self._flush_pending()  # drain unrelated buffered rows first
        for item in items:
            self.stats.counters["store.writes"] += 1
            self.table_for(item.predicate, create=True)
            self._pending.setdefault(item.predicate, []).append(
                self._encode(item, round_)
            )
            self._pending_rows += 1
        inserted = self._flush_pending()
        self.commit()
        return inserted

    def _flush_pending(self) -> int:
        """Write the buffer out; returns how many rows were genuinely new.

        The count is the connection's change delta across the
        ``executemany`` calls alone — catalog inserts and term interning
        happen at buffering time, so they never pollute it.
        """
        if not self._pending_rows:
            return 0
        conn = self.connection
        self.stats.counters["store.batches"] += 1
        before = conn.total_changes
        for predicate, rows in self._pending.items():
            table = self._tables[predicate]
            if predicate.arity:
                slots = ", ".join("?" for _ in range(predicate.arity + 1))
                self._guarded(
                    lambda: conn.executemany(
                        f"INSERT OR IGNORE INTO {table} VALUES ({slots})", rows
                    )
                )
            else:
                self._guarded(
                    lambda: conn.executemany(
                        f"INSERT OR IGNORE INTO {table} (present, round) "
                        "VALUES (?, ?)",
                        rows,
                    )
                )
        self._pending.clear()
        self._pending_rows = 0
        return conn.total_changes - before

    def insert_rows(
        self, predicate: Predicate, rows: "list[tuple[int, ...]]", round_: int
    ) -> int:
        """Bulk-insert id-native fact rows; returns how many were new.

        The store-backed chase's write path: rows are tuples of term ids
        (no ``Atom`` objects), deduplicated by the primary key with one
        ``executemany`` — re-proposed facts keep their original round
        tag, matching Definition 6's first-appearance semantics.
        """
        if not rows:
            return 0
        self._flush_pending()
        table = self.table_for(predicate, create=True)
        conn = self.connection
        counters = self.stats.counters
        counters["store.writes"] += len(rows)
        counters["store.batches"] += 1
        before = conn.total_changes
        if predicate.arity:
            slots = ", ".join("?" for _ in range(predicate.arity + 1))
            self._guarded(
                lambda: conn.executemany(
                    f"INSERT OR IGNORE INTO {table} VALUES ({slots})",
                    [row + (round_,) for row in rows],
                )
            )
        else:
            self._guarded(
                lambda: conn.executemany(
                    f"INSERT OR IGNORE INTO {table} (present, round) VALUES (?, ?)",
                    [(1, round_) for _ in rows],
                )
            )
        return conn.total_changes - before

    def buffer(self, item: Atom, round_: int = 0) -> None:
        """Append to the write buffer, flushing at ``batch_size`` rows.

        The bulk-load path (chase rounds, instance loads): no membership
        answer, just throughput.
        """
        self.stats.counters["store.writes"] += 1
        self.table_for(item.predicate, create=True)
        self._pending.setdefault(item.predicate, []).append(
            self._encode(item, round_)
        )
        self._pending_rows += 1
        if self._pending_rows >= self.batch_size:
            self._flush_pending()

    def flush(self) -> None:
        self._flush_pending()
        if self._conn is not None:
            self.commit()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self.flush()
        total = 0
        for table in self._tables.values():
            row = self._select(f"SELECT COUNT(*) FROM {table}").fetchone()
            total += int(row[0])
        return total

    def __contains__(self, item: Atom) -> bool:
        self.flush()
        table = self._tables.get(item.predicate)
        if table is None:
            return False
        if item.predicate.arity == 0:
            return self._select(f"SELECT 1 FROM {table} LIMIT 1").fetchone() is not None
        ids = []
        for term in item.args:
            term_id = self.term_id(term)
            if term_id is None:
                return False
            ids.append(term_id)
        where = " AND ".join(f"a{i} = ?" for i in range(item.predicate.arity))
        row = self._select(
            f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", tuple(ids)
        ).fetchone()
        return row is not None

    def __iter__(self) -> Iterator[Atom]:
        for predicate in list(self._tables):
            yield from self.facts(predicate)

    def predicates(self) -> set[Predicate]:
        self.flush()
        live = set()
        for predicate, table in self._tables.items():
            if self._select(f"SELECT 1 FROM {table} LIMIT 1").fetchone():
                live.add(predicate)
        return live

    def facts(self, predicate: Predicate) -> Iterator[Atom]:
        self.flush()
        table = self._tables.get(predicate)
        if table is None:
            return
        if predicate.arity == 0:
            if self._select(f"SELECT 1 FROM {table} LIMIT 1").fetchone():
                self.stats.counters["store.rows_scanned"] += 1
                yield Atom(predicate, ())
            return
        columns = ", ".join(f"a{i}" for i in range(predicate.arity))
        for row in self._select(f"SELECT {columns} FROM {table}"):
            self.stats.counters["store.rows_scanned"] += 1
            yield Atom(predicate, tuple(self.term_by_id(term_id) for term_id in row))

    def max_round(self) -> int:
        self.flush()
        highest = 0
        for table in self._tables.values():
            row = self._select(f"SELECT MAX(round) FROM {table}").fetchone()
            if row[0] is not None:
                highest = max(highest, int(row[0]))
        return highest

    def atoms_in_round(self, round_: int) -> frozenset[Atom]:
        self.flush()
        collected = []
        for predicate, table in self._tables.items():
            if predicate.arity == 0:
                hit = self._select(
                    f"SELECT 1 FROM {table} WHERE round = ?", (round_,)
                ).fetchone()
                if hit:
                    collected.append(Atom(predicate, ()))
                continue
            columns = ", ".join(f"a{i}" for i in range(predicate.arity))
            for row in self._select(
                f"SELECT {columns} FROM {table} WHERE round = ?", (round_,)
            ):
                self.stats.counters["store.rows_scanned"] += 1
                collected.append(
                    Atom(predicate, tuple(self.term_by_id(t) for t in row))
                )
        return frozenset(collected)

    def count_in_round(self, round_: int) -> int:
        """How many facts carry round tag ``round_`` (no decode)."""
        self.flush()
        total = 0
        for table in self._tables.values():
            row = self._select(
                f"SELECT COUNT(*) FROM {table} WHERE round = ?", (round_,)
            ).fetchone()
            total += int(row[0])
        return total

    def delete_rounds_above(self, round_: int) -> int:
        """Delete facts tagged with a round strictly above ``round_``.

        Crash-recovery surface for the store chase: a process killed
        mid-round may leave a partially inserted round behind (WAL makes
        the *commit* atomic, but an in-flight transaction interrupted by
        SIGKILL is simply rolled back — this method additionally covers
        debris from older, non-transactional layouts and makes resume
        idempotent).  Returns how many rows were removed.
        """
        self._pending.clear()
        self._pending_rows = 0
        conn = self.connection
        before = conn.total_changes
        for table in self._tables.values():
            self._guarded(
                lambda: conn.execute(
                    f"DELETE FROM {table} WHERE round > ?", (round_,)
                )
            )
        removed = conn.total_changes - before
        self.commit()
        return removed

    # ------------------------------------------------------------------
    # Derivation supports (incremental maintenance)
    # ------------------------------------------------------------------
    # ``repro_supports`` holds (child, parent) fact-key edges — one row
    # per recorded rule application's body atom — persisted by the
    # store-backed chase and walked by ``update_store_chase`` to
    # over-delete the DRed cone of a retraction.  The table is part of
    # the fixed schema, NOT the predicate catalog: it never contributes
    # to ``__len__``, ``digest()`` or ``predicates()``.

    def add_supports(self, pairs: "list[tuple[str, str]]") -> None:
        """Record derivation edges (no commit — rides the round's txn)."""
        if not pairs:
            return
        conn = self.connection
        self._guarded(
            lambda: conn.executemany(
                "INSERT OR IGNORE INTO repro_supports (child, parent) "
                "VALUES (?, ?)",
                pairs,
            )
        )

    def support_children(self, parent_keys: "Iterable[str]") -> set[str]:
        """Distinct children whose recorded derivation used any parent."""
        children: set[str] = set()
        batch: list[str] = []
        parents = list(parent_keys)
        for start in range(0, len(parents), 500):
            batch = parents[start : start + 500]
            marks = ", ".join("?" for _ in batch)
            for row in self._select(
                "SELECT DISTINCT child FROM repro_supports "
                f"WHERE parent IN ({marks})",
                tuple(batch),
            ):
                children.add(row[0])
        return children

    def has_support(self, child_key: str) -> bool:
        """Whether any derivation edge ends at ``child_key``.

        A fact *without* support edges is base-like for deletion: round-0
        facts, update-added facts and facts promoted to base all carry
        none, so the DRed cascade never deletes them.
        """
        row = self._select(
            "SELECT 1 FROM repro_supports WHERE child = ? LIMIT 1", (child_key,)
        ).fetchone()
        return row is not None

    def delete_supports_of(self, child_keys: "Iterable[str]") -> int:
        """Drop all edges into the given children (promotion/deletion)."""
        conn = self.connection
        before = conn.total_changes
        rows = [(key,) for key in child_keys]
        if rows:
            self._guarded(
                lambda: conn.executemany(
                    "DELETE FROM repro_supports WHERE child = ?", rows
                )
            )
        return conn.total_changes - before

    def existing_fact_keys(self, keys: "Iterable[str]") -> set[str]:
        """Which of the given fact keys name rows already in the store.

        The support recorder's filter: a produced row whose fact already
        exists must not gain a support edge, so base facts stay
        support-free (mirroring the in-memory engine, which records a
        derivation only when the produced atom is genuinely new).
        """
        self._flush_pending()
        existing: set[str] = set()
        by_predicate: "dict[Predicate, list[tuple[str, tuple[int, ...]]]]" = {}
        for key in keys:
            predicate, ids = parse_fact_key(key)
            by_predicate.setdefault(predicate, []).append((key, ids))
        for predicate, entries in by_predicate.items():
            table = self._tables.get(predicate)
            if table is None:
                continue
            if predicate.arity == 0:
                row = self._select(f"SELECT 1 FROM {table} LIMIT 1").fetchone()
                if row is not None:
                    existing.update(key for key, _ in entries)
                continue
            where = " AND ".join(f"a{i} = ?" for i in range(predicate.arity))
            for key, ids in entries:
                row = self._select(
                    f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", ids
                ).fetchone()
                if row is not None:
                    existing.add(key)
        return existing

    def support_count(self) -> int:
        row = self._select("SELECT COUNT(*) FROM repro_supports").fetchone()
        return int(row[0])

    def delete_fact_rows(self, keys: "Iterable[str]") -> int:
        """Delete fact rows by fact key; returns how many rows existed.

        The write half of the DRed over-deletion.  No commit — the
        caller lands the deletions, the support cleanup and the updated
        chase state in one transaction.
        """
        self._flush_pending()
        conn = self.connection
        before = conn.total_changes
        for key in keys:
            predicate, ids = parse_fact_key(key)
            table = self._tables.get(predicate)
            if table is None:
                continue
            if predicate.arity == 0:
                self._guarded(lambda: conn.execute(f"DELETE FROM {table}"))
            else:
                where = " AND ".join(f"a{i} = ?" for i in range(predicate.arity))
                self._guarded(
                    lambda: conn.execute(
                        f"DELETE FROM {table} WHERE {where}", ids
                    )
                )
        return conn.total_changes - before

    def digest(self) -> str:
        """Content digest, rendered from the term dictionary's displays.

        Matches :func:`~repro.storage.base.content_digest` of the same
        facts exactly — no ``Atom`` objects are built.
        """
        self.flush()
        rendered: list[str] = []
        for predicate, table in self._tables.items():
            if predicate.arity == 0:
                if self._select(f"SELECT 1 FROM {table} LIMIT 1").fetchone():
                    rendered.append(f"{predicate.name}()")
                continue
            columns = ", ".join(f"a{i}" for i in range(predicate.arity))
            for row in self._select(f"SELECT {columns} FROM {table}"):
                self.stats.counters["store.rows_scanned"] += 1
                inner = ",".join(self.display_of(term_id) for term_id in row)
                rendered.append(f"{predicate.name}({inner})")
        return content_digest(rendered)

    def to_instance(self) -> Instance:
        return Instance(self)

    def clear_facts(self) -> None:
        """Drop every stored fact, keeping tables and the term dictionary.

        ``OMQASession`` reloads a different instance through this: term
        ids and table names stay stable, so previously compiled SQL
        remains executable against the refilled store.
        """
        self._pending.clear()
        self._pending_rows = 0
        for table in self._tables.values():
            self.connection.execute(f"DELETE FROM {table}")
        self.connection.execute("DELETE FROM repro_supports")
        self.commit()

    # ------------------------------------------------------------------
    # Metadata (checkpoints)
    # ------------------------------------------------------------------
    def get_meta(self, key: str, default: "str | None" = None) -> "str | None":
        row = self._select(
            "SELECT value FROM repro_meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    def set_meta(self, key: str, value: str, commit: bool = True) -> None:
        """Set one key/value pair; ``commit=False`` leaves it in the
        open transaction so callers can land metadata and facts
        atomically (the store chase commits each round's rows and its
        ``storechase.*`` markers in one transaction this way)."""
        self.connection.execute(
            "INSERT INTO repro_meta (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (key, value),
        )
        if commit:
            self.commit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._flush_pending()
            self._guarded(self._conn.commit)
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._conn is None else f"{len(self._tables)} tables"
        return f"SQLiteStore({self.path!r}, {state})"
