"""Pluggable fact storage: RAM or SQLite behind one ``FactStore`` contract.

The subsystem behind ``backend="sqlite"``: persistent fact stores with an
interned term dictionary, UCQ rewritings compiled to SQL and evaluated by
SQLite's join engine, chase checkpoint/resume, and a store-backed chase
whose peak RSS is bounded by its batch size instead of the instance.

Layout:

=====================  ===================================================
:mod:`~repro.storage.base`        the :class:`FactStore` protocol,
                                  :func:`content_digest`, :func:`open_store`
:mod:`~repro.storage.memory`      :class:`MemoryStore` over ``Instance``
:mod:`~repro.storage.sqlite`      :class:`SQLiteStore` (tables, dictionary)
:mod:`~repro.storage.sqlcompile`  CQ/UCQ → SQL compilation + execution
:mod:`~repro.storage.checkpoint`  persist/resume in-memory chase results
:mod:`~repro.storage.chasestore`  the chase evaluated inside SQLite
=====================  ===================================================
"""

from .base import FactStore, content_digest, instance_digest, open_store
from .checkpoint import (
    CheckpointError,
    checkpoint_chase,
    load_checkpoint,
    resume_from_checkpoint,
    save_checkpoint,
)
from .chasestore import (
    StoreChaseError,
    StoreChaseResult,
    chase_into_store,
    resume_store_chase,
)
from .memory import MemoryStore
from .sqlcompile import CompiledQuery, compile_ucq, evaluate_ucq_sql, execute_compiled
from .sqlite import SQLiteStore

__all__ = [
    "CheckpointError",
    "CompiledQuery",
    "FactStore",
    "MemoryStore",
    "SQLiteStore",
    "StoreChaseError",
    "StoreChaseResult",
    "chase_into_store",
    "checkpoint_chase",
    "compile_ucq",
    "content_digest",
    "evaluate_ucq_sql",
    "execute_compiled",
    "instance_digest",
    "load_checkpoint",
    "open_store",
    "resume_from_checkpoint",
    "resume_store_chase",
    "save_checkpoint",
]
