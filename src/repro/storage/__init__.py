"""Pluggable fact storage behind one ``FactStore`` contract.

Three backends, one registry (:data:`BACKEND_NAMES`, resolved everywhere
through :func:`resolve_backend`): ``"memory"`` adapts the in-RAM
``Instance``, ``"columnar"`` holds interned id tuples with per-position
hash indexes (the columnar chase kernel's data plane), ``"sqlite"``
persists facts with UCQ rewritings compiled to SQL, chase
checkpoint/resume, and a store-backed chase whose peak RSS is bounded by
its batch size instead of the instance.

Layout:

=====================  ===================================================
:mod:`~repro.storage.base`        the :class:`FactStore` protocol,
                                  :func:`content_digest`, :func:`open_store`,
                                  :func:`resolve_backend`
:mod:`~repro.storage.interning`   the shared term-interning mixin
:mod:`~repro.storage.memory`      :class:`MemoryStore` over ``Instance``
:mod:`~repro.storage.columnar`    :class:`ColumnarStore` (id tuples, indexes)
:mod:`~repro.storage.sqlite`      :class:`SQLiteStore` (tables, dictionary)
:mod:`~repro.storage.sqlcompile`  CQ/UCQ → SQL compilation + execution
:mod:`~repro.storage.checkpoint`  persist/resume in-memory chase results
:mod:`~repro.storage.chasestore`  the chase evaluated inside SQLite
=====================  ===================================================
"""

from .base import (
    BACKEND_NAMES,
    FactStore,
    ResolvedBackend,
    content_digest,
    instance_digest,
    open_store,
    resolve_backend,
)
from .columnar import ColumnarStore
from .checkpoint import (
    CheckpointError,
    checkpoint_chase,
    load_checkpoint,
    open_checkpoint_store,
    resume_from_checkpoint,
    save_checkpoint,
    save_checkpoint_atomic,
)
from .chasestore import (
    StoreChaseError,
    StoreChaseResult,
    chase_into_store,
    resume_store_chase,
    update_store_chase,
)
from .memory import MemoryStore
from .sqlcompile import CompiledQuery, compile_ucq, evaluate_ucq_sql, execute_compiled
from .sqlite import SQLiteStore

__all__ = [
    "BACKEND_NAMES",
    "CheckpointError",
    "ColumnarStore",
    "CompiledQuery",
    "FactStore",
    "MemoryStore",
    "ResolvedBackend",
    "SQLiteStore",
    "StoreChaseError",
    "StoreChaseResult",
    "chase_into_store",
    "checkpoint_chase",
    "compile_ucq",
    "content_digest",
    "evaluate_ucq_sql",
    "execute_compiled",
    "instance_digest",
    "load_checkpoint",
    "open_checkpoint_store",
    "open_store",
    "resolve_backend",
    "resume_from_checkpoint",
    "resume_store_chase",
    "save_checkpoint",
    "save_checkpoint_atomic",
    "update_store_chase",
]
