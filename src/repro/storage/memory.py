"""The in-RAM fact store: an adapter over :class:`~repro.logic.instance.Instance`.

This backend exists so every storage-layer consumer (checkpointing, the
CLI's backend switch, equivalence tests) can be written once against the
:class:`~repro.storage.base.FactStore` contract and run unchanged over
RAM or SQLite.  It adds exactly one thing to ``Instance``: the per-fact
round tag that checkpointing needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.signature import Predicate
from ..telemetry import Telemetry
from .base import content_digest


class MemoryStore:
    """A :class:`~repro.storage.base.FactStore` over a plain ``Instance``."""

    def __init__(self, instance: Instance | None = None) -> None:
        self._instance = instance.copy() if instance is not None else Instance()
        self._round_of: dict[Atom, int] = {item: 0 for item in self._instance}
        self._meta: dict[str, str] = {}
        self.stats = Telemetry()

    @property
    def backend(self) -> str:
        return "memory"

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add(self, item: Atom, round_: int = 0) -> bool:
        self.stats.counters["store.writes"] += 1
        added = self._instance.add(item)
        if added:
            self._round_of[item] = round_
        return added

    def add_many(self, items: Iterable[Atom], round_: int = 0) -> int:
        added = 0
        self.stats.counters["store.batches"] += 1
        for item in items:
            self.stats.counters["store.writes"] += 1
            if self._instance.add(item):
                self._round_of[item] = round_
                added += 1
        return added

    def buffer(self, item: Atom, round_: int = 0) -> None:
        """RAM has no write buffer; equivalent to :meth:`add`."""
        self.add(item, round_)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instance)

    def __contains__(self, item: Atom) -> bool:
        return item in self._instance

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._instance)

    def predicates(self) -> set[Predicate]:
        return self._instance.predicates()

    def facts(self, predicate: Predicate) -> Iterator[Atom]:
        return iter(self._instance.with_predicate(predicate))

    def max_round(self) -> int:
        return max(self._round_of.values(), default=0)

    def atoms_in_round(self, round_: int) -> frozenset[Atom]:
        return frozenset(
            item for item, tag in self._round_of.items() if tag == round_
        )

    def count_in_round(self, round_: int) -> int:
        return sum(1 for tag in self._round_of.values() if tag == round_)

    def get_meta(self, key: str, default: "str | None" = None) -> "str | None":
        return self._meta.get(key, default)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def digest(self) -> str:
        return content_digest(self._instance)

    def to_instance(self) -> Instance:
        return self._instance.copy()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Nothing buffered in RAM."""

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "MemoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MemoryStore({len(self._instance)} facts)"
