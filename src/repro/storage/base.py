"""The :class:`FactStore` contract: what a fact backend must provide.

The paper's BDD/FUS property (Theorem 1, Theorem 5's five-operation
procedure) exists so that certain answers can be computed by evaluating a
UCQ rewriting *directly over the database* — no chase, no materialized
``Ch(T, D)`` in RAM.  A :class:`FactStore` is that database: a set of
facts behind a small uniform interface with two implementations,

* :class:`repro.storage.memory.MemoryStore` — an adapter over the
  existing in-RAM :class:`~repro.logic.instance.Instance`, and
* :class:`repro.storage.sqlite.SQLiteStore` — a durable SQLite database
  (one table per predicate, per-position indexes, an interned term
  dictionary) whose join engine evaluates compiled rewritings
  (:mod:`repro.storage.sqlcompile`) without ever materializing the
  facts in Python.

Stores tag every fact with a *round* (0 for base facts), which is what
makes chase checkpointing (:mod:`repro.storage.checkpoint`) and the
store-backed chase (:mod:`repro.storage.chasestore`) round-exact: the
``round_added`` partition of a :class:`~repro.chase.engine.ChaseResult`
survives a trip through the store.

Content identity across backends is a :func:`content_digest`: the
sha256 of the sorted fact reprs, truncated exactly like the bench
guard's instance checksums — an :class:`Instance` and its store
round-trip digest-compare equal, whichever backend holds the facts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.signature import Predicate
from ..telemetry import Telemetry


def content_digest(atoms: Iterable[Atom] | Iterable[str]) -> str:
    """The repository-wide fact-set checksum: sha256 of sorted reprs.

    Accepts atoms or pre-rendered repr strings (the SQLite backend
    renders reprs from its term dictionary without building ``Atom``
    objects).  The 16-hex-digit truncation matches the bench guard's
    instance checksums, so digests are comparable across the guard
    baselines, ``Instance`` contents and every store backend.
    """
    rendered = sorted(item if isinstance(item, str) else repr(item) for item in atoms)
    return hashlib.sha256("\n".join(rendered).encode("utf8")).hexdigest()[:16]


def instance_digest(instance: Instance) -> str:
    """:func:`content_digest` of an instance's facts."""
    return content_digest(instance)


@runtime_checkable
class FactStore(Protocol):
    """What every fact backend provides.

    The contract is deliberately small — the evaluation fast path lives
    in backend-specific code (:mod:`repro.storage.sqlcompile` for
    SQLite, the homomorphism engine for memory); the protocol covers
    loading, membership, round bookkeeping and content identity.

    ``stats`` is a :class:`~repro.telemetry.Telemetry` carrying the
    ``store.*`` counters (``store.writes``, ``store.batches``,
    ``store.sql_queries``, ``store.rows_scanned``, ...).
    """

    stats: Telemetry

    @property
    def backend(self) -> str:
        """Backend tag: one of :data:`BACKEND_NAMES`."""
        ...

    def add(self, item: Atom, round_: int = 0) -> bool:
        """Add one fact (tagged with ``round_``); True when new."""
        ...

    def add_many(self, items: Iterable[Atom], round_: int = 0) -> int:
        """Add many facts in one batch; returns how many were new."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, item: Atom) -> bool: ...

    def __iter__(self) -> Iterator[Atom]: ...

    def predicates(self) -> set[Predicate]:
        """Predicates with at least one stored fact."""
        ...

    def facts(self, predicate: Predicate) -> Iterator[Atom]:
        """All stored facts over ``predicate``."""
        ...

    def max_round(self) -> int:
        """The highest round tag present (0 for a base-only store)."""
        ...

    def atoms_in_round(self, round_: int) -> frozenset[Atom]:
        """The facts first added in round ``round_``."""
        ...

    def digest(self) -> str:
        """The :func:`content_digest` of the stored facts."""
        ...

    def to_instance(self) -> Instance:
        """Materialize the store as an in-RAM :class:`Instance`."""
        ...

    def flush(self) -> None:
        """Push any buffered writes to the backing medium."""
        ...

    def close(self) -> None:
        """Flush and release backend resources (idempotent)."""
        ...


# The one registry of backend spellings.  Every user-facing selector —
# ``chase(backend=)``, ``answer(backend=)``, ``OMQASession``, the CLI's
# ``--backend/--db`` — resolves through :func:`resolve_backend`, so a new
# backend registers here and nowhere else.
BACKEND_NAMES: tuple[str, ...] = ("memory", "columnar", "sqlite")


@dataclass(frozen=True)
class ResolvedBackend:
    """A validated backend choice: canonical name plus optional path."""

    name: str
    path: "str | None" = None

    def open(self, telemetry: "Telemetry | None" = None) -> FactStore:
        """Instantiate the chosen backend's :class:`FactStore`."""
        if self.name == "memory":
            from .memory import MemoryStore

            return MemoryStore()
        if self.name == "columnar":
            from .columnar import ColumnarStore

            return ColumnarStore(telemetry=telemetry)
        from .sqlite import SQLiteStore

        return SQLiteStore(
            self.path if self.path is not None else ":memory:",
            telemetry=telemetry,
        )


def resolve_backend(
    spec: "str | None" = None,
    path: "str | None" = None,
    *,
    default: str = "memory",
    allowed: "tuple[str, ...] | None" = None,
    hint: "str | None" = None,
) -> ResolvedBackend:
    """Validate a backend spec against the single registry.

    ``spec`` is one of :data:`BACKEND_NAMES` (case-insensitive, ``None``
    meaning ``default``); ``path`` is the database path and is only
    meaningful for ``"sqlite"``.  Callers supporting a subset pass
    ``allowed`` (and optionally ``hint``, appended to the rejection
    message to point at the right API).  All backend error strings in
    the package come from here, so new backends register in one place.
    """
    name = default if spec is None else str(spec).strip().lower()
    if name not in BACKEND_NAMES:
        choices = ", ".join(repr(n) for n in BACKEND_NAMES)
        raise ValueError(f"backend must be one of {choices}, got {spec!r}")
    if allowed is not None and name not in allowed:
        choices = ", ".join(repr(n) for n in allowed)
        message = f"backend {name!r} is not supported here; expected {choices}"
        if hint:
            message = f"{message} ({hint})"
        raise ValueError(message)
    if path is not None and name != "sqlite":
        raise ValueError(
            f"a database path only applies to the 'sqlite' backend, "
            f"got backend={name!r} with path {path!r}"
        )
    return ResolvedBackend(name=name, path=path)


def open_store(path: "str | None" = None, **kwargs) -> FactStore:
    """Open a fact store: in-memory by default, SQLite when given a path.

    ``open_store(None)`` returns a fresh
    :class:`~repro.storage.memory.MemoryStore`; any path (including
    SQLite's ``":memory:"``) returns a
    :class:`~repro.storage.sqlite.SQLiteStore` — the idiom behind the
    CLI's ``--backend sqlite --db PATH`` and
    ``OMQASession(db_path=...)``.
    """
    if path is None:
        from .memory import MemoryStore

        return MemoryStore(**kwargs)
    from .sqlite import SQLiteStore

    return SQLiteStore(path, **kwargs)
