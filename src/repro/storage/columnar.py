"""The in-RAM columnar fact store: interned ids, flat tuple relations.

This is the data plane behind ``backend="columnar"`` — the default
chase engine since the columnar kernel landed.  Facts are held as flat
tuples of **interned integer term ids** (the same structural dictionary
:class:`~repro.storage.interning.TermInterningMixin` gives the SQLite
store), one :class:`_Relation` per predicate:

``rows: dict[row, round]``
    the tuple store itself; the dict doubles as the dedup set and the
    "first round it appeared in" tag of Definition 6 (re-adding a fact
    never changes its tag);
``indexes: tuple[dict[int, set[row]], ...]``
    one hash index per position, mapping a term id to the set of rows
    carrying it there — the O(1) bucket probes the columnar kernel's
    hash join is built on.

A note on layout: flat ``array``/numpy columns were considered for the
tuple store, but the chase's access pattern is dominated by per-fact
dedup probes and per-position bucket lookups, which the hashed row-set
representation serves in O(1) with zero decode cost; contiguous columns
only pay off for full scans, which the kernel never does once the
indexes exist.  (numpy is also not a dependency of this package.)

Everything is id-native: Skolem terms derived by the kernel are
interned via :meth:`intern_function` without materializing
``FunctionTerm`` objects, and ``digest()`` renders fact reprs straight
from the dictionary's display strings, so digests agree exactly with
:func:`~repro.storage.base.content_digest` of the equivalent
``Instance`` — and with :class:`~repro.storage.sqlite.SQLiteStore` on
the same facts.

Telemetry (``store.*`` counters, see ``docs/architecture.md`` §6):
``store.writes`` facts submitted, ``store.batches`` bulk calls,
``store.rows_scanned`` rows decoded to atoms, ``store.terms_interned``
dictionary inserts.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.signature import Predicate
from ..telemetry import Telemetry
from .base import content_digest
from .interning import TermInterningMixin


class _Relation:
    """One predicate's tuple store plus its per-position hash indexes."""

    __slots__ = ("arity", "rows", "indexes", "by_round")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.rows: dict[tuple, int] = {}
        self.indexes: tuple[dict[int, set], ...] = tuple(
            {} for _ in range(arity)
        )
        self.by_round: dict[int, int] = {}

    def insert(self, row: tuple, round_: int) -> bool:
        """Add ``row`` tagged ``round_``; False when already present."""
        if row in self.rows:
            return False
        self.rows[row] = round_
        for position, term_id in enumerate(row):
            bucket = self.indexes[position].get(term_id)
            if bucket is None:
                self.indexes[position][term_id] = {row}
            else:
                bucket.add(row)
        self.by_round[round_] = self.by_round.get(round_, 0) + 1
        return True


class ColumnarStore(TermInterningMixin):
    """A :class:`~repro.storage.base.FactStore` over columnar id tuples.

    Purely in-RAM: ``close()`` discards everything.  The term caches
    inherited from the mixin *are* the dictionary, so they are never
    trimmed and ``_dict_lookup`` never has a second place to look.
    """

    def __init__(
        self,
        instance: "Iterable[Atom] | None" = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.stats = telemetry if telemetry is not None else Telemetry()
        self._init_term_caches()
        # The dictionary itself: entry i describes term id i + 1.
        self._term_rows: list[tuple[str, str, str]] = []
        self._relations: dict[Predicate, _Relation] = {}
        self._meta: dict[str, str] = {}
        self._max_round = 0
        if instance is not None:
            self.add_many(instance)

    @property
    def backend(self) -> str:
        return "columnar"

    # ------------------------------------------------------------------
    # Dictionary primitives (TermInterningMixin contract)
    # ------------------------------------------------------------------
    def _dict_lookup(self, kind: str, payload: str) -> "int | None":
        # The payload cache is the authoritative index; a miss there is
        # a miss, full stop.
        return None

    def _dict_insert(self, kind: str, payload: str, display: str) -> int:
        self._term_rows.append((kind, payload, display))
        self.stats.counters["store.terms_interned"] += 1
        return len(self._term_rows)

    def _dict_fetch(self, term_id: int) -> "tuple[str, str, str] | None":
        if 1 <= term_id <= len(self._term_rows):
            return self._term_rows[term_id - 1]
        return None

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def relation(self, predicate: Predicate) -> "_Relation | None":
        """The predicate's relation, or ``None`` when never seen."""
        return self._relations.get(predicate)

    def relation_for(self, predicate: Predicate) -> _Relation:
        """The predicate's relation, created on first sight."""
        relation = self._relations.get(predicate)
        if relation is None:
            relation = _Relation(predicate.arity)
            self._relations[predicate] = relation
        return relation

    def _encode(self, item: Atom) -> tuple:
        return tuple(self.intern_term(term) for term in item.args)

    def _decode(self, predicate: Predicate, row: tuple) -> Atom:
        return Atom(predicate, tuple(self.term_by_id(t) for t in row))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert_row(self, predicate: Predicate, row: tuple, round_: int) -> bool:
        """Insert one id-native row; True when it was new."""
        self.stats.counters["store.writes"] += 1
        if self.relation_for(predicate).insert(row, round_):
            if round_ > self._max_round:
                self._max_round = round_
            return True
        return False

    def add(self, item: Atom, round_: int = 0) -> bool:
        """Add one fact; returns True when it was not present before."""
        return self.insert_row(item.predicate, self._encode(item), round_)

    def add_many(self, items: Iterable[Atom], round_: int = 0) -> int:
        """Add facts in bulk; returns how many were *new*."""
        self.stats.counters["store.batches"] += 1
        added = 0
        for item in items:
            if self.add(item, round_=round_):
                added += 1
        return added

    def insert_rows(
        self, predicate: Predicate, rows: "list[tuple[int, ...]]", round_: int
    ) -> int:
        """Bulk-insert id-native fact rows; returns how many were new.

        Mirrors :meth:`SQLiteStore.insert_rows`: re-proposed facts keep
        their original round tag (Definition 6's first-appearance
        semantics).
        """
        if not rows:
            return 0
        self.stats.counters["store.batches"] += 1
        inserted = 0
        for row in rows:
            if self.insert_row(predicate, row, round_):
                inserted += 1
        return inserted

    def buffer(self, item: Atom, round_: int = 0) -> None:
        """Alias for :meth:`add`; the RAM store has no write buffer."""
        self.add(item, round_=round_)

    def flush(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(rel.rows) for rel in self._relations.values())

    def __contains__(self, item: Atom) -> bool:
        relation = self._relations.get(item.predicate)
        if relation is None:
            return False
        ids = []
        for term in item.args:
            term_id = self.term_id(term)
            if term_id is None:
                return False
            ids.append(term_id)
        return tuple(ids) in relation.rows

    def __iter__(self) -> Iterator[Atom]:
        for predicate in list(self._relations):
            yield from self.facts(predicate)

    def predicates(self) -> set[Predicate]:
        return {p for p, rel in self._relations.items() if rel.rows}

    def facts(self, predicate: Predicate) -> Iterator[Atom]:
        relation = self._relations.get(predicate)
        if relation is None:
            return
        for row in relation.rows:
            self.stats.counters["store.rows_scanned"] += 1
            yield self._decode(predicate, row)

    def max_round(self) -> int:
        return self._max_round

    def atoms_in_round(self, round_: int) -> frozenset[Atom]:
        collected = []
        for predicate, relation in self._relations.items():
            if not relation.by_round.get(round_):
                continue
            for row, tag in relation.rows.items():
                if tag == round_:
                    self.stats.counters["store.rows_scanned"] += 1
                    collected.append(self._decode(predicate, row))
        return frozenset(collected)

    def count_in_round(self, round_: int) -> int:
        """How many facts carry round tag ``round_`` (no decode)."""
        return sum(
            rel.by_round.get(round_, 0) for rel in self._relations.values()
        )

    def digest(self) -> str:
        """Content digest, rendered from the term dictionary's displays.

        Matches :func:`~repro.storage.base.content_digest` of the same
        facts exactly — no ``Atom`` objects are built.
        """
        rendered: list[str] = []
        for predicate, relation in self._relations.items():
            name = predicate.name
            for row in relation.rows:
                inner = ",".join(self.display_of(term_id) for term_id in row)
                rendered.append(f"{name}({inner})")
        return content_digest(rendered)

    def to_instance(self) -> Instance:
        return Instance(self)

    def clear_facts(self) -> None:
        """Drop every stored fact, keeping the term dictionary.

        ``OMQASession`` reloads a different instance through this: term
        ids stay stable, so anything compiled against them (columnar
        query plans, cached rows elsewhere) remains meaningful.
        """
        for predicate in list(self._relations):
            self._relations[predicate] = _Relation(predicate.arity)
        self._max_round = 0

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def get_meta(self, key: str, default: "str | None" = None) -> "str | None":
        return self._meta.get(key, default)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._relations.clear()
        self._meta.clear()

    def __enter__(self) -> "ColumnarStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ColumnarStore({len(self._relations)} relations, "
            f"{len(self)} facts, {len(self._term_rows)} terms)"
        )
