"""The store-backed chase: semi-naive rounds evaluated *inside* SQLite.

:func:`repro.chase.engine.chase` materializes every round in RAM, which
caps the reachable instance size at available memory.  This module runs
the same semi-oblivious Skolem chase (Definition 6) with the facts living
only in a :class:`~repro.storage.sqlite.SQLiteStore`:

* each rule body is compiled (per round) into SELECT-joins by
  :func:`~repro.storage.sqlcompile.build_select`, with per-alias *round
  bounds* implementing semi-naive evaluation — one plan per pivot atom,
  the pivot pinned to the delta round ``r-1``, atoms before it to
  strictly older rounds, atoms after it to ``<= r-1`` (so each
  delta-touching sigma is enumerated exactly once, and facts inserted
  mid-round — tagged ``r`` — are invisible to the round's own joins,
  preserving Definition 6's round semantics);
* head atoms are produced **id-natively**: the SELECT rows are term-id
  tuples, Skolem terms are interned from child ids
  (:meth:`~repro.storage.sqlite.SQLiteStore.intern_function`) and the
  rows go back via batched ``INSERT OR IGNORE`` — no Python ``Term`` or
  ``Atom`` objects exist for the facts themselves, so peak RSS is
  bounded by the batch size, not the instance;
* the chase state (theory, completed rounds, termination) is persisted
  in the store's meta table after every round, so a budget-stopped run
  is resumable from disk — by Observation 8 and Skolem-naming
  determinism the continuation is exact, not approximate;
* each round commits **atomically**: the round's fact rows and the
  updated ``storechase.*`` state land in one SQLite transaction, so a
  process killed at *any* instant (even ``SIGKILL`` mid-insert) leaves
  the database at the last complete round and
  :func:`resume_store_chase` continues exactly — see
  ``docs/robustness.md``.  Deadlines (``ChaseBudget.deadline_s``) and
  :class:`~repro.chase.engine.CancellationToken` are honoured at round
  boundaries and inside long rounds; an interrupted round is rolled
  back, never half-applied.

Not supported here: rules with *universal head variables* (the ``T_d``
style ``true -> exists z. R(x, z)`` rules, whose head ranges over the
active domain).  Those raise :class:`StoreChaseError`; the in-memory
engine plus :mod:`repro.storage.checkpoint` covers them.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

from .. import faults
from ..chase.engine import (
    CancellationToken,
    ChaseBudget,
    ChaseBudgetExceeded,
    _RoundInterrupt,
    _RunControl,
    note_interruption,
)
from ..chase.planner import CONTROL_CHECK_STRIDE
from ..chase.skolem import skolemize
from ..logic.instance import Instance
from ..logic.terms import Constant, FunctionTerm, Variable
from ..logic.tgd import Theory
from ..telemetry import Telemetry
from .sqlcompile import build_select
from .sqlite import SQLiteStore, fact_key, parse_fact_key

STORE_CHASE_SCHEMA = "repro-storechase/1"


class StoreChaseError(RuntimeError):
    """The store chase cannot run: unsupported rule or inconsistent state."""


@dataclass
class StoreChaseResult:
    """Outcome of a store-backed chase (facts stay in the store).

    Mirrors :class:`~repro.chase.engine.ChaseResult` where it can:
    ``rounds_run`` counts completed productive rounds, ``terminated``
    reports the fixpoint, ``stats`` carries the telemetry (``chase.*``
    round counters plus the store's ``store.*`` counters — the store
    chase shares the store's collector).  The instance itself is *not*
    materialized; call :meth:`to_instance` (or query via
    :mod:`repro.storage.sqlcompile`) when you really want the atoms.
    """

    store: SQLiteStore
    rounds_run: int
    terminated: bool
    atom_count: int
    stats: Telemetry

    def to_instance(self) -> Instance:
        return self.store.to_instance()

    def digest(self) -> str:
        return self.store.digest()


# A head-slot recipe, resolved per sigma row: ("v", i) copies the i-th
# projected body variable, ("f", functor, indices) interns a Skolem term
# over those row positions, ("c", term_id) is a pre-interned constant.
_Slot = tuple


class _StoreRule:
    """A rule compiled for id-native application against a store."""

    def __init__(self, rule, store: SQLiteStore) -> None:
        if rule.universal_head_variables():
            raise StoreChaseError(
                f"rule {rule.label or rule!r} has universal head variables; "
                "the store-backed chase does not enumerate the active domain "
                "(use the in-memory engine with repro.storage.checkpoint)"
            )
        self.rule = rule
        skolemized = skolemize(rule)
        self.body = tuple(rule.body)
        var_order: list[Variable] = []
        for item in self.body:
            for term in item.args:
                if isinstance(term, Variable) and term not in var_order:
                    var_order.append(term)
        self.var_order = tuple(var_order)
        index_of = {var: i for i, var in enumerate(var_order)}
        self.head_specs: list[tuple] = []
        for item in skolemized.head:
            slots: list[_Slot] = []
            for term in item.args:
                if isinstance(term, Variable):
                    slots.append(("v", index_of[term]))
                elif isinstance(term, FunctionTerm):
                    slots.append(
                        ("f", term.functor, tuple(index_of[arg] for arg in term.args))
                    )
                elif isinstance(term, Constant):
                    slots.append(("c", store.intern_term(term)))
                else:  # pragma: no cover - the parser admits nothing else
                    raise StoreChaseError(f"unsupported head term {term!r}")
            self.head_specs.append((item.predicate, tuple(slots)))
        # Body-atom recipes for provenance: each body atom rendered as a
        # fact key per sigma row, recorded as the (child, parent) support
        # edges that ``update_store_chase`` walks to over-delete a
        # retraction's cone.  ``None`` when a body term shape falls
        # outside variable/constant (nothing the parser emits today).
        body_specs: "list[tuple] | None" = []
        for item in self.body:
            slots = []
            for term in item.args:
                if isinstance(term, Variable):
                    slots.append(("v", index_of[term]))
                elif isinstance(term, Constant):
                    slots.append(("c", store.intern_term(term)))
                else:
                    body_specs = None
                    break
            if body_specs is None:
                break
            body_specs.append((item.predicate, tuple(slots)))
        self.body_specs = body_specs

    def parent_keys(self, row: tuple) -> "list[str] | None":
        """The body image of one sigma row, as fact keys (or ``None``)."""
        if self.body_specs is None:
            return None
        keys = []
        for predicate, slots in self.body_specs:
            ids = tuple(
                row[slot[1]] if slot[0] == "v" else slot[1] for slot in slots
            )
            keys.append(fact_key(predicate, ids))
        return keys

    def round_plans(self, round_number: int) -> "list[list]":
        """The per-alias round bounds to evaluate this round's matches.

        Round 1 is one full pass over the base (everything is round 0);
        later rounds get one semi-naive plan per pivot position.
        """
        last = round_number - 1
        if round_number == 1:
            return [[("le", 0)] * len(self.body)]
        plans = []
        for pivot in range(len(self.body)):
            bounds: list = []
            for position in range(len(self.body)):
                if position < pivot:
                    bounds.append(("lt", last))
                elif position == pivot:
                    bounds.append(("eq", last))
                else:
                    bounds.append(("le", last))
            plans.append(bounds)
        return plans


def _apply_rule(rule: _StoreRule, row: tuple, store: SQLiteStore) -> "list[tuple]":
    """Head fact rows (as id tuples, paired with predicates) for one sigma."""
    out = []
    for predicate, slots in rule.head_specs:
        ids = []
        for slot in slots:
            if slot[0] == "v":
                ids.append(row[slot[1]])
            elif slot[0] == "f":
                ids.append(
                    store.intern_function(
                        slot[1], tuple(row[i] for i in slot[2])
                    )
                )
            else:
                ids.append(slot[1])
        out.append((predicate, tuple(ids)))
    return out


def _theory_text(theory: Theory) -> str:
    """Canonical rule text for state matching: reprs only, no name header.

    ``repr(rule)`` carries no labels, so a theory reparsed from this text
    (labels regenerated) serializes back to the same string — resume
    matching survives the round-trip.
    """
    return "\n".join(repr(rule) for rule in theory) + "\n"


def _persist_state(
    store: SQLiteStore,
    rounds: int,
    terminated: bool,
    stats: Telemetry,
    commit: bool = True,
) -> None:
    store.set_meta("storechase.rounds", str(rounds), commit=False)
    store.set_meta("storechase.terminated", "1" if terminated else "0", commit=False)
    store.set_meta("storechase.stats", json.dumps(stats.as_dict()), commit=False)
    if commit:
        store.commit()


def _maybe_kill(name: str, round_: int) -> None:
    """Fault hook: die without ceremony, as a crashed process would.

    ``storechase.kill`` fires just before the round commit,
    ``storechase.kill_midround`` during row inserts — both must leave a
    database that resumes to the exact fixpoint (the chaos suite checks
    digests and counters across the kill).
    """
    if faults.active() and faults.fire(name, round_):
        os.kill(os.getpid(), signal.SIGKILL)


def _filter_existing_supports(
    store: SQLiteStore, supports: "list[tuple[str, str]]"
) -> None:
    """Drop support pairs whose child fact already exists in the store.

    Mirrors the in-memory engine, which records a derivation only when
    the produced atom is genuinely new: without this filter a base fact
    re-derived by some rule would gain support edges, stop looking base,
    and become deletable by the DRed cascade (and un-retractable by
    :func:`update_store_chase`'s derived-fact check).  Must run *before*
    the batch's rows are inserted — afterwards every child would read as
    existing.
    """
    if not supports:
        return
    present = store.existing_fact_keys({child for child, _ in supports})
    if present:
        supports[:] = [pair for pair in supports if pair[0] not in present]


def _execute_round(
    store: SQLiteStore,
    prepared: "list[_StoreRule]",
    round_number: int,
    control: "_RunControl | None",
    plans_for,
    fire_bodyless: bool,
) -> "tuple[int, int, int]":
    """One store round's trigger matching and batched inserts.

    Returns ``(matches, produced_rows, inserted)``.  Produced facts land
    at round tag ``round_number``; every *genuinely new* row also records
    its (child, parent) support edges — flushed alongside the fact
    batches, inside the same per-round transaction — which is the
    provenance :func:`update_store_chase` walks for DRed over-deletion.
    Rows whose fact already exists are filtered out of the support batch
    first (:func:`_filter_existing_supports`), so base facts never
    acquire edges and never enter the deletion cascade.

    ``plans_for`` maps a rule to its round-bound plans (the standard
    semi-naive pivots for a chase round, one full-width pass for the
    re-derive round after a retraction); ``fire_bodyless`` gates the
    once-only bodyless rules.  Raises
    :class:`~repro.chase.engine._RoundInterrupt` on deadline or
    cancellation, leaving the partial round uncommitted.
    """
    counters = store.stats.counters
    batch_size = store.batch_size
    stride = CONTROL_CHECK_STRIDE - 1
    matches = 0
    produced_rows = 0
    inserted = 0
    supports: "list[tuple[str, str]]" = []
    for rule in prepared:
        if control is not None:
            reason = control.interruption()
            if reason is not None:
                raise _RoundInterrupt(reason)
        if not rule.body:
            # Bodyless rules (no universal variables, so the head is
            # ground after skolemization) fire exactly once.
            if not fire_bodyless:
                continue
            matches += 1
            for predicate, ids in _apply_rule(rule, (), store):
                produced_rows += 1
                inserted += store.insert_rows(predicate, [ids], round_number)
            continue
        for bounds in plans_for(rule):
            compiled = build_select(
                rule.body,
                rule.var_order,
                store,
                round_bounds=bounds,
                distinct=False,
            )
            if compiled is None:
                continue  # a body predicate has no fact table yet
            pending: dict = {}
            pending_rows = 0
            for row in store._select(compiled.sql, compiled.params):
                matches += 1
                if control is not None and not (matches & stride):
                    reason = control.interruption()
                    if reason is not None:
                        raise _RoundInterrupt(reason)
                counters["store.rows_scanned"] += 1
                parents = rule.parent_keys(row)
                for predicate, ids in _apply_rule(rule, row, store):
                    produced_rows += 1
                    pending.setdefault(predicate, []).append(ids)
                    pending_rows += 1
                    if parents:
                        child = fact_key(predicate, ids)
                        supports.extend((child, parent) for parent in parents)
                if pending_rows >= batch_size:
                    _filter_existing_supports(store, supports)
                    for predicate, rows in pending.items():
                        inserted += store.insert_rows(
                            predicate, rows, round_number
                        )
                    pending.clear()
                    pending_rows = 0
                    store.add_supports(supports)
                    supports.clear()
                    _maybe_kill("storechase.kill_midround", round_number)
            _filter_existing_supports(store, supports)
            for predicate, rows in pending.items():
                inserted += store.insert_rows(predicate, rows, round_number)
            store.add_supports(supports)
            supports.clear()
            if pending:
                _maybe_kill("storechase.kill_midround", round_number)
    return matches, produced_rows, inserted


def chase_into_store(
    theory: Theory,
    base: "Instance | None",
    store: SQLiteStore,
    budget: "ChaseBudget | None" = None,
    cancel: "CancellationToken | None" = None,
) -> StoreChaseResult:
    """Run (or continue) the Skolem chase with facts living in ``store``.

    A fresh store gets ``base`` loaded as round 0 and chased from there;
    a store already carrying store-chase state *resumes* where it
    stopped (``base`` must then be ``None`` — the persisted round 0 is
    the base) for up to ``budget.max_rounds`` *further* rounds.  The
    persisted theory must match ``theory`` rule-for-rule; state is
    written after every round, so even a killed process resumes
    round-exactly.

    Raises :class:`StoreChaseError` for rules with universal head
    variables, mismatched resume state, or a non-empty store with no
    chase state.  Budget overruns — including ``budget.deadline_s`` and
    a fired ``cancel`` token — follow ``budget.on_exceeded``; either
    way the store holds the last *complete* round and can be resumed.
    """
    budget = budget if budget is not None else ChaseBudget()
    stats = store.stats
    counters = stats.counters
    theory_text = _theory_text(theory)

    # Compile the rules before touching any persistent state: an
    # unsupported theory (universal head variables) must fail with the
    # store unchanged — no base facts loaded, no ``storechase.*`` meta
    # written — so callers can fall back to the in-memory engine against
    # the same database without leaving mixed state behind.
    prepared = [_StoreRule(rule, store) for rule in theory]

    schema = store.get_meta("storechase.schema")
    if schema is not None:
        if schema != STORE_CHASE_SCHEMA:
            raise StoreChaseError(f"unsupported store-chase schema {schema!r}")
        persisted = store.get_meta("storechase.theory", "")
        if persisted != theory_text:
            raise StoreChaseError(
                "store was chased under a different theory; refusing to mix"
            )
        if base is not None:
            raise StoreChaseError(
                "resuming a store chase: base is already persisted, pass None"
            )
        if store.get_meta("storechase.repair") == "1":
            raise StoreChaseError(
                "store holds an interrupted incremental update (the "
                "deletion cone is applied but not yet re-derived); finish "
                "it with repro.incremental.update_store_chase"
            )
        rounds_run = int(store.get_meta("storechase.rounds", "0"))
        terminated = store.get_meta("storechase.terminated") == "1"
        # Remove debris from a crashed round: the per-round transaction
        # makes this a no-op in practice, but resume stays idempotent
        # even against databases written by older layouts.
        store.delete_rounds_above(rounds_run)
        total = len(store)
        # A fresh connection starts with an empty collector; fold the
        # persisted snapshot back in so a suspended-and-resumed chase
        # reports the same counters and per-round records as one
        # uninterrupted run.  A same-connection resume already holds them
        # live (chase.rounds > 0) and must not double-count.
        if counters["chase.rounds"] == 0:
            persisted_stats = store.get_meta("storechase.stats")
            if persisted_stats:
                stats.merge(Telemetry.from_dict(json.loads(persisted_stats)))
        if terminated:
            return StoreChaseResult(store, rounds_run, True, total, stats)
    else:
        if len(store):
            raise StoreChaseError(
                "store holds facts but no store-chase state; start from an "
                "empty store (or resume one this module wrote)"
            )
        # Base facts and the initial state markers land in ONE
        # transaction: a crash during setup leaves either a fully
        # initialised store or an untouched one, never facts without
        # ``storechase.*`` state.
        if base is not None:
            for item in base:
                store.buffer(item, round_=0)
            store._flush_pending()
        store.set_meta("storechase.schema", STORE_CHASE_SCHEMA, commit=False)
        store.set_meta("storechase.theory", theory_text, commit=False)
        # Marks that every derived fact in this store carries support
        # edges — the precondition for retractions in
        # ``update_store_chase`` (databases written before the supports
        # table existed resume fine but cannot be retracted from).
        store.set_meta("storechase.supports", "1", commit=False)
        rounds_run = 0
        terminated = False
        _persist_state(store, rounds_run, terminated, stats, commit=False)
        store.commit()
        total = len(store)

    control = _RunControl.start(budget, cancel)
    interrupted: "str | None" = None

    with stats.timer("chase"):
        for _ in range(budget.max_rounds):
            if control is not None:
                reason = control.interruption()
                if reason is not None:
                    interrupted = reason
                    break
            round_number = rounds_run + 1
            round_started = time.perf_counter()
            terms_before = counters["store.terms_interned"]
            try:
                matches, produced_rows, inserted = _execute_round(
                    store,
                    prepared,
                    round_number,
                    control,
                    lambda rule: rule.round_plans(round_number),
                    fire_bodyless=(round_number == 1),
                )
            except _RoundInterrupt as stop:
                # Abandon the round wholesale: rows inserted so far are
                # rolled back, so disk holds exactly the last complete
                # round (Observation 8 makes the re-run exact).
                store.rollback()
                stats.record_round(
                    round=round_number,
                    aborted=True,
                    total_atoms=total,
                    seconds=round(time.perf_counter() - round_started, 6),
                )
                interrupted = stop.reason
                break
            total += inserted
            dedup_hits = produced_rows - inserted
            counters["chase.rounds"] += 1
            counters["chase.matches"] += matches
            counters["chase.atoms_produced"] += inserted
            counters["chase.dedup_hits"] += dedup_hits
            if inserted:
                rounds_run = round_number
            else:
                terminated = True
            stats.record_round(
                round=round_number,
                matches=matches,
                atoms_produced=inserted,
                dedup_hits=dedup_hits,
                new_terms=counters["store.terms_interned"] - terms_before,
                total_atoms=total,
                seconds=round(time.perf_counter() - round_started, 6),
            )
            # The round's facts and the updated chase state commit as ONE
            # transaction — the SIGKILL-atomicity the chaos suite pins.
            _persist_state(store, rounds_run, terminated, stats, commit=False)
            _maybe_kill("storechase.kill", round_number)
            store.commit()
            if terminated:
                break
            if total > budget.max_atoms:
                if budget.on_exceeded == "raise":
                    raise ChaseBudgetExceeded(
                        f"store chase exceeded {budget.max_atoms} atoms after "
                        f"{rounds_run} rounds"
                    )
                break
        if interrupted is not None:
            note_interruption(stats, interrupted, budget, rounds_run)

    return StoreChaseResult(
        store=store,
        rounds_run=rounds_run,
        terminated=terminated,
        atom_count=total,
        stats=stats,
    )


def resume_store_chase(
    store: SQLiteStore,
    theory: "Theory | None" = None,
    budget: "ChaseBudget | None" = None,
    cancel: "CancellationToken | None" = None,
) -> StoreChaseResult:
    """Continue a persisted store chase (``theory`` defaults to the stored one)."""
    if store.get_meta("storechase.schema") is None:
        raise StoreChaseError(f"{store!r} holds no store-chase state")
    if theory is None:
        from ..logic.parser import parse_theory

        theory = parse_theory(
            store.get_meta("storechase.theory", ""), name="storechase"
        )
    return chase_into_store(theory, None, store, budget=budget, cancel=cancel)


def _encode_existing(store: SQLiteStore, item) -> "tuple[int, ...] | None":
    """Term-id row for an atom, or ``None`` if any term is unknown."""
    ids = []
    for term in item.args:
        term_id = store.term_id(term)
        if term_id is None:
            return None
        ids.append(term_id)
    return tuple(ids)


def update_store_chase(
    store: SQLiteStore,
    theory: "Theory | None" = None,
    add=(),
    retract=(),
    budget: "ChaseBudget | None" = None,
    cancel: "CancellationToken | None" = None,
) -> StoreChaseResult:
    """Maintain a terminated store chase under base adds and retractions.

    The DRed/delta counterpart of :func:`repro.incremental.incremental_update`
    with the facts living only in SQLite:

    * **retractions** delete the retracted rows plus their transitive
      support cone (walked over ``repro_supports``; facts without
      support edges — round-0 facts, update-added facts, promoted facts
      — are never cascaded into), then re-derive survivors with one
      full-width round before returning to standard semi-naive pivots;
    * **additions** insert the new facts at a fresh round tag and run
      plain semi-naive rounds from there — by Observation 8 and Skolem
      determinism this derives exactly the missing consequences.  An
      added fact the chase had already derived is *promoted* to base
      (its support edges are dropped so retractions elsewhere can no
      longer cascade through it).

    The deletion phase, base inserts and updated ``storechase.*`` state
    commit as one transaction; after a retraction a ``storechase.repair``
    marker stays set until the full-width re-derive round lands, so a
    crash mid-update is detected — :func:`resume_store_chase` refuses the
    database and this function (with or without further changes)
    finishes the repair.  The final content digest equals clearing the
    store and re-chasing the updated base from scratch.

    Raises :class:`StoreChaseError` for missing/unterminated/foreign
    chase state, pre-supports databases on retraction, and theories with
    universal head variables; ``ValueError`` for retracting a derived
    fact or adding and retracting the same fact.
    """
    budget = budget if budget is not None else ChaseBudget()
    stats = store.stats
    counters = stats.counters

    schema = store.get_meta("storechase.schema")
    if schema is None:
        raise StoreChaseError(f"{store!r} holds no store-chase state to update")
    if schema != STORE_CHASE_SCHEMA:
        raise StoreChaseError(f"unsupported store-chase schema {schema!r}")
    if theory is None:
        from ..logic.parser import parse_theory

        theory = parse_theory(
            store.get_meta("storechase.theory", ""), name="storechase"
        )
    elif store.get_meta("storechase.theory", "") != _theory_text(theory):
        raise StoreChaseError(
            "store was chased under a different theory; refusing to mix"
        )
    repair_pending = store.get_meta("storechase.repair") == "1"
    if store.get_meta("storechase.terminated") != "1" and not repair_pending:
        raise StoreChaseError(
            "store chase is not at a fixpoint; resume_store_chase first"
        )
    prepared = [_StoreRule(rule, store) for rule in theory]

    add = list(add)
    retract = list(retract)
    overlap = {item for item in add if item in retract}
    if overlap:
        raise ValueError(
            f"facts both added and retracted: {sorted(map(str, overlap))}"
        )
    if retract and store.get_meta("storechase.supports") != "1":
        raise StoreChaseError(
            "store predates support tracking; retraction needs a re-chase "
            "(re-run chase_into_store on a fresh store)"
        )

    rounds_run = int(store.get_meta("storechase.rounds", "0"))
    epoch = rounds_run + 1

    with stats.timer("delta"):
        # ---- resolve the update against the stored facts -------------
        removed_keys: "list[str]" = []
        for item in retract:
            ids = _encode_existing(store, item)
            if ids is None or item not in store:
                continue
            key = fact_key(item.predicate, ids)
            if store.has_support(key):
                raise ValueError(
                    f"cannot retract derived fact {item} (retract its base "
                    "ancestors instead)"
                )
            removed_keys.append(key)
        to_insert = [item for item in add if item not in store]
        promoted_keys = []
        for item in add:
            ids = _encode_existing(store, item)
            if ids is not None and item in store:
                key = fact_key(item.predicate, ids)
                if store.has_support(key):
                    promoted_keys.append(key)

        if not removed_keys and not to_insert and not promoted_keys:
            if not repair_pending:
                counters["delta.noops"] += 1
                return StoreChaseResult(
                    store, rounds_run, True, len(store), stats
                )
        else:
            counters["delta.updates"] += 1
            counters["delta.added_base"] += len(to_insert) + len(promoted_keys)
            counters["delta.retracted_base"] += len(removed_keys)

        # ---- over-delete the retraction cone -------------------------
        deleted: "set[str]" = set()
        if removed_keys:
            deleted = set(removed_keys)
            frontier = list(deleted)
            while frontier:
                children = store.support_children(frontier)
                frontier = [key for key in children if key not in deleted]
                deleted.update(frontier)
            store.delete_fact_rows(deleted)
            store.delete_supports_of(deleted)
            counters["delta.overdeleted"] += len(deleted) - len(removed_keys)

        # ---- apply base changes + state in ONE transaction -----------
        if promoted_keys:
            store.delete_supports_of(promoted_keys)
        for item in to_insert:
            store.buffer(item, round_=epoch)
        store._flush_pending()
        needs_repair = bool(removed_keys) or repair_pending
        store.set_meta(
            "storechase.repair", "1" if needs_repair else "0", commit=False
        )
        terminated = not needs_repair and not to_insert
        _persist_state(store, epoch, terminated, stats, commit=False)
        store.commit()
        rounds_run = epoch
        total = len(store)
        if terminated:
            # Promotions / no-op repairs change no derived facts.
            return StoreChaseResult(store, rounds_run, True, total, stats)

        # ---- re-derive to a fresh fixpoint ---------------------------
        control = _RunControl.start(budget, cancel)
        interrupted: "str | None" = None
        first_round = True
        terminated = False
        for _ in range(budget.max_rounds):
            if control is not None:
                reason = control.interruption()
                if reason is not None:
                    interrupted = reason
                    break
            round_number = rounds_run + 1
            round_started = time.perf_counter()
            terms_before = counters["store.terms_interned"]
            full_pass = first_round and needs_repair
            if full_pass:
                # The retraction broke the closure: one full-width pass
                # over the survivors (including facts the update just
                # added), then standard semi-naive pivots take over.
                last = round_number - 1
                plans_for = (
                    lambda rule: [[("le", last)] * len(rule.body)]
                )
            else:
                plans_for = lambda rule: rule.round_plans(round_number)
            try:
                matches, produced_rows, inserted = _execute_round(
                    store,
                    prepared,
                    round_number,
                    control,
                    plans_for,
                    fire_bodyless=full_pass,
                )
            except _RoundInterrupt as stop:
                store.rollback()
                stats.record_round(
                    round=round_number,
                    aborted=True,
                    total_atoms=total,
                    seconds=round(time.perf_counter() - round_started, 6),
                )
                interrupted = stop.reason
                break
            first_round = False
            total += inserted
            dedup_hits = produced_rows - inserted
            counters["chase.rounds"] += 1
            counters["chase.matches"] += matches
            counters["chase.atoms_produced"] += inserted
            counters["chase.dedup_hits"] += dedup_hits
            counters["delta.rounds"] += 1
            if inserted:
                rounds_run = round_number
            else:
                terminated = True
            stats.record_round(
                round=round_number,
                matches=matches,
                atoms_produced=inserted,
                dedup_hits=dedup_hits,
                new_terms=counters["store.terms_interned"] - terms_before,
                total_atoms=total,
                seconds=round(time.perf_counter() - round_started, 6),
            )
            if full_pass:
                # The closure is whole again from here on; a crash in a
                # later round resumes like any suspended chase.
                store.set_meta("storechase.repair", "0", commit=False)
            _persist_state(store, rounds_run, terminated, stats, commit=False)
            _maybe_kill("storechase.kill", round_number)
            store.commit()
            if terminated:
                break
            if total > budget.max_atoms:
                if budget.on_exceeded == "raise":
                    raise ChaseBudgetExceeded(
                        f"store chase exceeded {budget.max_atoms} atoms "
                        f"after {rounds_run} rounds"
                    )
                break
        if interrupted is not None:
            note_interruption(stats, interrupted, budget, rounds_run)
        if deleted and terminated:
            # How much of the over-deleted cone came back: cone members
            # with an alternative derivation untouched by the retraction.
            rederived = 0
            for key in deleted:
                predicate, ids = parse_fact_key(key)
                table = store._tables.get(predicate)
                if table is None:
                    continue
                if predicate.arity == 0:
                    hit = store._select(
                        f"SELECT 1 FROM {table} LIMIT 1"
                    ).fetchone()
                else:
                    where = " AND ".join(
                        f"a{i} = ?" for i in range(predicate.arity)
                    )
                    hit = store._select(
                        f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", ids
                    ).fetchone()
                if hit:
                    rederived += 1
            counters["delta.rederived"] += rederived

    return StoreChaseResult(
        store=store,
        rounds_run=rounds_run,
        terminated=terminated,
        atom_count=total,
        stats=stats,
    )
