"""The store-backed chase: semi-naive rounds evaluated *inside* SQLite.

:func:`repro.chase.engine.chase` materializes every round in RAM, which
caps the reachable instance size at available memory.  This module runs
the same semi-oblivious Skolem chase (Definition 6) with the facts living
only in a :class:`~repro.storage.sqlite.SQLiteStore`:

* each rule body is compiled (per round) into SELECT-joins by
  :func:`~repro.storage.sqlcompile.build_select`, with per-alias *round
  bounds* implementing semi-naive evaluation — one plan per pivot atom,
  the pivot pinned to the delta round ``r-1``, atoms before it to
  strictly older rounds, atoms after it to ``<= r-1`` (so each
  delta-touching sigma is enumerated exactly once, and facts inserted
  mid-round — tagged ``r`` — are invisible to the round's own joins,
  preserving Definition 6's round semantics);
* head atoms are produced **id-natively**: the SELECT rows are term-id
  tuples, Skolem terms are interned from child ids
  (:meth:`~repro.storage.sqlite.SQLiteStore.intern_function`) and the
  rows go back via batched ``INSERT OR IGNORE`` — no Python ``Term`` or
  ``Atom`` objects exist for the facts themselves, so peak RSS is
  bounded by the batch size, not the instance;
* the chase state (theory, completed rounds, termination) is persisted
  in the store's meta table after every round, so a budget-stopped run
  is resumable from disk — by Observation 8 and Skolem-naming
  determinism the continuation is exact, not approximate;
* each round commits **atomically**: the round's fact rows and the
  updated ``storechase.*`` state land in one SQLite transaction, so a
  process killed at *any* instant (even ``SIGKILL`` mid-insert) leaves
  the database at the last complete round and
  :func:`resume_store_chase` continues exactly — see
  ``docs/robustness.md``.  Deadlines (``ChaseBudget.deadline_s``) and
  :class:`~repro.chase.engine.CancellationToken` are honoured at round
  boundaries and inside long rounds; an interrupted round is rolled
  back, never half-applied.

Not supported here: rules with *universal head variables* (the ``T_d``
style ``true -> exists z. R(x, z)`` rules, whose head ranges over the
active domain).  Those raise :class:`StoreChaseError`; the in-memory
engine plus :mod:`repro.storage.checkpoint` covers them.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

from .. import faults
from ..chase.engine import (
    CancellationToken,
    ChaseBudget,
    ChaseBudgetExceeded,
    _RoundInterrupt,
    _RunControl,
    note_interruption,
)
from ..chase.planner import CONTROL_CHECK_STRIDE
from ..chase.skolem import skolemize
from ..logic.instance import Instance
from ..logic.terms import Constant, FunctionTerm, Variable
from ..logic.tgd import Theory
from ..telemetry import Telemetry
from .sqlcompile import build_select
from .sqlite import SQLiteStore

STORE_CHASE_SCHEMA = "repro-storechase/1"


class StoreChaseError(RuntimeError):
    """The store chase cannot run: unsupported rule or inconsistent state."""


@dataclass
class StoreChaseResult:
    """Outcome of a store-backed chase (facts stay in the store).

    Mirrors :class:`~repro.chase.engine.ChaseResult` where it can:
    ``rounds_run`` counts completed productive rounds, ``terminated``
    reports the fixpoint, ``stats`` carries the telemetry (``chase.*``
    round counters plus the store's ``store.*`` counters — the store
    chase shares the store's collector).  The instance itself is *not*
    materialized; call :meth:`to_instance` (or query via
    :mod:`repro.storage.sqlcompile`) when you really want the atoms.
    """

    store: SQLiteStore
    rounds_run: int
    terminated: bool
    atom_count: int
    stats: Telemetry

    def to_instance(self) -> Instance:
        return self.store.to_instance()

    def digest(self) -> str:
        return self.store.digest()


# A head-slot recipe, resolved per sigma row: ("v", i) copies the i-th
# projected body variable, ("f", functor, indices) interns a Skolem term
# over those row positions, ("c", term_id) is a pre-interned constant.
_Slot = tuple


class _StoreRule:
    """A rule compiled for id-native application against a store."""

    def __init__(self, rule, store: SQLiteStore) -> None:
        if rule.universal_head_variables():
            raise StoreChaseError(
                f"rule {rule.label or rule!r} has universal head variables; "
                "the store-backed chase does not enumerate the active domain "
                "(use the in-memory engine with repro.storage.checkpoint)"
            )
        self.rule = rule
        skolemized = skolemize(rule)
        self.body = tuple(rule.body)
        var_order: list[Variable] = []
        for item in self.body:
            for term in item.args:
                if isinstance(term, Variable) and term not in var_order:
                    var_order.append(term)
        self.var_order = tuple(var_order)
        index_of = {var: i for i, var in enumerate(var_order)}
        self.head_specs: list[tuple] = []
        for item in skolemized.head:
            slots: list[_Slot] = []
            for term in item.args:
                if isinstance(term, Variable):
                    slots.append(("v", index_of[term]))
                elif isinstance(term, FunctionTerm):
                    slots.append(
                        ("f", term.functor, tuple(index_of[arg] for arg in term.args))
                    )
                elif isinstance(term, Constant):
                    slots.append(("c", store.intern_term(term)))
                else:  # pragma: no cover - the parser admits nothing else
                    raise StoreChaseError(f"unsupported head term {term!r}")
            self.head_specs.append((item.predicate, tuple(slots)))

    def round_plans(self, round_number: int) -> "list[list]":
        """The per-alias round bounds to evaluate this round's matches.

        Round 1 is one full pass over the base (everything is round 0);
        later rounds get one semi-naive plan per pivot position.
        """
        last = round_number - 1
        if round_number == 1:
            return [[("le", 0)] * len(self.body)]
        plans = []
        for pivot in range(len(self.body)):
            bounds: list = []
            for position in range(len(self.body)):
                if position < pivot:
                    bounds.append(("lt", last))
                elif position == pivot:
                    bounds.append(("eq", last))
                else:
                    bounds.append(("le", last))
            plans.append(bounds)
        return plans


def _apply_rule(rule: _StoreRule, row: tuple, store: SQLiteStore) -> "list[tuple]":
    """Head fact rows (as id tuples, paired with predicates) for one sigma."""
    out = []
    for predicate, slots in rule.head_specs:
        ids = []
        for slot in slots:
            if slot[0] == "v":
                ids.append(row[slot[1]])
            elif slot[0] == "f":
                ids.append(
                    store.intern_function(
                        slot[1], tuple(row[i] for i in slot[2])
                    )
                )
            else:
                ids.append(slot[1])
        out.append((predicate, tuple(ids)))
    return out


def _theory_text(theory: Theory) -> str:
    """Canonical rule text for state matching: reprs only, no name header.

    ``repr(rule)`` carries no labels, so a theory reparsed from this text
    (labels regenerated) serializes back to the same string — resume
    matching survives the round-trip.
    """
    return "\n".join(repr(rule) for rule in theory) + "\n"


def _persist_state(
    store: SQLiteStore,
    rounds: int,
    terminated: bool,
    stats: Telemetry,
    commit: bool = True,
) -> None:
    store.set_meta("storechase.rounds", str(rounds), commit=False)
    store.set_meta("storechase.terminated", "1" if terminated else "0", commit=False)
    store.set_meta("storechase.stats", json.dumps(stats.as_dict()), commit=False)
    if commit:
        store.commit()


def _maybe_kill(name: str, round_: int) -> None:
    """Fault hook: die without ceremony, as a crashed process would.

    ``storechase.kill`` fires just before the round commit,
    ``storechase.kill_midround`` during row inserts — both must leave a
    database that resumes to the exact fixpoint (the chaos suite checks
    digests and counters across the kill).
    """
    if faults.active() and faults.fire(name, round_):
        os.kill(os.getpid(), signal.SIGKILL)


def chase_into_store(
    theory: Theory,
    base: "Instance | None",
    store: SQLiteStore,
    budget: "ChaseBudget | None" = None,
    cancel: "CancellationToken | None" = None,
) -> StoreChaseResult:
    """Run (or continue) the Skolem chase with facts living in ``store``.

    A fresh store gets ``base`` loaded as round 0 and chased from there;
    a store already carrying store-chase state *resumes* where it
    stopped (``base`` must then be ``None`` — the persisted round 0 is
    the base) for up to ``budget.max_rounds`` *further* rounds.  The
    persisted theory must match ``theory`` rule-for-rule; state is
    written after every round, so even a killed process resumes
    round-exactly.

    Raises :class:`StoreChaseError` for rules with universal head
    variables, mismatched resume state, or a non-empty store with no
    chase state.  Budget overruns — including ``budget.deadline_s`` and
    a fired ``cancel`` token — follow ``budget.on_exceeded``; either
    way the store holds the last *complete* round and can be resumed.
    """
    budget = budget if budget is not None else ChaseBudget()
    stats = store.stats
    counters = stats.counters
    theory_text = _theory_text(theory)

    # Compile the rules before touching any persistent state: an
    # unsupported theory (universal head variables) must fail with the
    # store unchanged — no base facts loaded, no ``storechase.*`` meta
    # written — so callers can fall back to the in-memory engine against
    # the same database without leaving mixed state behind.
    prepared = [_StoreRule(rule, store) for rule in theory]

    schema = store.get_meta("storechase.schema")
    if schema is not None:
        if schema != STORE_CHASE_SCHEMA:
            raise StoreChaseError(f"unsupported store-chase schema {schema!r}")
        persisted = store.get_meta("storechase.theory", "")
        if persisted != theory_text:
            raise StoreChaseError(
                "store was chased under a different theory; refusing to mix"
            )
        if base is not None:
            raise StoreChaseError(
                "resuming a store chase: base is already persisted, pass None"
            )
        rounds_run = int(store.get_meta("storechase.rounds", "0"))
        terminated = store.get_meta("storechase.terminated") == "1"
        # Remove debris from a crashed round: the per-round transaction
        # makes this a no-op in practice, but resume stays idempotent
        # even against databases written by older layouts.
        store.delete_rounds_above(rounds_run)
        total = len(store)
        # A fresh connection starts with an empty collector; fold the
        # persisted snapshot back in so a suspended-and-resumed chase
        # reports the same counters and per-round records as one
        # uninterrupted run.  A same-connection resume already holds them
        # live (chase.rounds > 0) and must not double-count.
        if counters["chase.rounds"] == 0:
            persisted_stats = store.get_meta("storechase.stats")
            if persisted_stats:
                stats.merge(Telemetry.from_dict(json.loads(persisted_stats)))
        if terminated:
            return StoreChaseResult(store, rounds_run, True, total, stats)
    else:
        if len(store):
            raise StoreChaseError(
                "store holds facts but no store-chase state; start from an "
                "empty store (or resume one this module wrote)"
            )
        # Base facts and the initial state markers land in ONE
        # transaction: a crash during setup leaves either a fully
        # initialised store or an untouched one, never facts without
        # ``storechase.*`` state.
        if base is not None:
            for item in base:
                store.buffer(item, round_=0)
            store._flush_pending()
        store.set_meta("storechase.schema", STORE_CHASE_SCHEMA, commit=False)
        store.set_meta("storechase.theory", theory_text, commit=False)
        rounds_run = 0
        terminated = False
        _persist_state(store, rounds_run, terminated, stats, commit=False)
        store.commit()
        total = len(store)

    batch_size = store.batch_size
    control = _RunControl.start(budget, cancel)
    stride = CONTROL_CHECK_STRIDE - 1
    interrupted: "str | None" = None

    with stats.timer("chase"):
        for _ in range(budget.max_rounds):
            if control is not None:
                reason = control.interruption()
                if reason is not None:
                    interrupted = reason
                    break
            round_number = rounds_run + 1
            round_started = time.perf_counter()
            terms_before = counters["store.terms_interned"]
            matches = 0
            produced_rows = 0
            inserted = 0
            try:
                for rule in prepared:
                    if control is not None:
                        reason = control.interruption()
                        if reason is not None:
                            raise _RoundInterrupt(reason)
                    if not rule.body:
                        # Bodyless rules (no universal variables, so the head
                        # is ground after skolemization) fire exactly once,
                        # in the first round.
                        if round_number != 1:
                            continue
                        matches += 1
                        for predicate, ids in _apply_rule(rule, (), store):
                            produced_rows += 1
                            inserted += store.insert_rows(
                                predicate, [ids], round_number
                            )
                        continue
                    for bounds in rule.round_plans(round_number):
                        compiled = build_select(
                            rule.body,
                            rule.var_order,
                            store,
                            round_bounds=bounds,
                            distinct=False,
                        )
                        if compiled is None:
                            continue  # a body predicate has no fact table yet
                        pending: dict = {}
                        pending_rows = 0
                        for row in store._select(compiled.sql, compiled.params):
                            matches += 1
                            if control is not None and not (matches & stride):
                                reason = control.interruption()
                                if reason is not None:
                                    raise _RoundInterrupt(reason)
                            counters["store.rows_scanned"] += 1
                            for predicate, ids in _apply_rule(rule, row, store):
                                produced_rows += 1
                                pending.setdefault(predicate, []).append(ids)
                                pending_rows += 1
                            if pending_rows >= batch_size:
                                for predicate, rows in pending.items():
                                    inserted += store.insert_rows(
                                        predicate, rows, round_number
                                    )
                                pending.clear()
                                pending_rows = 0
                                _maybe_kill(
                                    "storechase.kill_midround", round_number
                                )
                        for predicate, rows in pending.items():
                            inserted += store.insert_rows(
                                predicate, rows, round_number
                            )
                        if pending:
                            _maybe_kill("storechase.kill_midround", round_number)
            except _RoundInterrupt as stop:
                # Abandon the round wholesale: rows inserted so far are
                # rolled back, so disk holds exactly the last complete
                # round (Observation 8 makes the re-run exact).
                store.rollback()
                stats.record_round(
                    round=round_number,
                    aborted=True,
                    total_atoms=total,
                    seconds=round(time.perf_counter() - round_started, 6),
                )
                interrupted = stop.reason
                break
            total += inserted
            dedup_hits = produced_rows - inserted
            counters["chase.rounds"] += 1
            counters["chase.matches"] += matches
            counters["chase.atoms_produced"] += inserted
            counters["chase.dedup_hits"] += dedup_hits
            if inserted:
                rounds_run = round_number
            else:
                terminated = True
            stats.record_round(
                round=round_number,
                matches=matches,
                atoms_produced=inserted,
                dedup_hits=dedup_hits,
                new_terms=counters["store.terms_interned"] - terms_before,
                total_atoms=total,
                seconds=round(time.perf_counter() - round_started, 6),
            )
            # The round's facts and the updated chase state commit as ONE
            # transaction — the SIGKILL-atomicity the chaos suite pins.
            _persist_state(store, rounds_run, terminated, stats, commit=False)
            _maybe_kill("storechase.kill", round_number)
            store.commit()
            if terminated:
                break
            if total > budget.max_atoms:
                if budget.on_exceeded == "raise":
                    raise ChaseBudgetExceeded(
                        f"store chase exceeded {budget.max_atoms} atoms after "
                        f"{rounds_run} rounds"
                    )
                break
        if interrupted is not None:
            note_interruption(stats, interrupted, budget, rounds_run)

    return StoreChaseResult(
        store=store,
        rounds_run=rounds_run,
        terminated=terminated,
        atom_count=total,
        stats=stats,
    )


def resume_store_chase(
    store: SQLiteStore,
    theory: "Theory | None" = None,
    budget: "ChaseBudget | None" = None,
    cancel: "CancellationToken | None" = None,
) -> StoreChaseResult:
    """Continue a persisted store chase (``theory`` defaults to the stored one)."""
    if store.get_meta("storechase.schema") is None:
        raise StoreChaseError(f"{store!r} holds no store-chase state")
    if theory is None:
        from ..logic.parser import parse_theory

        theory = parse_theory(
            store.get_meta("storechase.theory", ""), name="storechase"
        )
    return chase_into_store(theory, None, store, budget=budget, cancel=cancel)
