"""Compile CQs / UCQ rewritings to SQL over a :class:`SQLiteStore`.

This is the pass that makes ``backend="sqlite"`` answer queries inside
SQLite's join engine.  Each conjunctive query becomes one SELECT-join:

* every body atom contributes a table alias in the FROM clause;
* a **repeated variable** becomes a join equality (self-joins included:
  ``E(x, x)`` compiles to ``t0.a0 = t0.a1``);
* a **constant** (or ground Skolem term) becomes a WHERE equality against
  its interned dictionary id — a constant the store never interned makes
  the disjunct provably empty without touching SQL;
* the **answer tuple** becomes the projection, ``SELECT DISTINCT``-ed,
  repeating a column when the tuple repeats a variable (``q(v, v)``);
* a UCQ becomes the ``UNION`` of its compiled disjuncts, executed as one
  statement; disjuncts over predicates the store has no facts for are
  dropped at compile time.

Boolean queries short-circuit instead: each disjunct compiles to a
``SELECT 1 ... LIMIT 1`` probe, evaluated until one hits.

The same builder also serves the store-backed chase
(:mod:`repro.storage.chasestore`): a rule body is compiled with its
variables as the projection and per-alias *round bounds* implementing
semi-naive evaluation (pivot pinned to the delta round, earlier atoms to
strictly older rounds).

Every execution is accounted in the store's telemetry:
``store.sql_queries`` statements run, ``store.rows_scanned`` result rows
fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.atoms import Atom
from ..logic.query import ConjunctiveQuery, UnionOfCQs
from ..logic.terms import Term, Variable
from .sqlite import SQLiteStore

# A per-alias round restriction for semi-naive chase evaluation:
# ("eq", r) pins the alias to round r, ("lt", r) to rounds < r.
RoundBound = "tuple[str, int] | None"


@dataclass(frozen=True)
class CompiledSelect:
    """One executable SELECT: SQL text plus resolved term-id params."""

    sql: str
    params: tuple[int, ...]
    arity: int


def build_select(
    atoms: Sequence[Atom],
    select_vars: Sequence[Variable],
    store: SQLiteStore,
    round_bounds: "Sequence[RoundBound] | None" = None,
    limit_one: bool = False,
    distinct: bool = True,
) -> CompiledSelect | None:
    """Compile a conjunction of atoms into a SELECT over the store.

    Returns ``None`` when the conjunction is provably empty against this
    store (a predicate with no fact table, or a ground term never
    interned).  ``select_vars`` orders the projection; with none and
    ``limit_one`` the statement is an existence probe (``SELECT 1 ...
    LIMIT 1``).  ``distinct=False`` drops the DISTINCT (the chase wants
    raw sigma rows, which already biject with homomorphisms when every
    body variable is projected).
    """
    froms: list[str] = []
    where: list[str] = []
    params: list[int] = []
    first_seen: dict[Variable, str] = {}
    for index, item in enumerate(atoms):
        table = store.table_for(item.predicate)
        if table is None:
            return None
        alias = f"t{index}"
        froms.append(f"{table} AS {alias}")
        for position, term in enumerate(item.args):
            column = f"{alias}.a{position}"
            if isinstance(term, Variable):
                bound = first_seen.get(term)
                if bound is None:
                    first_seen[term] = column
                elif bound != column:
                    where.append(f"{column} = {bound}")
                continue
            if not term.is_ground():
                raise ValueError(
                    f"cannot compile non-ground argument {term!r} (function "
                    "terms over variables are not conjunctive-query slots)"
                )
            term_id = store.term_id(term)
            if term_id is None:
                return None  # never-interned constant: no fact can match
            where.append(f"{column} = ?")
            params.append(term_id)
        if round_bounds is not None and round_bounds[index] is not None:
            kind, bound_round = round_bounds[index]
            operator = {"eq": "=", "lt": "<", "le": "<="}[kind]
            where.append(f"{alias}.round {operator} ?")
            params.append(bound_round)
    columns = []
    for var in select_vars:
        column = first_seen.get(var)
        if column is None:
            raise ValueError(f"projected variable {var!r} does not occur in the body")
        columns.append(column)
    where_sql = f" WHERE {' AND '.join(where)}" if where else ""
    from_sql = ", ".join(froms)
    if columns:
        keyword = "SELECT DISTINCT" if distinct else "SELECT"
        sql = f"{keyword} {', '.join(columns)} FROM {from_sql}{where_sql}"
    else:
        sql = f"SELECT 1 FROM {from_sql}{where_sql}"
        if limit_one:
            sql += " LIMIT 1"
    return CompiledSelect(sql=sql, params=tuple(params), arity=len(columns))


@dataclass(frozen=True)
class CompiledQuery:
    """A UCQ (or single CQ) compiled against one store.

    ``selects`` holds the non-empty disjuncts; ``boolean`` selects the
    execution mode (existence probes vs one UNION statement).  Compiled
    objects are store-specific (table names, interned constant ids) and
    are cached per query shape by ``OMQASession``.
    """

    selects: tuple[CompiledSelect, ...]
    boolean: bool
    arity: int

    def union_sql(self) -> tuple[str, tuple[int, ...]]:
        """The single UNION statement across all compiled disjuncts."""
        sql = " UNION ".join(select.sql for select in self.selects)
        params: tuple[int, ...] = sum(
            (select.params for select in self.selects), ()
        )
        return sql, params


def compile_cq(query: ConjunctiveQuery, store: SQLiteStore) -> CompiledSelect | None:
    """Compile one CQ: answer variables become the projection."""
    return build_select(
        query.atoms,
        query.answer_vars,
        store,
        limit_one=query.is_boolean(),
    )


def compile_ucq(
    ucq: "UnionOfCQs | ConjunctiveQuery", store: SQLiteStore
) -> CompiledQuery:
    """Compile a UCQ against ``store``, dropping provably-empty disjuncts."""
    disjuncts = (
        (ucq,) if isinstance(ucq, ConjunctiveQuery) else tuple(ucq.disjuncts())
    )
    if not disjuncts:
        return CompiledQuery(selects=(), boolean=True, arity=0)
    boolean = disjuncts[0].is_boolean()
    selects = []
    for disjunct in disjuncts:
        compiled = compile_cq(disjunct, store)
        if compiled is not None:
            selects.append(compiled)
    return CompiledQuery(
        selects=tuple(selects),
        boolean=boolean,
        arity=len(disjuncts[0].answer_vars),
    )


def execute_compiled(
    compiled: CompiledQuery, store: SQLiteStore
) -> set[tuple[Term, ...]]:
    """Run a compiled query; decode id rows back into term tuples.

    Boolean queries probe disjunct by disjunct and stop at the first
    witness; non-boolean queries run as one UNION statement so the
    cross-disjunct deduplication happens inside SQLite too.
    """
    store.flush()
    counters = store.stats.counters
    if not compiled.selects:
        return set()
    if compiled.boolean:
        for select in compiled.selects:
            row = store._select(select.sql, select.params).fetchone()
            if row is not None:
                counters["store.rows_scanned"] += 1
                return {()}
        return set()
    sql, params = compiled.union_sql()
    answers: set[tuple[Term, ...]] = set()
    for row in store._select(sql, params):
        counters["store.rows_scanned"] += 1
        answers.add(tuple(store.term_by_id(term_id) for term_id in row))
    return answers


def evaluate_ucq_sql(
    ucq: "UnionOfCQs | ConjunctiveQuery", store: SQLiteStore
) -> set[tuple[Term, ...]]:
    """Compile and run in one go (the no-cache convenience path)."""
    return execute_compiled(compile_ucq(ucq, store), store)
