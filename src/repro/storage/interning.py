"""Shared term-interning machinery for id-native fact stores.

Both the SQLite store and the in-RAM columnar store keep a **term
dictionary**: every term — constant, variable (instances may legally
contain variables, see Observation 31) or Skolem function term — is
assigned one integer id and referenced by that id everywhere else.
Identity is structural, keyed on ``(kind, payload)``:

``("c", name)``
    a constant;
``("v", name)``
    a variable;
``("f", json([functor, child_ids]))``
    a function term over the *child ids*, so deep Skolem trees cost
    O(1) per node, not O(depth) per mention.

Alongside the payload each entry carries ``display``, the term's repr,
so fact reprs — and hence :func:`~repro.storage.base.content_digest`
checksums — render straight from the dictionary without rebuilding
Python terms.  Because both backends intern through this one module,
equal facts produce equal digests regardless of backend.

:class:`TermInterningMixin` implements the shared surface
(``intern_term``/``intern_function``/``term_id``/``term_by_id``/
``display_of``) over three storage primitives a concrete store
provides:

``_dict_lookup(kind, payload)``
    the id of an existing entry, or ``None``;
``_dict_insert(kind, payload, display)``
    append a new entry (the caller has already checked absence) and
    return its id, counting it under ``store.terms_interned``;
``_dict_fetch(term_id)``
    the ``(kind, payload, display)`` row for an id, or ``None``.

The mixin maintains the Python-side caches in front of those
primitives; ``_trim_term_cache`` lets a durable backend bound them
(SQLite caps at 500k entries) while the columnar store — whose caches
*are* the storage — leaves it a no-op.
"""

from __future__ import annotations

import json

from ..logic.terms import Constant, FunctionTerm, Term, Variable


class TermInterningMixin:
    """Structural term interning over a backend's dictionary primitives."""

    def _init_term_caches(self) -> None:
        self._ids_by_term: dict[Term, int] = {}
        self._terms_by_id: dict[int, Term] = {}
        self._ids_by_payload: dict[tuple[str, str], int] = {}
        self._display_by_id: dict[int, str] = {}
        # (functor, child_ids) -> id, so the id-native hot path skips the
        # json payload encoding on every re-derivation of a Skolem term.
        self._ids_by_function: dict[tuple, int] = {}

    # Concrete stores override when their caches must stay bounded.
    def _trim_term_cache(self, cache: dict) -> None:
        pass

    # ------------------------------------------------------------------
    # Storage primitives (implemented by the concrete store)
    # ------------------------------------------------------------------
    def _dict_lookup(self, kind: str, payload: str) -> "int | None":
        raise NotImplementedError

    def _dict_insert(self, kind: str, payload: str, display: str) -> int:
        raise NotImplementedError

    def _dict_fetch(self, term_id: int) -> "tuple[str, str, str] | None":
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared surface
    # ------------------------------------------------------------------
    def _intern_row(self, kind: str, payload: str, display: str) -> int:
        key = (kind, payload)
        cached = self._ids_by_payload.get(key)
        if cached is not None:
            return cached
        term_id = self._dict_lookup(kind, payload)
        if term_id is None:
            term_id = self._dict_insert(kind, payload, display)
        self._trim_term_cache(self._ids_by_payload)
        self._ids_by_payload[key] = term_id
        return term_id

    def intern_term(self, term: Term) -> int:
        """The dictionary id for ``term``, interning it if new."""
        cached = self._ids_by_term.get(term)
        if cached is not None:
            return cached
        if isinstance(term, Constant):
            term_id = self._intern_row("c", term.name, term.name)
        elif isinstance(term, Variable):
            term_id = self._intern_row("v", term.name, term.name)
        elif isinstance(term, FunctionTerm):
            child_ids = [self.intern_term(child) for child in term.args]
            payload = json.dumps([term.functor, child_ids])
            term_id = self._intern_row("f", payload, repr(term))
        else:
            raise TypeError(f"cannot intern {term!r} ({type(term).__name__})")
        self._trim_term_cache(self._ids_by_term)
        self._ids_by_term[term] = term_id
        return term_id

    def intern_function(self, functor: str, child_ids: "tuple[int, ...]") -> int:
        """Intern a function term given *child ids* — the id-native path.

        The store-backed and columnar chases build Skolem terms without
        ever materializing Python ``FunctionTerm`` objects; the display
        string is assembled from the children's displays.
        """
        key = (functor, child_ids)
        cached = self._ids_by_function.get(key)
        if cached is not None:
            return cached
        payload = json.dumps([functor, list(child_ids)])
        cached = self._ids_by_payload.get(("f", payload))
        if cached is None:
            inner = ",".join(self.display_of(child) for child in child_ids)
            cached = self._intern_row("f", payload, f"{functor}({inner})")
        self._trim_term_cache(self._ids_by_function)
        self._ids_by_function[key] = cached
        return cached

    def term_id(self, term: Term) -> "int | None":
        """The id of ``term`` if already interned, else ``None``.

        Query compilation uses this for constants: an un-interned
        constant cannot match any stored fact, so its disjunct is
        provably empty.
        """
        cached = self._ids_by_term.get(term)
        if cached is not None:
            return cached
        if isinstance(term, Constant):
            key = ("c", term.name)
        elif isinstance(term, Variable):
            key = ("v", term.name)
        elif isinstance(term, FunctionTerm):
            child_ids = []
            for child in term.args:
                child_id = self.term_id(child)
                if child_id is None:
                    return None
                child_ids.append(child_id)
            key = ("f", json.dumps([term.functor, child_ids]))
        else:
            raise TypeError(f"cannot look up {term!r}")
        cached = self._ids_by_payload.get(key)
        if cached is None:
            cached = self._dict_lookup(*key)
            if cached is None:
                return None
            self._trim_term_cache(self._ids_by_payload)
            self._ids_by_payload[key] = cached
        self._trim_term_cache(self._ids_by_term)
        self._ids_by_term[term] = cached
        return cached

    def term_by_id(self, term_id: int) -> Term:
        """Decode a dictionary id back to a Python term."""
        cached = self._terms_by_id.get(term_id)
        if cached is not None:
            return cached
        row = self._dict_fetch(term_id)
        if row is None:
            raise KeyError(f"no term with id {term_id}")
        kind, payload, _display = row
        if kind == "c":
            term: Term = Constant(payload)
        elif kind == "v":
            term = Variable(payload)
        else:
            functor, child_ids = json.loads(payload)
            term = FunctionTerm(
                functor, tuple(self.term_by_id(child) for child in child_ids)
            )
        self._trim_term_cache(self._terms_by_id)
        self._terms_by_id[term_id] = term
        return term

    def display_of(self, term_id: int) -> str:
        """The repr text of a term id, served from the dictionary."""
        cached = self._display_by_id.get(term_id)
        if cached is not None:
            return cached
        row = self._dict_fetch(term_id)
        if row is None:
            raise KeyError(f"no term with id {term_id}")
        display = row[2]
        self._trim_term_cache(self._display_by_id)
        self._display_by_id[term_id] = display
        return display
