"""Chase checkpointing: persist ``Ch_i`` rounds, resume from disk.

A budget-stopped chase is a prefix ``Ch_0 ⊆ Ch_1 ⊆ ... ⊆ Ch_k`` of the
(possibly infinite) chase.  By Observation 8 and the determinism of
Skolem naming, continuing from the persisted ``Ch_k`` produces exactly
the rounds the uninterrupted chase would have — so a checkpoint is not a
best-effort snapshot but an *exact* suspension point:

* every fact is stored with its round tag (the ``round_added``
  partition survives the store round-trip, Skolem terms included — the
  interned term dictionary has no trouble with them, unlike the text
  serialization format);
* the run's telemetry is persisted alongside and restored via
  :meth:`repro.telemetry.Telemetry.from_dict`, so a
  checkpoint-restore-resume produces the same counters and per-round
  records as one uninterrupted run (modulo wall-clock seconds);
* the theory travels in :func:`repro.logic.serialize.dump_theory` form
  (rule labels are regenerated on load; engine behaviour never depends
  on them).

Not persisted: per-atom derivations (provenance).  A resumed run records
derivations for the atoms *it* produces; prefix provenance is
re-derivable by re-chasing when needed (``Appendix A`` enumerates all
derivations anyway — the recorded one is a choice, not ground truth).

Crash safety: :func:`save_checkpoint` writes facts and metadata in one
transaction (a crash mid-save rolls back to the previous checkpoint),
and :func:`save_checkpoint_atomic` additionally makes *file-level*
replacement atomic — write to a temp database, fsync, ``os.replace`` —
so the path named by the caller only ever holds a complete checkpoint,
whatever happens to the process.  :func:`load_checkpoint` turns a
corrupt or truncated database file into :class:`CheckpointError`
instead of a raw ``sqlite3`` exception.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path

from .. import faults
from ..chase.engine import ChaseBudget, ChaseResult, chase, resume
from ..logic.instance import Instance
from ..logic.serialize import dump_theory
from ..logic.tgd import Theory
from ..telemetry import Telemetry
from .sqlite import SQLiteStore

CHECKPOINT_SCHEMA = "repro-checkpoint/1"


class CheckpointError(RuntimeError):
    """The store does not hold a loadable checkpoint."""


def save_checkpoint(result: ChaseResult, store: SQLiteStore) -> None:
    """Persist a chase result's rounds and stats into ``store``.

    Facts are written round-tagged with batched ``INSERT OR IGNORE``, so
    saving a resumed result over its own earlier checkpoint extends the
    store in place (the shared prefix keeps its original tags).

    The facts and every ``checkpoint.*`` key commit as **one**
    transaction: a crash mid-save rolls the store back to its previous
    state, never to facts with stale (or missing) metadata.
    """
    for round_number, added in enumerate(result.round_added):
        for item in added:
            store.buffer(item, round_=round_number)
    store._flush_pending()
    store.set_meta("checkpoint.schema", CHECKPOINT_SCHEMA, commit=False)
    store.set_meta("checkpoint.theory", dump_theory(result.theory), commit=False)
    store.set_meta("checkpoint.rounds", str(result.rounds_run), commit=False)
    store.set_meta(
        "checkpoint.terminated", "1" if result.terminated else "0", commit=False
    )
    store.set_meta(
        "checkpoint.stats", json.dumps(result.stats.as_dict()), commit=False
    )
    store.commit()


def save_checkpoint_atomic(result: ChaseResult, path: "str | Path") -> None:
    """Save a checkpoint so ``path`` never holds a partial database.

    The checkpoint is written to a temp file next to ``path``, fsynced,
    and moved into place with ``os.replace`` — POSIX-atomic, so readers
    (and a machine losing power) see either the old complete checkpoint
    or the new complete one, nothing in between.  The ``checkpoint.crash``
    fault kills the process between the temp write and the rename; the
    chaos suite pins that ``path`` is untouched afterwards.  A killed
    process may leave a pid-suffixed ``*.tmp.*`` file behind — harmless
    debris, overwritten or ignorable, never confused for ``path``.
    """
    target = Path(path)
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    try:
        with SQLiteStore(tmp) as scratch:
            save_checkpoint(result, scratch)
        # The store is closed (WAL folded back into the main file);
        # fsync the database bytes before the rename makes them visible.
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        if faults.active() and faults.fire("checkpoint.crash"):
            os._exit(70)
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()


def open_checkpoint_store(path: "str | Path", **store_kwargs) -> SQLiteStore:
    """Open ``path`` as a checkpoint store, diagnosing unreadable files.

    A truncated or corrupted database file (half-copied checkpoint,
    disk-full debris) surfaces as :class:`CheckpointError` with the
    path named, instead of a bare ``sqlite3.DatabaseError`` from deep
    inside the schema bootstrap — the CLI turns this into a clean
    ``exit 2`` diagnostic.
    """
    try:
        return SQLiteStore(path, **store_kwargs)
    except sqlite3.DatabaseError as error:
        raise CheckpointError(
            f"{str(path)!r} is not a readable SQLite database: {error}"
        ) from error


def load_checkpoint(
    store: SQLiteStore, theory: Theory | None = None
) -> ChaseResult:
    """Rebuild a :class:`ChaseResult` from a checkpointed store.

    ``theory`` overrides the persisted rule text (useful to keep the
    original ``Theory`` object identity and its prepared-rule cache);
    when omitted, the theory is re-parsed from the checkpoint.
    """
    try:
        schema = store.get_meta("checkpoint.schema")
    except sqlite3.DatabaseError as error:
        raise CheckpointError(
            f"{store!r} is not a readable checkpoint database: {error}"
        ) from error
    if schema is None:
        raise CheckpointError(f"{store!r} holds no checkpoint")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(f"unsupported checkpoint schema {schema!r}")
    if theory is None:
        from ..logic.parser import parse_theory

        theory = parse_theory(
            store.get_meta("checkpoint.theory", ""), name="checkpoint"
        )
    rounds = int(store.get_meta("checkpoint.rounds", "0"))
    round_added = [store.atoms_in_round(number) for number in range(rounds + 1)]
    current = Instance()
    for added in round_added:
        current.update(added)
    stats_text = store.get_meta("checkpoint.stats")
    stats = (
        Telemetry.from_dict(json.loads(stats_text)) if stats_text else Telemetry()
    )
    return ChaseResult(
        theory=theory,
        base=Instance(round_added[0]),
        instance=current,
        round_added=round_added,
        terminated=store.get_meta("checkpoint.terminated") == "1",
        derivations={},
        stats=stats,
    )


def checkpoint_chase(
    theory: Theory,
    base: Instance,
    store: SQLiteStore,
    budget: ChaseBudget | None = None,
    **chase_kwargs,
) -> ChaseResult:
    """Chase and persist in one call (the CLI's ``--db`` path)."""
    result = chase(theory, base, budget=budget, **chase_kwargs)
    save_checkpoint(result, store)
    return result


def resume_from_checkpoint(
    store: SQLiteStore,
    extra_rounds: int,
    budget: ChaseBudget | None = None,
    theory: Theory | None = None,
    save: bool = True,
) -> ChaseResult:
    """Continue a budget-stopped chase from its persisted prefix.

    Loads the checkpoint, runs :func:`repro.chase.engine.resume` for
    ``extra_rounds`` more rounds and (by default) writes the extended
    checkpoint back.  The atoms and counters of checkpoint-resume equal
    those of one uninterrupted run — pinned by
    ``tests/test_storage_checkpoint.py``.
    """
    loaded = load_checkpoint(store, theory=theory)
    extended = resume(loaded, extra_rounds, budget=budget)
    if save:
        save_checkpoint(extended, store)
    return extended
