"""The columnar chase kernel: hash-join rule application over term ids.

This is the executor behind ``chase(backend="columnar")`` — the default
engine.  Where :class:`~repro.chase.engine.SequentialRoundExecutor`
backtracks over Python ``Atom``/``Term`` objects,
:class:`ColumnarRoundExecutor` mirrors the current instance into a
:class:`~repro.storage.columnar.ColumnarStore` and evaluates every
*datalog-shaped* rule body as an index-nested-loop hash join over flat
tuples of interned integer ids: per-level candidates come from the
smallest per-position index bucket the current bindings allow, variable
bindings are plain ``list`` slots, and Skolem terms are interned id-
natively (:meth:`intern_function`) on first derivation — Python term
objects are only built for the genuinely *new* atoms of a round, which
is what makes deep-Skolem instances cheap (per-atom object overhead was
the dominating cost, see ``docs/performance.md``).

Semantics are the object engine's, exactly:

* the planner's static join orders (:class:`~repro.chase.planner.
  RulePlan`) are consumed unchanged — base order for full evaluation,
  one pivot order per delta-restricted search, with the same
  relevance/pivot pruning and the same ``plan.*`` counter accounting;
* each pivot search restricts exactly one body atom to the round's
  delta, so the multiset of matches per rule — and hence
  ``chase.matches`` / ``chase.dedup_hits`` — is identical to the
  backtracking engine's (Skolem naming determinism, Observation 8, then
  gives identical atoms);
* rules the kernel cannot shape — empty bodies, universal head
  variables (the ``T_d`` family), non-ground oddities — fall back to
  :func:`~repro.chase.engine._round_matches` verbatim, within the same
  round.

Telemetry: join effort lands in the shared ``hom.*`` counters (the
kernel *is* the homomorphism search, columnar); ``columnar.rounds`` /
``columnar.rules`` / ``columnar.fallback_rules`` / ``columnar.matches``
/ ``columnar.atoms_produced`` report how much of the chase the kernel
carried.  See ``docs/architecture.md`` §9.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..logic.atoms import Atom
from ..logic.homomorphism import (
    _CLASHES,
    _ESTIMATED,
    _NODES,
    _SCANNED,
    _flush_search_effort,
    compile_query_patterns,
    plan_join,
)
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery, UnionOfCQs
from ..logic.signature import Predicate
from ..logic.terms import FunctionTerm, Term, Variable
from ..storage.columnar import ColumnarStore
from ..telemetry import Telemetry
from .engine import (
    Derivation,
    RoundOutcome,
    _PreparedRule,
    _round_matches,
    _RoundInterrupt,
)
from .planner import CONTROL_CHECK_STRIDE

_EMPTY: tuple = ()


class _CompiledRule:
    """One rule lowered to id-native slot programs.

    ``patterns[i]`` is ``(predicate, slots)`` with each slot a
    ``(is_var, value)`` pair — ``value`` a binding index for variables,
    an interned term id for constants.  ``heads`` carry ``("v", idx)``,
    ``("c", id)`` and ``("f", functor, child_slots)`` entries; the
    latter intern Skolem terms from child ids without building
    ``FunctionTerm`` objects.  Join orders are the planner's, with
    identity/pivot-first fallbacks where the plan has none (``planned``
    flags keep the ``plan.plans_reused`` accounting faithful).
    """

    __slots__ = (
        "rule",
        "var_count",
        "patterns",
        "base_order",
        "base_planned",
        "pivot_orders",
        "pivot_planned",
        "heads",
        "sigma_order",
    )


def _compile_rule(
    prepared: _PreparedRule, store: ColumnarStore
) -> "_CompiledRule | None":
    """Lower a prepared rule for the kernel; ``None`` when out of shape."""
    rule = prepared.skolemized.rule
    plan = prepared.plan
    if not rule.body or plan.universal:
        return None
    var_index: dict[Variable, int] = {}
    patterns = []
    for item in rule.body:
        slots = []
        for term in item.args:
            if isinstance(term, Variable):
                slots.append(
                    (True, var_index.setdefault(term, len(var_index)))
                )
            elif term.is_ground():
                slots.append((False, store.intern_term(term)))
            else:
                return None
        patterns.append((item.predicate, tuple(slots)))
    heads = []
    for item in prepared.skolemized.head:
        head_slots = []
        for term in item.args:
            if isinstance(term, Variable):
                if term not in var_index:
                    return None
                head_slots.append(("v", var_index[term]))
            elif isinstance(term, FunctionTerm):
                children = []
                for child in term.args:
                    if isinstance(child, Variable):
                        if child not in var_index:
                            return None
                        children.append((True, var_index[child]))
                    elif child.is_ground():
                        children.append((False, store.intern_term(child)))
                    else:
                        return None
                head_slots.append(("f", term.functor, tuple(children)))
            elif term.is_ground():
                head_slots.append(("c", store.intern_term(term)))
            else:
                return None
        heads.append((item.predicate, tuple(head_slots)))
    count = len(patterns)
    join = plan.join
    compiled = _CompiledRule()
    compiled.rule = rule
    compiled.var_count = len(var_index)
    compiled.patterns = tuple(patterns)
    compiled.base_order = (
        join.base_order if join.base_order is not None else tuple(range(count))
    )
    compiled.base_planned = join.base_order is not None
    pivot_orders = []
    pivot_planned = []
    for pivot in range(count):
        order = join.pivot_orders[pivot]
        if order is None:
            order = (pivot,) + tuple(i for i in range(count) if i != pivot)
        pivot_orders.append(order)
        pivot_planned.append(join.pivot_orders[pivot] is not None)
    compiled.pivot_orders = tuple(pivot_orders)
    compiled.pivot_planned = tuple(pivot_planned)
    compiled.heads = tuple(heads)
    compiled.sigma_order = tuple(
        (var, index)
        for var, index in sorted(var_index.items(), key=lambda kv: kv[0].name)
    )
    return compiled


def _join(
    relations: dict,
    patterns: tuple,
    order: "tuple[int, ...]",
    pivot: "int | None",
    delta_rows: "dict | None",
    binding: list,
    effort: "list[int] | None",
) -> Iterator[list]:
    """Index-nested-loop join; yields the shared ``binding`` list.

    Mirrors ``homomorphism._search`` frame-for-frame, over id rows: one
    frame per expanded pattern, candidates from the smallest index
    bucket among bound positions (the pattern at ``pivot`` draws from
    ``delta_rows`` instead — the semi-naive restriction).  The caller
    must consume each yield before advancing and must not mutate the
    relations mid-search.
    """
    depth = len(order)
    track = effort is not None
    # One frame per level: [candidate iterator, slots, bound indexes].
    stack: list[list] = []
    descend = True
    while True:
        if descend:
            index = order[len(stack)]
            predicate, slots = patterns[index]
            if index == pivot:
                candidates: Iterable[tuple] = delta_rows.get(predicate, _EMPTY)
                count = len(candidates)  # type: ignore[arg-type]
            else:
                relation = relations.get(predicate)
                if relation is None:
                    candidates = _EMPTY
                    count = 0
                else:
                    best = None
                    buckets = []
                    bound_ids = []
                    dead = False
                    for position, (is_var, value) in enumerate(slots):
                        term_id = binding[value] if is_var else value
                        bound_ids.append(term_id)
                        if term_id is None:
                            continue
                        bucket = relation.indexes[position].get(term_id)
                        if not bucket:
                            dead = True
                            break
                        buckets.append(bucket)
                        if best is None or len(bucket) < len(best):
                            best = bucket
                    if dead:
                        candidates = _EMPTY
                    elif best is None:
                        candidates = relation.rows
                    elif len(buckets) == len(slots):
                        # Every position is pinned: membership, not a scan.
                        row = tuple(bound_ids)
                        candidates = (row,) if row in relation.rows else _EMPTY
                    elif len(buckets) > 1 and len(best) > 8:
                        # Several pinned positions with big buckets —
                        # intersect at C speed before the Python scan.
                        candidates = best.intersection(
                            *(b for b in buckets if b is not best)
                        )
                    else:
                        candidates = best
                    count = len(candidates)
            if track:
                effort[_NODES] += 1
                effort[_ESTIMATED] += count
            stack.append([iter(candidates), slots, None])
            descend = False
            continue
        frame = stack[-1]
        added = frame[2]
        if added is not None:
            for value in added:
                binding[value] = None
            frame[2] = None
        slots = frame[1]
        matched = False
        for row in frame[0]:
            if track:
                effort[_SCANNED] += 1
            adds: list[int] = []
            ok = True
            for fact_id, (is_var, value) in zip(row, slots):
                if is_var:
                    bound = binding[value]
                    if bound is None:
                        binding[value] = fact_id
                        adds.append(value)
                    elif bound != fact_id:
                        ok = False
                        break
                elif value != fact_id:
                    ok = False
                    break
            if not ok:
                for value in adds:
                    binding[value] = None
                if track:
                    effort[_CLASHES] += 1
                continue
            frame[2] = adds
            matched = True
            break
        if not matched:
            stack.pop()
            if not stack:
                return
            continue
        if len(stack) == depth:
            yield binding
        else:
            descend = True


class ColumnarRoundExecutor:
    """A drop-in ``run_round`` executor running the columnar kernel.

    Owns a :class:`ColumnarStore` mirroring the engine's current
    instance: the round loop's ``sync`` argument (the atoms it applied
    since the previous call) is replayed into the store at the top of
    each round, so the id-side relations and the object-side
    ``Instance`` stay in lock-step without ever re-encoding the whole
    instance.

    Abandoning a round mid-flight (``control`` hit, see
    :class:`~repro.chase.engine._RunControl`) is safe by construction:
    the store only ever receives atoms the engine already applied, and
    the partial ``pending`` production of an interrupted round is never
    synced back.
    """

    control = None

    def __init__(
        self,
        prepared: "tuple[_PreparedRule, ...]",
        base: Iterable[Atom],
        telemetry: Telemetry,
    ) -> None:
        self.prepared = prepared
        self.telemetry = telemetry
        # The mirror store keeps its own private stats: its write/intern
        # traffic is an executor implementation detail, and folding it
        # into the chase telemetry would make otherwise identical runs
        # (one-shot vs checkpoint-resumed) disagree on store.* counters.
        self.store = ColumnarStore()
        self.compiled = tuple(
            _compile_rule(rule, self.store) for rule in prepared
        )
        self.store.add_many(base, round_=0)
        # Rows produced last round, keyed by atom, awaiting the engine's
        # decision (applied atoms arrive back through ``sync``).
        self._pending: dict[Atom, tuple[Predicate, tuple]] = {}
        self._round = 0

    @property
    def supported_rules(self) -> int:
        return sum(1 for compiled in self.compiled if compiled is not None)

    def run_round(
        self,
        current: Instance,
        sync: Iterable[Atom],
        delta: "Instance | None",
        delta_terms: "set[Term] | None",
        domain_pool: "list[Term] | None",
    ) -> RoundOutcome:
        store = self.store
        telemetry = self.telemetry
        counters = telemetry.counters
        pending = self._pending
        sync_rows: dict[Atom, tuple[Predicate, tuple]] = {}
        for atom in sync:
            entry = pending.pop(atom, None)
            if entry is None:  # e.g. a resume seeded outside this executor
                entry = (atom.predicate, store._encode(atom))
            sync_rows[atom] = entry
            store.insert_row(entry[0], entry[1], self._round)
        pending.clear()
        self._round += 1

        delta_rows: "dict[Predicate, list[tuple]] | None" = None
        delta_predicates = None
        if delta is not None:
            # The delta is (almost always) exactly what just came through
            # ``sync`` — reuse those rows instead of re-encoding terms.
            delta_predicates = delta.predicates_with_facts()
            delta_rows = {}
            for atom in delta:
                entry = sync_rows.get(atom)
                row = entry[1] if entry is not None else store._encode(atom)
                delta_rows.setdefault(atom.predicate, []).append(row)

        relations = store._relations
        term_by_id = store.term_by_id
        intern_function = store.intern_function
        produced: dict[Atom, Derivation] = {}
        produced_rows: dict[Predicate, set] = {}
        matches = 0
        dedup_hits = 0
        columnar_matches = 0
        columnar_atoms = 0
        columnar_rules = 0
        fallback_rules = 0
        effort = [0, 0, 0, 0]
        control = self.control
        stride = CONTROL_CHECK_STRIDE - 1
        for prepared, compiled in zip(self.prepared, self.compiled):
            if control is not None:
                reason = control.interruption()
                if reason is not None:
                    raise _RoundInterrupt(reason)
            if compiled is None:
                # Out-of-shape rule: the object engine handles it within
                # the same round, with identical counter accounting.
                fallback_rules += 1
                skolem_head = prepared.skolemized.head
                for sigma in _round_matches(
                    prepared, current, delta, delta_terms, telemetry, domain_pool
                ):
                    matches += 1
                    if control is not None and not (matches & stride):
                        reason = control.interruption()
                        if reason is not None:
                            raise _RoundInterrupt(reason)
                    for new_atom in (
                        item.substitute(sigma) for item in skolem_head
                    ):
                        if new_atom in current or new_atom in produced:
                            dedup_hits += 1
                            continue
                        produced[new_atom] = Derivation(
                            prepared.skolemized.rule,
                            tuple(
                                sorted(
                                    sigma.items(), key=lambda kv: kv[0].name
                                )
                            ),
                        )
                        row = store._encode(new_atom)
                        produced_rows.setdefault(
                            new_atom.predicate, set()
                        ).add(row)
                        pending[new_atom] = (new_atom.predicate, row)
                continue
            plan = prepared.plan
            if delta is not None and not plan.relevant(
                delta_predicates, delta_terms
            ):
                counters["plan.rules_skipped"] += 1
                counters["plan.nodes_saved"] += plan.search_count
                continue
            columnar_rules += 1
            patterns = compiled.patterns
            if delta is None:
                if compiled.base_planned:
                    counters["plan.plans_reused"] += 1
                searches = ((compiled.base_order, None),)
            else:
                chosen = []
                for index in range(len(patterns)):
                    if patterns[index][0] not in delta_predicates:
                        counters["plan.pivots_skipped"] += 1
                        counters["plan.nodes_saved"] += 1
                        continue
                    if compiled.pivot_planned[index]:
                        counters["plan.plans_reused"] += 1
                    chosen.append((compiled.pivot_orders[index], index))
                searches = tuple(chosen)
            binding: list = [None] * compiled.var_count
            heads = compiled.heads
            for order, pivot in searches:
                for bound in _join(
                    relations, patterns, order, pivot, delta_rows, binding, effort
                ):
                    matches += 1
                    columnar_matches += 1
                    if control is not None and not (matches & stride):
                        reason = control.interruption()
                        if reason is not None:
                            raise _RoundInterrupt(reason)
                    for head_predicate, head_slots in heads:
                        out = []
                        for slot in head_slots:
                            kind = slot[0]
                            if kind == "v":
                                out.append(bound[slot[1]])
                            elif kind == "c":
                                out.append(slot[1])
                            else:
                                out.append(
                                    intern_function(
                                        slot[1],
                                        tuple(
                                            bound[value] if is_var else value
                                            for is_var, value in slot[2]
                                        ),
                                    )
                                )
                        row = tuple(out)
                        relation = relations.get(head_predicate)
                        if relation is not None and row in relation.rows:
                            dedup_hits += 1
                            continue
                        rows = produced_rows.get(head_predicate)
                        if rows is None:
                            rows = produced_rows[head_predicate] = set()
                        if row in rows:
                            dedup_hits += 1
                            continue
                        new_atom = Atom(
                            head_predicate,
                            tuple(term_by_id(t) for t in row),
                        )
                        produced[new_atom] = Derivation(
                            compiled.rule,
                            tuple(
                                (var, term_by_id(bound[index]))
                                for var, index in compiled.sigma_order
                            ),
                        )
                        rows.add(row)
                        pending[new_atom] = (head_predicate, row)
                        columnar_atoms += 1
        if effort[_NODES] or effort[_SCANNED]:
            _flush_search_effort(telemetry, effort)
        counters["columnar.rounds"] += 1
        counters["columnar.rules"] += columnar_rules
        if fallback_rules:
            counters["columnar.fallback_rules"] += fallback_rules
        counters["columnar.matches"] += columnar_matches
        counters["columnar.atoms_produced"] += columnar_atoms
        return RoundOutcome(
            produced=produced, matches=matches, dedup_hits=dedup_hits
        )

    def close(self) -> None:
        self.store.close()


def make_columnar_executor(
    prepared: "tuple[_PreparedRule, ...]",
    base: Iterable[Atom],
    telemetry: Telemetry,
) -> "ColumnarRoundExecutor | None":
    """A columnar executor for ``prepared``, or ``None`` when pointless.

    When no rule is datalog-shaped (e.g. the pure-``T_d`` theories of
    Section 5) the kernel would only mirror writes for nothing; the
    engine then keeps the plain sequential executor.
    """
    executor = ColumnarRoundExecutor(prepared, base, telemetry)
    if not executor.supported_rules:
        executor.close()
        return None
    return executor


# ----------------------------------------------------------------------
# UCQ evaluation over a columnar store
# ----------------------------------------------------------------------
def _compile_query(cq: ConjunctiveQuery, store: ColumnarStore):
    """Lower one CQ; ``None`` when a constant is provably absent."""
    var_index: dict[Variable, int] = {}
    patterns = []
    for item in cq.atoms:
        slots = []
        for term in item.args:
            if isinstance(term, Variable):
                slots.append(
                    (True, var_index.setdefault(term, len(var_index)))
                )
            else:
                term_id = store.term_id(term)
                if term_id is None:
                    return None
                slots.append((False, term_id))
        patterns.append((item.predicate, tuple(slots)))
    order = plan_join(compile_query_patterns(cq.atoms)).base_order
    if order is None:
        order = tuple(range(len(patterns)))
    answer = tuple(var_index[var] for var in cq.answer_vars)
    return tuple(patterns), order, len(var_index), answer


def evaluate_ucq_columnar(
    query: "UnionOfCQs | ConjunctiveQuery", store: ColumnarStore
) -> set[tuple]:
    """All certain answers of a (U)CQ over a columnar store's facts.

    The id-native analogue of ``evaluate_ucq_sql``: each disjunct runs
    as one hash join over the store's relations, answers are decoded to
    term tuples once per distinct id row.  Boolean queries short-circuit
    on the first witness; disjuncts mentioning never-interned constants
    or absent predicates are pruned for free.
    """
    disjuncts = (
        query.disjuncts()
        if isinstance(query, UnionOfCQs)
        else (query,)
    )
    answers: set[tuple] = set()
    relations = store._relations
    for cq in disjuncts:
        compiled = _compile_query(cq, store)
        if compiled is None:
            continue
        patterns, order, var_count, answer = compiled
        binding: list = [None] * var_count
        boolean = not answer
        for bound in _join(
            relations, patterns, order, None, None, binding, None
        ):
            if boolean:
                return {()}
            answers.add(
                tuple(store.term_by_id(bound[index]) for index in answer)
            )
    return answers
