"""Static join planning for the chase hot path.

Every chase round asks, for every rule, "which homomorphisms of the body
touch the latest delta?".  The answer is a backtracking join
(:mod:`repro.logic.homomorphism`), and two of its costs are loop-invariant
per rule:

* **Atom ordering.**  The dynamic fewest-candidates selection re-scores
  every remaining body atom at every search node — O(|body|) bucket
  probes per node, quadratic along a match-tree path.  Rule bodies do not
  change between rounds, so the planner precomputes one
  variable-connectivity order per rule (and one per semi-naive pivot,
  starting from the delta-pinned atom) once per chase.  The shapes the
  rewritability literature leans on — guarded, sticky, loop-restricted
  bodies — are exactly the ones where such a static order is as good as
  the dynamic choice; orders that would expand an *unbound prefix* are
  rejected at plan time and those searches keep the dynamic fallback.
* **Relevance.**  A rule whose body predicates are disjoint from the
  delta's predicates (and which cannot fire through a universal head
  variable on a new domain term) has no semi-naive match this round; the
  planner's relevance check skips the join entirely.

Both are pure optimizations: the set of matches — and hence, by Skolem
determinism, the chase result atom-for-atom — is unchanged.  The
``plan.*`` telemetry counters make the savings observable:

``plan.rules_skipped``
    rules dropped by the per-round relevance check;
``plan.pivots_skipped``
    semi-naive pivot searches skipped because the pivot's predicate has
    no fact in the delta (counted in the search layer);
``plan.plans_reused``
    searches driven by a precomputed order instead of dynamic selection;
``plan.nodes_saved``
    a conservative estimate (one search root per skipped pivot or rule)
    of backtracking nodes never expanded.
"""

from __future__ import annotations

from dataclasses import dataclass

# How many work items (matches in the sequential/columnar executors,
# decoded result rows on the parallel coordinator, inserted rows in the
# store chase) an inner loop processes between deadline/cancellation
# checks.  A power of two: the executors test ``counter &
# (CONTROL_CHECK_STRIDE - 1)`` so the disabled-path cost stays one
# branch per item.  256 keeps the in-round response latency well under a
# millisecond on every bench workload while making the check cost
# unmeasurable (pinned by the ``fault_tolerance`` bench-guard scenario).
CONTROL_CHECK_STRIDE = 256

from ..logic.homomorphism import JoinPlan, plan_join
from ..logic.signature import Predicate
from ..logic.terms import Term, Variable
from ..logic.tgd import TGD


@dataclass(frozen=True)
class RulePlan:
    """Loop-invariant match structure for one rule, built once per chase.

    ``join`` carries the precomputed atom orders handed to the
    homomorphism search; ``body_predicates`` feeds the relevance check;
    ``universal`` is the rule's universal head variables in canonical
    order (they range over the active domain and make the rule relevant
    whenever the domain grew).  ``pivot_predicates[i]`` is the predicate
    of body atom ``i`` — the semi-naive pivot search ``i`` can only match
    when that predicate has facts in the delta, which both the search
    layer and the parallel work-item partitioner consult.
    """

    join: JoinPlan
    body_predicates: frozenset[Predicate]
    universal: tuple[Variable, ...]
    has_body: bool
    pivot_predicates: tuple[Predicate, ...] = ()

    def relevant(
        self, delta_predicates: set[Predicate], delta_terms: set[Term] | None
    ) -> bool:
        """Can this rule produce any semi-naive match this round?

        Body rules need a body predicate among the delta's predicates;
        rules with universal head variables additionally fire when the
        round invented new domain terms.  Rules with neither (e.g. the
        bodyless ``true -> exists x. R(x,x)`` loop rule after round one)
        are never relevant under semi-naive evaluation.
        """
        if self.has_body and not self.body_predicates.isdisjoint(delta_predicates):
            return True
        return bool(self.universal) and bool(delta_terms)

    @property
    def search_count(self) -> int:
        """How many pivot searches a non-skipped round would have run."""
        return max(1, len(self.join.pivot_orders))

    def shard_items(
        self,
        rule_index: int,
        delta_predicates: set[Predicate],
        delta_terms: set[Term] | None,
        shards: int,
    ) -> list[tuple]:
        """Partition this rule's semi-naive round work into items.

        An item is one independently evaluable unit of a round:

        * ``("pivot", rule, pivot, shard, shards)`` — the semi-naive
          search with body atom ``pivot`` pinned to the ``shard``-th of
          ``shards`` canonical slices of the delta (the slices partition
          the delta's facts, so the union of the shard searches is
          exactly the pinned-to-the-whole-delta search, each match
          produced once);
        * ``("universal", rule)`` — the round's universal-head-variable
          matches that grab a term new to the active domain.

        Pivots whose predicate has no fact in the delta are omitted,
        mirroring the skip in the sequential search layer.  The item
        tuples sort the same way the sequential engine enumerates them
        (rule, then pivot, then shard), which is what makes the parallel
        executor's merge deterministic.
        """
        items: list[tuple] = []
        if self.has_body and not self.body_predicates.isdisjoint(delta_predicates):
            for pivot, predicate in enumerate(self.pivot_predicates):
                if predicate not in delta_predicates:
                    continue
                for shard in range(shards):
                    items.append(("pivot", rule_index, pivot, shard, shards))
        if self.universal and delta_terms:
            items.append(("universal", rule_index))
        return items


def plan_rule(rule: TGD, body_patterns: tuple) -> RulePlan:
    """Precompute the :class:`RulePlan` for a rule's compiled body."""
    return RulePlan(
        join=plan_join(body_patterns),
        body_predicates=frozenset(item.predicate for item in rule.body),
        universal=tuple(sorted(rule.universal_head_variables(), key=lambda v: v.name)),
        has_body=bool(rule.body),
        pivot_predicates=tuple(item.predicate for item in rule.body),
    )
