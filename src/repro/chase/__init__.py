"""The chase: semi-oblivious Skolem engine, variants, provenance, termination.

Resource limits live on :class:`ChaseBudget` — the ``max_rounds=`` /
``max_atoms=`` kwargs accepted directly by :func:`chase` are deprecated.
A typical bounded run::

    from repro.chase import ChaseBudget, chase
    from repro.workloads.generators import edge_cycle
    from repro.workloads.theories import example42_tc

    result = chase(
        example42_tc(), edge_cycle(4), budget=ChaseBudget(max_rounds=10)
    )
    assert not result.terminated  # T_c never fixpoints; the budget returns

``ChaseBudget(on_exceeded="return")`` (the default) stops cleanly at the
budget; ``on_exceeded="raise"`` turns the same limit into a
:class:`ChaseBudgetExceeded`.

``chase(..., workers=N)`` runs each round on a process pool with a
deterministic merge; results are atom-for-atom identical to the
sequential engine (Skolem determinism, Observation 8).  See
``docs/performance.md`` for tuning guidance and the ``parallel.*``
telemetry counters.
"""

from .explain import DerivationNode, derivation_tree, explain, explain_answer
from .engine import (
    CancellationToken,
    ChaseBudget,
    ChaseBudgetExceeded,
    ChaseCancelled,
    ChaseResult,
    Derivation,
    chase,
    chase_to_fixpoint,
    resume,
)
from .provenance import (
    ancestor_support,
    ancestors,
    birth_atom,
    connected_parents,
    derivation_depths,
    frontier_of,
    invented_terms,
    minimal_support,
    parents,
    possible_ancestors,
    possible_parent_sets,
)
from .skolem import SkolemizedRule, skolemize
from .termination import (
    CoreTerminationWitness,
    all_instances_termination,
    core_termination,
    is_model,
    minimize_model,
    violations,
)
from .variants import VariantResult, oblivious_chase, restricted_chase

__all__ = [
    "CancellationToken",
    "ChaseBudget",
    "ChaseBudgetExceeded",
    "ChaseCancelled",
    "ChaseResult",
    "CoreTerminationWitness",
    "Derivation",
    "DerivationNode",
    "SkolemizedRule",
    "VariantResult",
    "all_instances_termination",
    "ancestor_support",
    "ancestors",
    "birth_atom",
    "chase",
    "chase_to_fixpoint",
    "resume",
    "connected_parents",
    "core_termination",
    "derivation_depths",
    "derivation_tree",
    "explain",
    "explain_answer",
    "frontier_of",
    "invented_terms",
    "is_model",
    "minimal_support",
    "minimize_model",
    "oblivious_chase",
    "parents",
    "possible_ancestors",
    "possible_parent_sets",
    "restricted_chase",
    "skolemize",
    "violations",
]
