"""The chase: semi-oblivious Skolem engine, variants, provenance, termination."""

from .explain import DerivationNode, derivation_tree, explain, explain_answer
from .engine import (
    ChaseBudget,
    ChaseBudgetExceeded,
    ChaseResult,
    Derivation,
    chase,
    chase_to_fixpoint,
    resume,
)
from .provenance import (
    ancestor_support,
    ancestors,
    birth_atom,
    connected_parents,
    derivation_depths,
    frontier_of,
    invented_terms,
    minimal_support,
    parents,
    possible_ancestors,
    possible_parent_sets,
)
from .skolem import SkolemizedRule, skolemize
from .termination import (
    CoreTerminationWitness,
    all_instances_termination,
    core_termination,
    is_model,
    minimize_model,
    violations,
)
from .variants import VariantResult, oblivious_chase, restricted_chase

__all__ = [
    "ChaseBudget",
    "ChaseBudgetExceeded",
    "ChaseResult",
    "CoreTerminationWitness",
    "Derivation",
    "DerivationNode",
    "SkolemizedRule",
    "VariantResult",
    "all_instances_termination",
    "ancestor_support",
    "ancestors",
    "birth_atom",
    "chase",
    "chase_to_fixpoint",
    "resume",
    "connected_parents",
    "core_termination",
    "derivation_depths",
    "derivation_tree",
    "explain",
    "explain_answer",
    "frontier_of",
    "invented_terms",
    "is_model",
    "minimal_support",
    "minimize_model",
    "oblivious_chase",
    "parents",
    "possible_ancestors",
    "possible_parent_sets",
    "restricted_chase",
    "skolemize",
    "violations",
]
