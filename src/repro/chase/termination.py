"""Termination properties of theories: FES / Core Termination (Section 5).

The key computable pieces:

* :func:`is_model` — does a finite fact set satisfy every TGD?  (The direct
  check used in the proof of Lemma 37: each body match must have a head
  witness with the frontier fixed and the existential equality pattern
  respected.)
* :func:`core_termination` — the semi-decision procedure for Definition 20.
  For n = 0, 1, ... it looks for a structure homomorphism ``h: Ch_{n+1} ->
  Ch_n`` that is the identity on ``dom(D)``.  Such an ``h`` exists iff some
  model ``M`` with ``D ⊆ M ⊆ Ch_n`` exists (universality gives one
  direction; the *eventual image* of ``h``, computed with the factorial
  trick from the second proof of Lemma 35, gives the other).  The first
  successful ``n`` is therefore exactly ``c_{T,D}`` of Definition 24.
* :func:`all_instances_termination` — Definition 21, via chase fixpoint.
* :func:`minimize_model` — greedy retract-minimization towards the
  smallest-cardinality ``Core(T, D)`` of Definition 24.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..logic.homomorphism import (
    apply_structure_homomorphism,
    find_structure_homomorphism,
    iter_query_homomorphisms,
    iter_structure_homomorphisms,
)
from ..logic.instance import Instance
from ..logic.terms import Term, Variable
from ..logic.tgd import TGD, Theory
from .engine import ChaseBudget, chase


def _head_witnessed(rule: TGD, sigma: Mapping[Variable, Term], instance: Instance) -> bool:
    """Is the (possibly multi-atom) head satisfied for this body match?

    The frontier variables are pinned to their ``sigma`` images; the
    existential variables may land anywhere, but repeated existentials must
    land on equal terms — exactly the condition spelled out in the proof of
    Lemma 37.
    """
    partial = {
        var: sigma[var]
        for var in rule.frontier()
        if var in sigma
    }
    for _ in iter_query_homomorphisms(rule.head, instance, partial):
        return True
    return False


def violations(instance: Instance, theory: Theory, limit: int = 10) -> list[tuple[TGD, dict]]:
    """Up to ``limit`` rule matches of ``theory`` unsatisfied in ``instance``."""
    found: list[tuple[TGD, dict]] = []
    for rule in theory:
        universal = tuple(sorted(rule.universal_head_variables(), key=lambda v: v.name))
        for body_match in iter_query_homomorphisms(rule.body, instance):
            assignments = [body_match]
            if universal:
                import itertools

                assignments = [
                    {**body_match, **dict(zip(universal, combo))}
                    for combo in itertools.product(sorted(instance.domain(), key=repr), repeat=len(universal))
                ]
            for sigma in assignments:
                if not _head_witnessed(rule, sigma, instance):
                    found.append((rule, dict(sigma)))
                    if len(found) >= limit:
                        return found
    return found


def is_model(instance: Instance, theory: Theory) -> bool:
    """``instance |= theory`` for a finite fact set."""
    return not violations(instance, theory, limit=1)


@dataclass
class CoreTerminationWitness:
    """A successful Core-Termination check on one instance.

    ``bound`` is ``c_{T,D}``; ``model`` is a fact set ``M`` with
    ``D ⊆ M ⊆ Ch_bound(T, D)`` and ``M |= T``; ``folding`` is the
    homomorphism ``Ch_{bound+1} -> M`` (identity on ``dom(M)``) it was
    extracted from.
    """

    bound: int
    model: Instance
    folding: dict[Term, Term]


def _eventual_image(
    structure: Instance, endo: dict[Term, Term]
) -> tuple[Instance, dict[Term, Term]]:
    """Fold ``structure`` through iterated applications of ``endo``.

    ``endo`` maps ``dom(structure)`` into itself.  Returns the eventual
    image ``E`` together with a homomorphism ``g`` with ``g(structure) = E``
    and ``g`` the identity on ``dom(E)`` — the permutation-power trick from
    the second proof of Lemma 35 (``h^{m!}``), computed via cycle structure
    instead of a literal factorial.
    """
    domain = structure.domain()
    step = {term: endo.get(term, term) for term in domain}

    # 1. Find the eventual image E: the decreasing chain domain ⊇ step(domain)
    #    ⊇ step²(domain) ⊇ ... stabilizes within |domain| steps.
    image = set(domain)
    settle = 0
    while True:
        next_image = {step[term] for term in image}
        if next_image == image:
            break
        image = next_image
        settle += 1

    # 2. On E, step restricts to a permutation; its lcm-of-cycle-lengths
    #    power is the identity there (the h^{m!} trick of Lemma 35).
    cycle_lengths: set[int] = set()
    visited: set[Term] = set()
    for start in image:
        if start in visited:
            continue
        length = 0
        walker = start
        while walker not in visited:
            visited.add(walker)
            walker = step[walker]
            length += 1
        if length:
            cycle_lengths.add(length)
    period = math.lcm(*cycle_lengths) if cycle_lengths else 1

    # 3. g = step^N with N ≥ settle and N ≡ 0 (mod period): g maps everything
    #    into E and is the identity on E.
    power = period * max(1, math.ceil(settle / period))
    final = {term: term for term in domain}
    for _ in range(power):
        final = {term: step[final[term]] for term in domain}
    folded = apply_structure_homomorphism(structure, final)
    return folded, final


def core_termination(
    theory: Theory,
    base: Instance,
    max_depth: int = 20,
    max_atoms: int = 100_000,
) -> CoreTerminationWitness | None:
    """Search for the Core-Termination bound ``c_{T,D}`` (Definition 24).

    Returns ``None`` when no witness is found within ``max_depth`` chase
    rounds — which means "unknown", not "no": Core Termination is
    undecidable in general (see DESIGN.md, Limitations).
    """
    result = chase(theory, base, budget=ChaseBudget(max_rounds=max_depth + 1, max_atoms=max_atoms))
    top = len(result.round_added) - 1
    for bound in range(top):
        lower = result.prefix(bound)
        upper = result.prefix(bound + 1)
        if len(upper) == len(lower):
            # Chase reached a fixpoint at `bound`: Ch_bound is itself a model.
            return CoreTerminationWitness(
                bound=bound,
                model=lower,
                folding={term: term for term in lower.domain()},
            )
        fixed = {term: term for term in base.domain()}
        hom = find_structure_homomorphism(upper, lower, fixed)
        if hom is None:
            continue
        model, folding = _eventual_image(upper, hom)
        if not base.issubset(model):
            raise AssertionError("folding failed to preserve the base instance")
        if not is_model(model, theory):
            raise AssertionError("eventual image is not a model; folding bug")
        return CoreTerminationWitness(bound=bound, model=model, folding=folding)
    if result.terminated:
        final = result.instance
        return CoreTerminationWitness(
            bound=result.rounds_run,
            model=final,
            folding={term: term for term in final.domain()},
        )
    return None


def all_instances_termination(
    theory: Theory, base: Instance, max_rounds: int = 50, max_atoms: int = 100_000
) -> int | None:
    """The least ``n`` with ``Ch(T,D) = Ch_n(T,D)``, or ``None`` (unknown)."""
    result = chase(theory, base, budget=ChaseBudget(max_rounds=max_rounds, max_atoms=max_atoms))
    if not result.terminated:
        return None
    return result.rounds_run


def minimize_model(
    model: Instance, keep: Instance | None = None, max_passes: int = 100
) -> Instance:
    """Greedy retract-minimization of a finite model.

    Repeatedly looks for an endomorphism that is the identity on ``keep``'s
    domain and misses at least one domain element, and replaces the model by
    its image.  The result is a retract of the input; by Observation 2 it
    still satisfies every theory the input satisfied, and it still contains
    ``keep`` (used with ``keep = D`` for Definition 24 cores).
    """
    fixed_terms = keep.domain() if keep is not None else set()
    current = model.copy()
    for _ in range(max_passes):
        shrunk = _shrink_once(current, fixed_terms)
        if shrunk is None:
            return current
        current = shrunk
    return current


def _shrink_once(current: Instance, fixed_terms: set[Term]) -> Instance | None:
    domain = sorted(current.domain(), key=repr)
    fixed = {term: term for term in fixed_terms if term in current.domain()}
    for dropped in domain:
        if dropped in fixed:
            continue
        for hom in iter_structure_homomorphisms(current, current, fixed):
            if hom.get(dropped) == dropped:
                continue
            if dropped in set(hom.values()):
                continue
            return apply_structure_homomorphism(current, hom)
    return None
