"""The semi-oblivious Skolem chase (Definition 6).

``Ch_0 = D`` and ``Ch_{i+1} = Ch_i + {appl(rho, sigma) : rho in T, sigma in
Hom(rho, Ch_i)}``.  The engine materializes the rounds breadth-first with
semi-naive evaluation: because Skolem naming is deterministic, a rule match
whose body already lay in ``Ch_{i-1}`` produced the very same atoms in round
``i``, so only matches touching the latest delta need to be re-derived —
the per-round semantics of Definition 6 is preserved exactly.

Rules with empty bodies are supported: a *universal* head variable (see
:class:`repro.logic.tgd.TGD`) ranges over the active domain, so the
``forall x (true -> exists z. R(x,z))`` rules of the theory ``T_d`` fire for
every element, including elements invented by earlier rounds.

The engine records one *derivation* ``(rule, sigma)`` per produced atom — a
parent function in the sense of Appendix A — from which
:mod:`repro.chase.provenance` reconstructs birth atoms, frontiers and
ancestor sets.

Resource limits are a :class:`ChaseBudget`; :func:`chase` and
:func:`resume` share one round loop (:func:`_run_rounds`), which carries a
:class:`~repro.telemetry.Telemetry` recording per-round counters (matches
attempted, atoms produced, dedup hits, delta sizes, wall time) surfaced as
``ChaseResult.stats``.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from ..logic.atoms import Atom
from ..logic.homomorphism import compile_query_patterns, iter_pattern_homomorphisms
from ..logic.instance import Instance
from ..logic.terms import Term, Variable
from ..logic.tgd import TGD, Theory
from ..telemetry import Telemetry
from .planner import RulePlan, plan_rule
from .skolem import SkolemizedRule, skolemize


class ChaseBudgetExceeded(RuntimeError):
    """Raised by :func:`chase` with ``on_exceeded='raise'`` when limits hit."""


class ChaseCancelled(ChaseBudgetExceeded):
    """Raised under ``on_exceeded='raise'`` when a run is cancelled.

    A subclass of :class:`ChaseBudgetExceeded` so existing overrun
    handlers keep working; catch this one specifically to tell a user
    interrupt apart from a resource overrun.
    """


class CancellationToken:
    """Cooperative cancellation signal for long-running engine calls.

    Pass one token as ``cancel=`` to :func:`chase` / :func:`resume` /
    :func:`repro.storage.chase_into_store` /
    :func:`repro.rewriting.answer` (or construct
    :class:`repro.rewriting.OMQASession` with it), then call
    :meth:`cancel` from any thread — typically a signal handler; the CLI
    wires SIGINT to exactly this.  The engine checks the token at round
    boundaries and on a stride inside long rounds, abandons the round in
    flight *without applying its partial production*, and stops per the
    budget's ``on_exceeded`` policy with the ``chase.cancelled`` counter
    set.  The surviving prefix is exact (Observation 8), so the run is
    resumable to the identical fixpoint.

    Tokens are one-shot and thread-safe; they do not reset.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, safe from signal handlers)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self.cancelled})"


class _RoundInterrupt(Exception):
    """Internal: an executor abandoned its round (deadline/cancellation).

    Never escapes :func:`_run_rounds`; ``reason`` is ``"cancelled"`` or
    ``"deadline"``.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _RunControl:
    """Deadline clock + cancellation token for one engine run.

    Built once at run start (the monotonic deadline is anchored there)
    and consulted at round boundaries by the round loop and on a stride
    (``planner.CONTROL_CHECK_STRIDE``) inside executors' work-item
    loops.  ``start`` returns ``None`` when there is nothing to watch,
    so uncontrolled runs pay a single ``is None`` check per round.
    """

    __slots__ = ("deadline_at", "token")

    def __init__(self, deadline_at: float | None, token: CancellationToken | None):
        self.deadline_at = deadline_at
        self.token = token

    @classmethod
    def start(
        cls, budget: ChaseBudget, token: "CancellationToken | None"
    ) -> "_RunControl | None":
        if budget.deadline_s is None and token is None:
            return None
        deadline_at = (
            None
            if budget.deadline_s is None
            else time.monotonic() + budget.deadline_s
        )
        return cls(deadline_at, token)

    def interruption(self) -> str | None:
        """``"cancelled"`` / ``"deadline"`` when the run must stop, else None."""
        token = self.token
        if token is not None and token.cancelled:
            return "cancelled"
        deadline_at = self.deadline_at
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return "deadline"
        return None

    def remaining(self) -> float | None:
        """Seconds left until the deadline, or ``None`` without one."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())


@dataclass(frozen=True)
class ChaseBudget:
    """Resource limits for a chase run (mirrors ``RewritingBudget``).

    ``on_exceeded`` picks the overrun behaviour: ``'return'`` hands back
    the truncated result with ``terminated=False``, ``'raise'`` throws
    :class:`ChaseBudgetExceeded`.  Instances are frozen so they can be
    shared across runs and stored on sessions.

    ``workers`` is the round executor's process count: ``1`` (the
    default) evaluates rounds in-process, ``N > 1`` partitions each
    round's trigger matching across ``N`` worker processes (see
    :mod:`repro.chase.parallel`) — same result atom-for-atom.
    ``worker_max_atoms`` optionally caps the atoms any single worker may
    produce in one round (a per-worker memory guard); an overrun is a
    budget overrun at round granularity, handled per ``on_exceeded``
    with the overflowing round left unapplied.

    ``deadline_s`` bounds the run by wall clock (monotonic, anchored
    when the run starts): the engine checks it at round boundaries and
    on a stride inside long rounds, abandons the round in flight without
    applying its partial production, and stops per ``on_exceeded`` with
    the ``chase.deadline_hit`` counter set — the surviving prefix is
    exact and resumable (see ``docs/robustness.md``).
    """

    max_rounds: int = 50
    max_atoms: int = 200_000
    on_exceeded: str = "return"
    workers: int = 1
    worker_max_atoms: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.on_exceeded not in ("return", "raise"):
            raise ValueError("on_exceeded must be 'return' or 'raise'")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.worker_max_atoms is not None and self.worker_max_atoms < 1:
            raise ValueError("worker_max_atoms must be positive when set")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be non-negative when set")


_LEGACY_BUDGET_MESSAGE = (
    "the max_rounds=/max_atoms=/on_budget= kwargs were removed (deprecated "
    "since 1.1); pass budget=ChaseBudget(max_rounds=..., max_atoms=..., "
    "on_exceeded=...) instead"
)


def _coerce_budget(
    budget: ChaseBudget | None,
    default: ChaseBudget,
    max_rounds: int | None = None,
    max_atoms: int | None = None,
    on_budget: str | None = None,
) -> ChaseBudget:
    """Resolve the budget, rejecting the removed legacy kwargs."""
    legacy = [
        key
        for key, value in (
            ("max_rounds", max_rounds),
            ("max_atoms", max_atoms),
            ("on_budget", on_budget),
        )
        if value is not None
    ]
    if legacy:
        raise TypeError(f"{_LEGACY_BUDGET_MESSAGE} (got {', '.join(legacy)}=)")
    return budget if budget is not None else default


@dataclass(frozen=True)
class Derivation:
    """One way an atom was produced: ``atom = appl(rule, sigma)``."""

    rule: TGD
    sigma: tuple[tuple[Variable, Term], ...]

    def mapping(self) -> dict[Variable, Term]:
        return dict(self.sigma)

    def frontier_image(self) -> set[Term]:
        """``fr(alpha)``: the images of the rule's frontier variables."""
        mapping = self.mapping()
        return {mapping[var] for var in self.rule.frontier() if var in mapping}

    def body_image(self) -> list[Atom]:
        """``sigma(body(rule))``: the parent atoms (Appendix A)."""
        mapping = self.mapping()
        return [item.substitute(mapping) for item in self.rule.body]


@dataclass
class ChaseResult:
    """The outcome of running the chase for a number of rounds.

    ``round_added[i]`` holds the atoms that first appear in ``Ch_i`` (index
    0 is the input instance).  ``terminated`` is ``True`` when a fixpoint
    was reached, i.e. the final round added nothing new and the result *is*
    ``Ch(T, D)``.  ``stats`` carries the run's telemetry: per-round records
    (one per executed round, including the empty fixpoint-confirming one)
    plus ``chase.*`` / ``hom.*`` counters and phase timings.
    """

    theory: Theory
    base: Instance
    instance: Instance
    round_added: list[frozenset[Atom]]
    terminated: bool
    derivations: dict[Atom, Derivation] = field(default_factory=dict)
    stats: Telemetry = field(default_factory=Telemetry)
    _depth_index: dict[Atom, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _depth_index_rounds: int = field(default=-1, init=False, repr=False, compare=False)

    @property
    def rounds_run(self) -> int:
        return len(self.round_added) - 1

    def prefix(self, depth: int) -> Instance:
        """``Ch_depth(T, D)`` — all atoms of depth at most ``depth``."""
        collected = Instance()
        for added in self.round_added[: depth + 1]:
            collected.update(added)
        return collected

    def depth_of(self, item: Atom) -> int | None:
        """The round in which ``item`` first appeared, or ``None``.

        Served from a lazily built atom-to-round dictionary (the rounds
        partition the instance, so one dict answers every query in O(1)
        after an O(instance) build).  The index is keyed to the number of
        recorded rounds, so results extended by :func:`resume` — which
        builds a fresh ``ChaseResult`` — never serve stale depths.
        """
        index = self._depth_index
        if index is None or self._depth_index_rounds != len(self.round_added):
            index = {}
            for depth, added in enumerate(self.round_added):
                for atom in added:
                    index.setdefault(atom, depth)
            self._depth_index = index
            self._depth_index_rounds = len(self.round_added)
        return index.get(item)

    def new_atoms(self) -> Instance:
        """Everything produced by the chase (``Ch \\ D``)."""
        produced = Instance()
        for added in self.round_added[1:]:
            produced.update(added)
        return produced


@dataclass(frozen=True)
class _PreparedRule:
    """A skolemized rule with loop-invariant match structures precompiled.

    ``plan`` (see :mod:`repro.chase.planner`) carries the static join
    orders, body-predicate set and universal-variable order computed once
    per chase and consulted every round.
    """

    skolemized: SkolemizedRule
    body_patterns: tuple
    plan: RulePlan


_PREPARED_CACHE: "weakref.WeakKeyDictionary[Theory, tuple[_PreparedRule, ...]]" = (
    weakref.WeakKeyDictionary()
)


def _prepare_rules(theory: Theory) -> tuple[_PreparedRule, ...]:
    """Skolemize and plan every rule, cached per (identity of) theory.

    Locality and support searches chase the same theory over hundreds of
    sub-instances; skolemization and join planning are deterministic per
    rule, so the prepared tuple is shared (it is immutable and read-only
    in the round loop).  The weak keying keeps throwaway theories
    collectable.
    """
    cached = _PREPARED_CACHE.get(theory)
    if cached is not None:
        return cached
    prepared = []
    for rule in theory:
        skolemized = skolemize(rule)
        body_patterns = compile_query_patterns(rule.body)
        prepared.append(
            _PreparedRule(
                skolemized=skolemized,
                body_patterns=body_patterns,
                plan=plan_rule(rule, body_patterns),
            )
        )
    result = tuple(prepared)
    _PREPARED_CACHE[theory] = result
    return result


def _universal_assignments(
    variables: tuple[Variable, ...], pool: list[Term]
) -> Iterator[dict[Variable, Term]]:
    for combo in itertools.product(pool, repeat=len(variables)):
        yield dict(zip(variables, combo))


def _universal_delta_assignments(
    variables: tuple[Variable, ...],
    pool: list[Term],
    delta_pool: list[Term],
    old_pool: list[Term],
) -> Iterator[dict[Variable, Term]]:
    """Assignments into ``pool`` that use at least one delta term.

    Each qualifying assignment is produced exactly once: split on the
    first position carrying a delta term (earlier positions range over
    old terms only, later ones over the whole pool).  This replaces the
    old enumerate-everything-and-filter product, whose cost was
    ``|domain|^k`` per body match regardless of the delta's size.
    """
    count = len(variables)
    for first in range(count):
        pools = [old_pool] * first + [delta_pool] + [pool] * (count - first - 1)
        for combo in itertools.product(*pools):
            yield dict(zip(variables, combo))


def _round_matches(
    prepared: _PreparedRule,
    current: Instance,
    delta: Instance | None,
    delta_terms: set[Term] | None,
    telemetry: Telemetry | None = None,
    domain_pool: list[Term] | None = None,
) -> Iterator[dict[Variable, Term]]:
    """All ``sigma`` to apply this round, semi-naive when a delta is given.

    ``domain_pool`` is the round's active domain as a list, hoisted by
    the round loop so rules with universal head variables do not rebuild
    it per rule (or, worse, per body match).
    """
    rule = prepared.skolemized.rule
    plan = prepared.plan
    universal = plan.universal
    patterns = prepared.body_patterns
    if delta is not None and not plan.relevant(
        delta.predicates_with_facts(), delta_terms
    ):
        # Relevance pruning: no body predicate in the delta and no new
        # domain term a universal variable could grab — provably no
        # semi-naive match this round.
        if telemetry is not None:
            telemetry.counters["plan.rules_skipped"] += 1
            telemetry.counters["plan.nodes_saved"] += plan.search_count
        return
    if universal and domain_pool is None:
        domain_pool = list(current.domain())
    if delta is None:
        # Full evaluation (the first round).
        universal_pool: list[dict[Variable, Term]] | None = None
        for body_match in iter_pattern_homomorphisms(
            patterns, current, telemetry=telemetry, plan=plan.join
        ):
            if not universal:
                yield body_match
                continue
            if universal_pool is None:
                universal_pool = list(_universal_assignments(universal, domain_pool))
            for extra in universal_pool:
                yield {**body_match, **extra}
        return
    # Semi-naive: matches whose body touches the delta ...
    if rule.body:
        universal_pool = None
        for body_match in iter_pattern_homomorphisms(
            patterns, current, delta=delta, telemetry=telemetry, plan=plan.join
        ):
            if not universal:
                yield body_match
                continue
            if universal_pool is None:
                universal_pool = list(_universal_assignments(universal, domain_pool))
            for extra in universal_pool:
                yield {**body_match, **extra}
    # ... plus, for rules with universal variables, matches grabbing a term
    # that only just entered the domain.
    if universal and delta_terms:
        delta_pool = [term for term in domain_pool if term in delta_terms]
        old_pool = [term for term in domain_pool if term not in delta_terms]
        body_matches: Iterable[dict[Variable, Term]]
        if rule.body:
            body_matches = iter_pattern_homomorphisms(
                patterns, current, telemetry=telemetry, plan=plan.join
            )
        else:
            body_matches = ({},)
        delta_assignments: list[dict[Variable, Term]] | None = None
        for body_match in body_matches:
            if delta_assignments is None:
                delta_assignments = list(
                    _universal_delta_assignments(
                        universal, domain_pool, delta_pool, old_pool
                    )
                )
            for extra in delta_assignments:
                yield {**body_match, **extra}


@dataclass
class RoundOutcome:
    """What one round's trigger matching produced, executor-agnostic.

    ``produced`` maps each genuinely new atom to its recorded derivation
    (first producer in the executor's deterministic enumeration order);
    ``matches`` counts every sigma applied, ``dedup_hits`` every head
    atom that was already present.  ``overflow`` signals a per-worker
    budget overrun — the round loop then treats the round as a budget
    overrun *without* applying its atoms.
    """

    produced: dict[Atom, Derivation]
    matches: int
    dedup_hits: int
    overflow: bool = False


class SequentialRoundExecutor:
    """The default in-process round executor.

    One round = one pass over the prepared rules, enumerating this
    round's matches via :func:`_round_matches` and deduplicating head
    atoms against the current instance and the round's own production.
    :class:`repro.chase.parallel.ParallelRoundExecutor` implements the
    same ``run_round`` contract across worker processes.

    ``control`` (a :class:`_RunControl`, set by :func:`_run_rounds`) is
    consulted at every rule boundary and every
    ``planner.CONTROL_CHECK_STRIDE`` matches; a hit raises
    :class:`_RoundInterrupt`, abandoning the round before any of its
    production is applied.
    """

    control: "_RunControl | None" = None

    def __init__(
        self, prepared: tuple[_PreparedRule, ...], telemetry: Telemetry
    ) -> None:
        self.prepared = prepared
        self.telemetry = telemetry

    def run_round(
        self,
        current: Instance,
        sync: Iterable[Atom],
        delta: Instance | None,
        delta_terms: set[Term] | None,
        domain_pool: list[Term] | None,
    ) -> RoundOutcome:
        from .planner import CONTROL_CHECK_STRIDE

        produced: dict[Atom, Derivation] = {}
        matches = 0
        dedup_hits = 0
        control = self.control
        stride = CONTROL_CHECK_STRIDE - 1
        for rule in self.prepared:
            if control is not None:
                reason = control.interruption()
                if reason is not None:
                    raise _RoundInterrupt(reason)
            skolem_head = rule.skolemized.head
            for sigma in _round_matches(
                rule, current, delta, delta_terms, self.telemetry, domain_pool
            ):
                matches += 1
                if control is not None and not (matches & stride):
                    reason = control.interruption()
                    if reason is not None:
                        raise _RoundInterrupt(reason)
                for new_atom in (item.substitute(sigma) for item in skolem_head):
                    if new_atom in current or new_atom in produced:
                        dedup_hits += 1
                        continue
                    produced[new_atom] = Derivation(
                        rule.skolemized.rule,
                        tuple(sorted(sigma.items(), key=lambda kv: kv[0].name)),
                    )
        return RoundOutcome(produced=produced, matches=matches, dedup_hits=dedup_hits)

    def close(self) -> None:
        """Nothing to release for the in-process executor."""


def _run_rounds(
    prepared: tuple[_PreparedRule, ...],
    current: Instance,
    round_added: list[frozenset[Atom]],
    derivations: dict[Atom, Derivation],
    rounds: int,
    budget: ChaseBudget,
    track_provenance: bool,
    semi_naive: bool,
    delta: Instance | None,
    delta_terms: set[Term] | None,
    telemetry: Telemetry,
    executor: "SequentialRoundExecutor | None" = None,
    control: "_RunControl | None" = None,
) -> bool:
    """The round loop shared by :func:`chase` and :func:`resume`.

    Mutates ``current``, ``round_added`` and ``derivations`` in place and
    returns whether a fixpoint was reached.  One telemetry record is
    appended per executed round — including the final empty round that
    confirms the fixpoint, whose matching work is real.

    ``executor`` pluggably owns the per-round trigger matching (defaults
    to :class:`SequentialRoundExecutor`); the loop itself stays the
    single owner of budget checks, the semi-naive delta hand-off and the
    per-round telemetry records, so every executor produces identical
    rounds by construction.

    ``control`` carries the run's deadline/cancellation state.  The loop
    checks it before each round; executors check it inside the round and
    raise :class:`_RoundInterrupt` to abandon one mid-flight.  Either
    way the partial round is *not* applied — ``current``/``round_added``
    stay an exact chase prefix — a partial round record is appended with
    ``aborted=True``, the matching ``chase.cancelled`` /
    ``chase.deadline_hit`` counter is set and the overrun follows
    ``budget.on_exceeded``.
    """
    terminated = False
    counters = telemetry.counters
    if executor is None:
        executor = SequentialRoundExecutor(prepared, telemetry)
    executor.control = control
    any_universal = any(rule.plan.universal for rule in prepared)
    sync: Iterable[Atom] = ()
    interrupted: str | None = None
    for _ in range(rounds):
        round_number = len(round_added)
        round_started = time.perf_counter()
        if control is not None:
            interrupted = control.interruption()
            if interrupted is not None:
                break
        round_delta = delta if semi_naive else None
        round_delta_terms = delta_terms if semi_naive else None
        domain_pool = list(current.domain()) if any_universal else None
        try:
            outcome = executor.run_round(
                current, sync, round_delta, round_delta_terms, domain_pool
            )
        except _RoundInterrupt as stop:
            interrupted = stop.reason
            telemetry.record_round(
                round=round_number,
                aborted=True,
                total_atoms=len(current),
                seconds=round(time.perf_counter() - round_started, 6),
            )
            break
        if outcome.overflow:
            if budget.on_exceeded == "raise":
                raise ChaseBudgetExceeded(
                    f"a chase worker exceeded worker_max_atoms="
                    f"{budget.worker_max_atoms} in round {round_number}"
                )
            break
        produced = outcome.produced
        matches = outcome.matches
        dedup_hits = outcome.dedup_hits
        counters["chase.rounds"] += 1
        counters["chase.matches"] += matches
        counters["chase.atoms_produced"] += len(produced)
        counters["chase.dedup_hits"] += dedup_hits
        if not produced:
            terminated = True
            telemetry.record_round(
                round=round_number,
                matches=matches,
                atoms_produced=0,
                dedup_hits=dedup_hits,
                new_terms=0,
                total_atoms=len(current),
                seconds=round(time.perf_counter() - round_started, 6),
            )
            break
        old_domain = current.domain()
        for new_atom in produced:
            current.add(new_atom)
        if track_provenance:
            derivations.update(produced)
        round_added.append(frozenset(produced))
        delta = Instance(produced)
        delta_terms = current.domain() - old_domain
        sync = produced
        telemetry.record_round(
            round=round_number,
            matches=matches,
            atoms_produced=len(produced),
            dedup_hits=dedup_hits,
            new_terms=len(delta_terms),
            total_atoms=len(current),
            seconds=round(time.perf_counter() - round_started, 6),
        )
        if len(current) > budget.max_atoms:
            if budget.on_exceeded == "raise":
                raise ChaseBudgetExceeded(
                    f"chase exceeded {budget.max_atoms} atoms after "
                    f"{len(round_added) - 1} rounds"
                )
            break
    if interrupted is not None:
        note_interruption(telemetry, interrupted, budget, len(round_added) - 1)
    return terminated


def note_interruption(
    telemetry: Telemetry, reason: str, budget: ChaseBudget, rounds_done: int
) -> None:
    """Record a deadline/cancellation stop and apply ``on_exceeded``.

    Shared with the store-backed chase
    (:mod:`repro.storage.chasestore`), so every engine reports
    interruptions through the same counters and exception types.
    """
    if reason == "cancelled":
        telemetry.counters["chase.cancelled"] += 1
        if budget.on_exceeded == "raise":
            raise ChaseCancelled(
                f"chase cancelled after {rounds_done} complete rounds"
            )
    else:
        telemetry.counters["chase.deadline_hit"] += 1
        if budget.on_exceeded == "raise":
            raise ChaseBudgetExceeded(
                f"chase deadline of {budget.deadline_s}s expired after "
                f"{rounds_done} complete rounds"
            )


# The round executor the in-memory chase uses when none is asked for by
# name: the columnar kernel (see :mod:`repro.chase.columnar_kernel`),
# which degrades to the object engine rule-by-rule where it must.
DEFAULT_CHASE_BACKEND = "columnar"


def _resolve_chase_backend(backend: "str | None") -> str:
    from ..storage.base import resolve_backend

    return resolve_backend(
        backend,
        default=DEFAULT_CHASE_BACKEND,
        allowed=("memory", "columnar"),
        hint=(
            "a SQLite-backed chase runs through "
            "repro.storage.chase_into_store or the CLI's --backend sqlite"
        ),
    ).name


def chase(
    theory: Theory,
    base: Instance,
    budget: ChaseBudget | None = None,
    track_provenance: bool = True,
    semi_naive: bool = True,
    telemetry: Telemetry | None = None,
    workers: int | None = None,
    backend: str | None = None,
    cancel: CancellationToken | None = None,
    max_rounds: int | None = None,
    max_atoms: int | None = None,
    on_budget: str | None = None,
) -> ChaseResult:
    """Run the semi-oblivious Skolem chase.

    Resource limits live in the frozen :class:`ChaseBudget`: the chase
    stops early at a fixpoint (then ``terminated`` is ``True``), and when
    the budget is exceeded the partial result is returned with
    ``terminated = False`` (or :class:`ChaseBudgetExceeded` is raised
    under ``ChaseBudget(on_exceeded='raise')``).

    ``backend`` picks the round kernel through the unified
    :func:`repro.storage.resolve_backend` spec: ``"columnar"`` (the
    default) runs datalog-shaped rules as hash joins over interned term
    ids (:mod:`repro.chase.columnar_kernel`), ``"memory"`` forces the
    plain object engine.  Both produce identical rounds, atoms and
    ``chase.*`` counters; the columnar kernel additionally reports
    ``columnar.*``.  The ``"sqlite"`` backend is rejected here — the
    store-backed chase has its own entry point
    (:func:`repro.storage.chase_into_store`).

    ``workers`` selects the round executor: ``N > 1`` evaluates each
    round's trigger matches across ``N`` worker processes (see
    :mod:`repro.chase.parallel`) and merges the production
    deterministically — the rounds are identical to the sequential
    engine's, set-for-set.  ``None`` defers to ``budget.workers``.  When
    multiprocessing is unavailable or the workload does not serialize,
    the chase degrades to the in-process executor and flags
    ``parallel.fallback_inprocess`` in the stats — never an error.

    ``cancel`` accepts a :class:`CancellationToken`; together with
    ``budget.deadline_s`` it bounds the run by events rather than work:
    a triggered token or expired deadline stops the chase at a clean
    round boundary (abandoning any round in flight unapplied), follows
    ``on_exceeded`` (raising :class:`ChaseCancelled` /
    :class:`ChaseBudgetExceeded` under ``'raise'``) and leaves a prefix
    :func:`resume` continues to the identical fixpoint.

    ``semi_naive=False`` re-evaluates every rule against the whole current
    instance each round (ablation A1) — same result atom-for-atom thanks
    to Skolem determinism, strictly more matching work.

    ``telemetry`` lets callers supply a hook-carrying collector; by default
    a fresh one is created and returned as ``ChaseResult.stats``.

    .. versionchanged:: 1.2
        The ``max_rounds=`` / ``max_atoms=`` / ``on_budget=`` kwargs
        (deprecated since 1.1) now raise ``TypeError``; pass
        ``budget=ChaseBudget(...)``.
    """
    budget = _coerce_budget(budget, ChaseBudget(), max_rounds, max_atoms, on_budget)
    backend_name = _resolve_chase_backend(backend)
    telemetry = telemetry if telemetry is not None else Telemetry()
    prepared = _prepare_rules(theory)
    current = base.copy()
    round_added: list[frozenset[Atom]] = [frozenset(base)]
    derivations: dict[Atom, Derivation] = {}

    requested_workers = workers if workers is not None else budget.workers
    executor: SequentialRoundExecutor | None = None
    if requested_workers > 1:
        from .parallel import make_round_executor

        executor = make_round_executor(
            prepared, theory, current, budget, telemetry, requested_workers
        )
    else:
        if workers is not None:
            # Parallelism was explicitly (if trivially) requested; record
            # the in-process degrade so callers can tell the paths apart.
            telemetry.counters["parallel.fallback_inprocess"] = 1
        if backend_name == "columnar":
            from .columnar_kernel import make_columnar_executor

            executor = make_columnar_executor(prepared, current, telemetry)

    try:
        with telemetry.timer("chase"):
            terminated = _run_rounds(
                prepared,
                current,
                round_added,
                derivations,
                rounds=budget.max_rounds,
                budget=budget,
                track_provenance=track_provenance,
                semi_naive=semi_naive,
                delta=None,
                delta_terms=None,
                telemetry=telemetry,
                executor=executor,
                control=_RunControl.start(budget, cancel),
            )
    finally:
        if executor is not None:
            executor.close()

    return ChaseResult(
        theory=theory,
        base=base.copy(),
        instance=current,
        round_added=round_added,
        terminated=terminated,
        derivations=derivations,
        stats=telemetry,
    )


def resume(
    result: ChaseResult,
    extra_rounds: int,
    budget: ChaseBudget | None = None,
    backend: str | None = None,
    cancel: CancellationToken | None = None,
    max_atoms: int | None = None,
    on_budget: str | None = None,
) -> ChaseResult:
    """Continue a chase for more rounds, reusing the computed prefix.

    By Observation 8 (and the determinism of Skolem naming) continuing from
    ``Ch_i`` produces exactly the rounds ``Ch_{i+1}, ...`` of the original
    chase; the engine re-seeds its semi-naive delta from the last recorded
    round.  The returned ``stats`` continue the original run's: counters
    and round records accumulate as if the chase had run in one go
    (``budget.max_rounds`` is ignored here — ``extra_rounds`` rules).
    ``backend`` selects the round kernel exactly as in :func:`chase`;
    ``cancel`` and ``budget.deadline_s`` bound the continuation the same
    way they bound a fresh run.

    .. versionchanged:: 1.2
        The ``max_atoms=`` / ``on_budget=`` kwargs (deprecated since
        1.1) now raise ``TypeError``; pass ``budget=ChaseBudget(...)``.
    """
    budget = _coerce_budget(
        budget, ChaseBudget(), max_atoms=max_atoms, on_budget=on_budget
    )
    backend_name = _resolve_chase_backend(backend)
    if result.terminated or extra_rounds <= 0:
        return result
    prepared = _prepare_rules(result.theory)
    current = result.instance.copy()
    round_added = list(result.round_added)
    derivations = dict(result.derivations)
    telemetry = result.stats.fork()
    if len(round_added) > 1:
        delta = Instance(round_added[-1])
        # Only the term set of the pre-delta prefix matters here; walking
        # the atoms directly avoids rebuilding a fully indexed Instance.
        previous_terms: set[Term] = set()
        for added in round_added[:-1]:
            for item in added:
                previous_terms.update(item.args)
        delta_terms = current.domain() - previous_terms
    else:
        delta = None
        delta_terms = None

    executor: SequentialRoundExecutor | None = None
    if backend_name == "columnar":
        from .columnar_kernel import make_columnar_executor

        executor = make_columnar_executor(prepared, current, telemetry)
    try:
        with telemetry.timer("chase"):
            terminated = _run_rounds(
                prepared,
                current,
                round_added,
                derivations,
                rounds=extra_rounds,
                budget=budget,
                track_provenance=True,
                semi_naive=True,
                delta=delta,
                delta_terms=delta_terms,
                telemetry=telemetry,
                executor=executor,
                control=_RunControl.start(budget, cancel),
            )
    finally:
        if executor is not None:
            executor.close()

    return ChaseResult(
        theory=result.theory,
        base=result.base,
        instance=current,
        round_added=round_added,
        terminated=terminated,
        derivations=derivations,
        stats=telemetry,
    )


def chase_to_fixpoint(
    theory: Theory,
    base: Instance,
    budget: ChaseBudget | None = None,
    max_rounds: int | None = None,
    max_atoms: int | None = None,
) -> ChaseResult:
    """Chase until a fixpoint, raising when budgets are exceeded.

    Use only for theories known (or expected) to have a terminating Skolem
    chase on ``base``; the error keeps non-terminating cases loud.  Limits
    come from ``budget`` (a :class:`ChaseBudget`; ``on_exceeded`` is
    forced to ``"raise"`` here).

    .. versionchanged:: 1.2
        The ``max_rounds=`` / ``max_atoms=`` kwargs (deprecated since
        1.1) now raise ``TypeError``; pass ``budget=ChaseBudget(...)``.
    """
    budget = _coerce_budget(
        budget,
        ChaseBudget(max_rounds=200, max_atoms=500_000),
        max_rounds,
        max_atoms,
    )
    budget = replace(budget, on_exceeded="raise")
    result = chase(theory, base, budget=budget)
    if not result.terminated:
        raise ChaseBudgetExceeded(
            f"no fixpoint within {budget.max_rounds} rounds on {len(base)} facts"
        )
    return result
