"""The semi-oblivious Skolem chase (Definition 6).

``Ch_0 = D`` and ``Ch_{i+1} = Ch_i + {appl(rho, sigma) : rho in T, sigma in
Hom(rho, Ch_i)}``.  The engine materializes the rounds breadth-first with
semi-naive evaluation: because Skolem naming is deterministic, a rule match
whose body already lay in ``Ch_{i-1}`` produced the very same atoms in round
``i``, so only matches touching the latest delta need to be re-derived —
the per-round semantics of Definition 6 is preserved exactly.

Rules with empty bodies are supported: a *universal* head variable (see
:class:`repro.logic.tgd.TGD`) ranges over the active domain, so the
``forall x (true -> exists z. R(x,z))`` rules of the theory ``T_d`` fire for
every element, including elements invented by earlier rounds.

The engine records one *derivation* ``(rule, sigma)`` per produced atom — a
parent function in the sense of Appendix A — from which
:mod:`repro.chase.provenance` reconstructs birth atoms, frontiers and
ancestor sets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..logic.atoms import Atom
from ..logic.homomorphism import iter_query_homomorphisms
from ..logic.instance import Instance
from ..logic.terms import Term, Variable
from ..logic.tgd import TGD, Theory
from .skolem import SkolemizedRule, skolemize


class ChaseBudgetExceeded(RuntimeError):
    """Raised by :func:`chase` with ``on_budget='raise'`` when limits hit."""


@dataclass(frozen=True)
class Derivation:
    """One way an atom was produced: ``atom = appl(rule, sigma)``."""

    rule: TGD
    sigma: tuple[tuple[Variable, Term], ...]

    def mapping(self) -> dict[Variable, Term]:
        return dict(self.sigma)

    def frontier_image(self) -> set[Term]:
        """``fr(alpha)``: the images of the rule's frontier variables."""
        mapping = self.mapping()
        return {mapping[var] for var in self.rule.frontier() if var in mapping}

    def body_image(self) -> list[Atom]:
        """``sigma(body(rule))``: the parent atoms (Appendix A)."""
        mapping = self.mapping()
        return [item.substitute(mapping) for item in self.rule.body]


@dataclass
class ChaseResult:
    """The outcome of running the chase for a number of rounds.

    ``round_added[i]`` holds the atoms that first appear in ``Ch_i`` (index
    0 is the input instance).  ``terminated`` is ``True`` when a fixpoint
    was reached, i.e. the final round added nothing new and the result *is*
    ``Ch(T, D)``.
    """

    theory: Theory
    base: Instance
    instance: Instance
    round_added: list[frozenset[Atom]]
    terminated: bool
    derivations: dict[Atom, Derivation] = field(default_factory=dict)

    @property
    def rounds_run(self) -> int:
        return len(self.round_added) - 1

    def prefix(self, depth: int) -> Instance:
        """``Ch_depth(T, D)`` — all atoms of depth at most ``depth``."""
        collected = Instance()
        for added in self.round_added[: depth + 1]:
            collected.update(added)
        return collected

    def depth_of(self, item: Atom) -> int | None:
        """The round in which ``item`` first appeared, or ``None``."""
        for index, added in enumerate(self.round_added):
            if item in added:
                return index
        return None

    def new_atoms(self) -> Instance:
        """Everything produced by the chase (``Ch \\ D``)."""
        produced = Instance()
        for added in self.round_added[1:]:
            produced.update(added)
        return produced


def _universal_assignments(
    variables: tuple[Variable, ...], terms: Iterable[Term]
) -> Iterator[dict[Variable, Term]]:
    pool = list(terms)
    for combo in itertools.product(pool, repeat=len(variables)):
        yield dict(zip(variables, combo))


def _round_matches(
    skolemized: SkolemizedRule,
    current: Instance,
    delta: Instance | None,
    delta_terms: set[Term] | None,
) -> Iterator[dict[Variable, Term]]:
    """All ``sigma`` to apply this round, semi-naive when a delta is given."""
    rule = skolemized.rule
    universal = tuple(sorted(rule.universal_head_variables(), key=lambda v: v.name))
    if delta is None:
        # Full evaluation (the first round).
        for body_match in iter_query_homomorphisms(rule.body, current):
            if not universal:
                yield body_match
                continue
            for extra in _universal_assignments(universal, current.domain()):
                yield {**body_match, **extra}
        return
    # Semi-naive: matches whose body touches the delta ...
    if rule.body:
        for body_match in iter_query_homomorphisms(rule.body, current, delta=delta):
            if not universal:
                yield body_match
                continue
            for extra in _universal_assignments(universal, current.domain()):
                yield {**body_match, **extra}
    # ... plus, for rules with universal variables, matches grabbing a term
    # that only just entered the domain.
    if universal and delta_terms:
        body_matches: Iterable[dict[Variable, Term]]
        if rule.body:
            body_matches = iter_query_homomorphisms(rule.body, current)
        else:
            body_matches = ({},)
        for body_match in body_matches:
            for extra in _universal_assignments(universal, current.domain()):
                if any(extra[var] in delta_terms for var in universal):
                    yield {**body_match, **extra}


def chase(
    theory: Theory,
    base: Instance,
    max_rounds: int = 50,
    max_atoms: int = 200_000,
    on_budget: str = "return",
    track_provenance: bool = True,
    semi_naive: bool = True,
) -> ChaseResult:
    """Run the semi-oblivious Skolem chase.

    Stops early at a fixpoint (then ``terminated`` is ``True``).  When a
    budget is exceeded the partial result is returned with ``terminated =
    False`` (or :class:`ChaseBudgetExceeded` is raised under
    ``on_budget='raise'``).

    ``semi_naive=False`` re-evaluates every rule against the whole current
    instance each round (ablation A1) — same result atom-for-atom thanks
    to Skolem determinism, strictly more matching work.
    """
    if on_budget not in ("return", "raise"):
        raise ValueError("on_budget must be 'return' or 'raise'")
    skolemized_rules = [skolemize(rule) for rule in theory]
    current = base.copy()
    round_added: list[frozenset[Atom]] = [frozenset(base)]
    derivations: dict[Atom, Derivation] = {}
    delta: Instance | None = None
    delta_terms: set[Term] | None = None
    terminated = False

    for _ in range(max_rounds):
        produced: dict[Atom, Derivation] = {}
        round_delta = delta if semi_naive else None
        round_delta_terms = delta_terms if semi_naive else None
        for skolemized in skolemized_rules:
            for sigma in _round_matches(
                skolemized, current, round_delta, round_delta_terms
            ):
                for new_atom in (item.substitute(sigma) for item in skolemized.head):
                    if new_atom in current or new_atom in produced:
                        continue
                    produced[new_atom] = Derivation(
                        skolemized.rule, tuple(sorted(sigma.items(), key=lambda kv: kv[0].name))
                    )
        if not produced:
            terminated = True
            break
        old_domain = current.domain()
        for new_atom in produced:
            current.add(new_atom)
        if track_provenance:
            derivations.update(produced)
        round_added.append(frozenset(produced))
        delta = Instance(produced)
        delta_terms = current.domain() - old_domain
        if len(current) > max_atoms:
            if on_budget == "raise":
                raise ChaseBudgetExceeded(
                    f"chase exceeded {max_atoms} atoms after {len(round_added) - 1} rounds"
                )
            break

    return ChaseResult(
        theory=theory,
        base=base.copy(),
        instance=current,
        round_added=round_added,
        terminated=terminated,
        derivations=derivations,
    )


def resume(
    result: ChaseResult,
    extra_rounds: int,
    max_atoms: int = 200_000,
    on_budget: str = "return",
) -> ChaseResult:
    """Continue a chase for more rounds, reusing the computed prefix.

    By Observation 8 (and the determinism of Skolem naming) continuing from
    ``Ch_i`` produces exactly the rounds ``Ch_{i+1}, ...`` of the original
    chase; the engine re-seeds its semi-naive delta from the last recorded
    round.
    """
    if result.terminated or extra_rounds <= 0:
        return result
    skolemized_rules = [skolemize(rule) for rule in result.theory]
    current = result.instance.copy()
    round_added = list(result.round_added)
    derivations = dict(result.derivations)
    delta = Instance(round_added[-1]) if len(round_added) > 1 else None
    previous = Instance()
    for added in round_added[:-1]:
        previous.update(added)
    delta_terms = (
        current.domain() - previous.domain() if len(round_added) > 1 else None
    )
    terminated = False

    for _ in range(extra_rounds):
        produced: dict[Atom, Derivation] = {}
        for skolemized in skolemized_rules:
            for sigma in _round_matches(skolemized, current, delta, delta_terms):
                for new_atom in (item.substitute(sigma) for item in skolemized.head):
                    if new_atom in current or new_atom in produced:
                        continue
                    produced[new_atom] = Derivation(
                        skolemized.rule,
                        tuple(sorted(sigma.items(), key=lambda kv: kv[0].name)),
                    )
        if not produced:
            terminated = True
            break
        old_domain = current.domain()
        for new_atom in produced:
            current.add(new_atom)
        derivations.update(produced)
        round_added.append(frozenset(produced))
        delta = Instance(produced)
        delta_terms = current.domain() - old_domain
        if len(current) > max_atoms:
            if on_budget == "raise":
                raise ChaseBudgetExceeded(
                    f"chase exceeded {max_atoms} atoms after {len(round_added) - 1} rounds"
                )
            break

    return ChaseResult(
        theory=result.theory,
        base=result.base,
        instance=current,
        round_added=round_added,
        terminated=terminated,
        derivations=derivations,
    )


def chase_to_fixpoint(
    theory: Theory, base: Instance, max_rounds: int = 200, max_atoms: int = 500_000
) -> ChaseResult:
    """Chase until a fixpoint, raising when budgets are exceeded.

    Use only for theories known (or expected) to have a terminating Skolem
    chase on ``base``; the error keeps non-terminating cases loud.
    """
    result = chase(theory, base, max_rounds=max_rounds, max_atoms=max_atoms, on_budget="raise")
    if not result.terminated:
        raise ChaseBudgetExceeded(
            f"no fixpoint within {max_rounds} rounds on {len(base)} facts"
        )
    return result
