"""Human-readable derivation trees for chase atoms.

``explain(result, atom)`` renders how the recorded parent function derives
an atom from the base instance — the practical face of Appendix A's
parent/ancestor machinery, useful when debugging theories or inspecting
why a certain answer holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.atoms import Atom
from .engine import ChaseResult
from .provenance import parents


@dataclass
class DerivationNode:
    """One node of the (recorded) derivation tree."""

    atom: Atom
    rule_label: str | None
    children: list["DerivationNode"] = field(default_factory=list)

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def leaf_atoms(self) -> set[Atom]:
        if not self.children:
            return {self.atom}
        leaves: set[Atom] = set()
        for child in self.children:
            leaves |= child.leaf_atoms()
        return leaves


def derivation_tree(
    result: ChaseResult, item: Atom, max_depth: int = 50
) -> DerivationNode:
    """The derivation tree of ``item`` under the recorded parent function.

    Shared sub-derivations are expanded per occurrence (it is a tree, not
    a DAG); ``max_depth`` guards against malformed provenance.
    """
    if max_depth < 0:
        raise RecursionError("derivation tree exceeded the depth guard")
    derivation = result.derivations.get(item)
    if derivation is None:
        if item not in result.base:
            raise KeyError(f"{item!r} is neither base nor derived")
        return DerivationNode(atom=item, rule_label=None)
    node = DerivationNode(atom=item, rule_label=derivation.rule.label or "rule")
    for parent in parents(result, item):
        node.children.append(derivation_tree(result, parent, max_depth - 1))
    return node


def explain(result: ChaseResult, item: Atom) -> str:
    """Render a derivation tree as indented text.

    Base facts are tagged ``[base]``; derived atoms name the producing
    rule.  Example::

        Mother(abel,f(abel))   [via r0]
          Human(abel)   [base]
    """
    lines: list[str] = []

    def render(node: DerivationNode, indent: int) -> None:
        tag = "[base]" if node.rule_label is None else f"[via {node.rule_label}]"
        lines.append(f"{'  ' * indent}{node.atom!r}   {tag}")
        for child in node.children:
            render(child, indent + 1)

    render(derivation_tree(result, item), 0)
    return "\n".join(lines)


def explain_answer(
    result: ChaseResult,
    query_atoms: tuple[Atom, ...],
    assignment: dict,
) -> str:
    """Explain a whole query match: one derivation tree per matched atom."""
    chunks = []
    for pattern in query_atoms:
        matched = pattern.substitute(assignment)
        chunks.append(explain(result, matched))
    return "\n---\n".join(chunks)
