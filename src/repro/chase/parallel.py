"""Parallel round execution for the semi-oblivious Skolem chase.

Each chase round (Definitions 5–6) applies every rule to every trigger
independently before any produced atom becomes visible — the round is
embarrassingly parallel.  This module exploits that:
:class:`ParallelRoundExecutor` partitions a round's trigger matching into
*(rule, pivot-delta-shard)* work items (see
:meth:`repro.chase.planner.RulePlan.shard_items`), evaluates the items in
worker processes against a replica of the current instance, and merges
the produced atoms back on the coordinator in a deterministic order —
sorted by rule index, then pivot, then shard — so ``chase(..., workers=N)``
yields rounds that are *identical as sets* to the sequential engine at
every depth (the planner-equivalence harness re-verifies this, see
``tests/test_parallel.py``).

Design points:

* **Replicated instances, delta broadcast.**  Every worker keeps a full
  replica of the chase instance.  Per round the coordinator sends only
  the previous round's production (the semi-naive delta); workers apply
  it locally, so per-round traffic is O(delta), not O(instance).  Each
  worker owns a dedicated pipe and the protocol is strict
  request/response, so replicas can never miss an update.
* **Interned wire format.**  Skolem terms are DAGs whose ancestry grows
  with chase depth; pickling a round's delta naively re-serializes every
  ancestor term every round (quadratic total traffic, and the dominant
  cost on deep workloads like T_c cycles).  Instead each pipe direction
  carries an incremental interning codec (:class:`_WireEncoder` /
  :class:`_WireDecoder`): a term or predicate crosses the pipe exactly
  once, as a definition referencing earlier definitions by integer code,
  and every later occurrence is just that integer.
* **Deterministic merge.**  Work items sort exactly the way the
  sequential engine enumerates them (rule, then pivot, then shard); the
  coordinator folds results in that order, deduplicating against the
  current instance and the round's accumulated production — the same
  first-producer-wins rule the in-process executor applies.
* **Retry, then degrade — never an error.**  A dead worker (crash, OOM
  kill) is respawned once per round from the coordinator's authoritative
  instance: the replacement replays the full accumulated definition
  history of the coordinator→worker codec (codes are assigned in
  definition order, so the replay reproduces the exact encoder state)
  and re-evaluates the dead worker's item slice — the round's result is
  unchanged, and ``parallel.worker_restarts`` counts the incident.  Only
  a second failure in the same round (or a worker shipping a Python
  traceback, which signals a code bug rather than a crash) degrades the
  run to the in-process executor with ``parallel.fallback_inprocess``
  set.  ``workers=1``, an unpicklable theory/instance or a platform
  without usable ``multiprocessing`` degrade the same way at startup.
* **Deadlines and cancellation.**  ``ChaseBudget.deadline_s`` ships to
  workers as a per-round time cap checked on the match stride
  (:data:`repro.chase.planner.CONTROL_CHECK_STRIDE`); a worker that runs
  out flags its response and the coordinator abandons the round
  unapplied.  A :class:`~repro.chase.engine.CancellationToken` is
  honoured on the coordinator while it waits for responses (the receive
  loop polls), so Ctrl-C interrupts a parallel round without waiting for
  stragglers.

Telemetry (all plain integer counters, see ``docs/performance.md``):
``parallel.workers`` (pool size), ``parallel.rounds`` (rounds executed by
the pool), ``parallel.shards_dispatched`` (work items sent),
``parallel.worker_us`` (summed in-worker wall time, microseconds),
``parallel.merge_dedup_hits`` (cross-item duplicates folded at merge),
``parallel.bytes_sent`` / ``parallel.bytes_received`` (serialized
payload volume), ``parallel.worker_truncated`` (per-worker budget
overruns), ``parallel.worker_restarts`` (dead workers respawned),
``parallel.leaked_workers`` (workers that survived the
join→terminate→kill escalation — should stay zero) and
``parallel.fallback_inprocess`` (the degrade flag).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
import traceback
from typing import Iterable, Sequence

from .. import faults
from ..logic.atoms import Atom
from ..logic.homomorphism import _search
from ..logic.instance import Instance
from ..logic.signature import Predicate
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from ..telemetry import Telemetry
from .engine import (
    ChaseBudget,
    Derivation,
    RoundOutcome,
    SequentialRoundExecutor,
    _PreparedRule,
    _prepare_rules,
    _RoundInterrupt,
    _universal_assignments,
    _universal_delta_assignments,
)
from .planner import CONTROL_CHECK_STRIDE

# A delta below this many facts per requested worker is not worth
# sharding: the pivot searches stay whole and only rule-level parallelism
# applies.
_MIN_FACTS_PER_SHARD = 4

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class _ParallelUnavailable(RuntimeError):
    """Internal: raised when the process pool cannot be (or stay) up."""


# ----------------------------------------------------------------------
# Wire codec: incremental interning of terms / predicates / atoms
# ----------------------------------------------------------------------


class _WireEncoder:
    """One pipe direction's sender state: values become integer codes.

    The first occurrence of a term appends a *definition* — its leaf data
    plus the codes of its (already defined) children — to the message's
    ``term_defs`` list; every later occurrence is the bare code.  Both
    ends assign codes in definition order, so no ids ever cross the wire
    out of band.  Structural equality of terms makes the cache exact:
    equal Skolem terms rebuilt in different rounds share one code.
    """

    __slots__ = ("_terms", "_preds")

    def __init__(self) -> None:
        self._terms: dict[Term, int] = {}
        self._preds: dict[Predicate, int] = {}

    def term(self, term: Term, defs: list) -> int:
        code = self._terms.get(term)
        if code is not None:
            return code
        kind = type(term)
        if kind is FunctionTerm:
            entry = ("f", term.functor, tuple(self.term(a, defs) for a in term.args))
        elif kind is Constant:
            entry = ("c", term.name)
        elif kind is Variable:
            entry = ("v", term.name)
        else:
            raise _ParallelUnavailable(
                f"cannot encode term type {kind.__name__} for a worker pipe"
            )
        code = len(self._terms)
        self._terms[term] = code
        defs.append(entry)
        return code

    def predicate(self, pred: Predicate, defs: list) -> int:
        code = self._preds.get(pred)
        if code is None:
            code = len(self._preds)
            self._preds[pred] = code
            defs.append((pred.name, pred.arity))
        return code

    def atom(self, item: Atom, term_defs: list, pred_defs: list) -> tuple:
        return (
            self.predicate(item.predicate, pred_defs),
            tuple(self.term(t, term_defs) for t in item.args),
        )


class _WireDecoder:
    """The matching receiver state: codes back to terms/predicates."""

    __slots__ = ("_terms", "_preds")

    def __init__(self) -> None:
        self._terms: list[Term] = []
        self._preds: list[Predicate] = []

    def apply_defs(self, term_defs: list, pred_defs: list) -> None:
        for name, arity in pred_defs:
            self._preds.append(Predicate(name, arity))
        for entry in term_defs:
            kind = entry[0]
            if kind == "f":
                term: Term = FunctionTerm(
                    entry[1], tuple(self._terms[c] for c in entry[2])
                )
            elif kind == "c":
                term = Constant(entry[1])
            else:
                term = Variable(entry[1])
            self._terms.append(term)

    def term(self, code: int) -> Term:
        return self._terms[code]

    def atom(self, code: tuple) -> Atom:
        pred_code, arg_codes = code
        return Atom(self._preds[pred_code], tuple(self._terms[c] for c in arg_codes))


def _item_sort_key(item: tuple) -> tuple:
    """Order work items the way the sequential engine enumerates matches.

    Full-evaluation items come per rule; semi-naive items per rule run
    pivots in body order (shards in slice order), then the
    universal-new-term branch — mirroring ``_round_matches``.
    """
    kind = item[0]
    rule_index = item[1]
    if kind == "full":
        return (rule_index, 0, 0, 0)
    if kind == "pivot":
        return (rule_index, 1, item[2], item[3])
    return (rule_index, 2, 0, 0)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _iter_item_matches(
    item: tuple,
    prepared: Sequence[_PreparedRule],
    replica: Instance,
    shards: list[Instance] | None,
    delta_terms: set[Term] | None,
    domain_pool: list[Term] | None,
    effort: list[int],
    counters: dict[str, int],
):
    """All sigmas of one work item — a slice of ``_round_matches``."""
    kind = item[0]
    rule = prepared[item[1]]
    patterns = list(rule.body_patterns)
    plan = rule.plan
    universal = plan.universal
    if kind == "full":
        order = plan.join.base_order
        if order is not None:
            counters["plan.plans_reused"] = counters.get("plan.plans_reused", 0) + 1
        universal_pool: list[dict] | None = None
        for body_match in _search(patterns, replica, {}, None, effort, order):
            if not universal:
                yield body_match
                continue
            if universal_pool is None:
                universal_pool = list(_universal_assignments(universal, domain_pool))
            for extra in universal_pool:
                yield {**body_match, **extra}
        return
    if kind == "pivot":
        _, _, pivot, shard_index, shard_count = item
        shard = shards[shard_index] if shards is not None else None
        if not shard:
            return
        order = plan.join.pivot_orders[pivot]
        if order is not None:
            counters["plan.plans_reused"] = counters.get("plan.plans_reused", 0) + 1
        universal_pool = None
        for body_match in _search(patterns, replica, {}, {pivot: shard}, effort, order):
            if not universal:
                yield body_match
                continue
            if universal_pool is None:
                universal_pool = list(_universal_assignments(universal, domain_pool))
            for extra in universal_pool:
                yield {**body_match, **extra}
        return
    # kind == "universal": matches grabbing a term new to the domain.
    if rule.skolemized.rule.body:
        order = plan.join.base_order
        if order is not None:
            counters["plan.plans_reused"] = counters.get("plan.plans_reused", 0) + 1
        body_matches: Iterable[dict] = _search(
            patterns, replica, {}, None, effort, order
        )
    else:
        body_matches = ({},)
    delta_pool = [term for term in domain_pool if term in delta_terms]
    old_pool = [term for term in domain_pool if term not in delta_terms]
    delta_assignments: list[dict] | None = None
    for body_match in body_matches:
        if delta_assignments is None:
            delta_assignments = list(
                _universal_delta_assignments(universal, domain_pool, delta_pool, old_pool)
            )
        for extra in delta_assignments:
            yield {**body_match, **extra}


def _run_worker_round(
    replica: Instance,
    prepared: tuple[_PreparedRule, ...],
    decoder: _WireDecoder,
    encoder: _WireEncoder,
    message: tuple,
) -> tuple:
    """Apply the round's sync, evaluate the assigned items, report back.

    ``time_cap`` (seconds of in-round budget remaining, or ``None``) is
    checked on the match stride; running out stops the evaluation and
    flags the response ``interrupted`` — the coordinator then abandons
    the whole round unapplied, keeping the chase prefix exact.
    """
    (
        term_defs,
        pred_defs,
        sync_codes,
        delta_codes,
        items,
        need_domain,
        atom_cap,
        time_cap,
    ) = message
    started = time.perf_counter()
    decoder.apply_defs(term_defs, pred_defs)
    sync_atoms = [decoder.atom(code) for code in sync_codes]
    delta_terms = (
        None if delta_codes is None else {decoder.term(code) for code in delta_codes}
    )
    replica.update(sync_atoms)
    # Shards slice the broadcast sync list positionally: every worker
    # receives the identical list, so the slices agree across the pool
    # without any per-round canonicalization of (deep) Skolem terms.
    shards_by_count: dict[int, list[Instance]] = {}
    if sync_atoms:
        for item in items:
            if item[0] == "pivot" and item[4] not in shards_by_count:
                count = item[4]
                shards_by_count[count] = [
                    Instance(sync_atoms[shard::count]) for shard in range(count)
                ]
    domain_pool = list(replica.domain()) if need_domain else None
    effort = [0, 0, 0, 0]
    counters: dict[str, int] = {}
    out_term_defs: list = []
    out_pred_defs: list = []
    results: list[tuple] = []
    produced_total = 0
    truncated = False
    interrupted = False
    stride = CONTROL_CHECK_STRIDE - 1
    total_matches = 0
    for item in items:
        if (
            time_cap is not None
            and time.perf_counter() - started >= time_cap
        ):
            interrupted = True
            break
        shards = shards_by_count.get(item[4]) if item[0] == "pivot" else None
        rule = prepared[item[1]]
        skolem_head = rule.skolemized.head
        matches = 0
        dedup_hits = 0
        pairs: list[tuple] = []
        for sigma in _iter_item_matches(
            item, prepared, replica, shards, delta_terms, domain_pool, effort, counters
        ):
            matches += 1
            total_matches += 1
            if (
                time_cap is not None
                and not (total_matches & stride)
                and time.perf_counter() - started >= time_cap
            ):
                interrupted = True
                break
            sigma_code = tuple(
                (encoder.term(var, out_term_defs), encoder.term(image, out_term_defs))
                for var, image in sorted(sigma.items(), key=lambda kv: kv[0].name)
            )
            for new_atom in (head.substitute(sigma) for head in skolem_head):
                if new_atom in replica:
                    dedup_hits += 1
                    continue
                pairs.append(
                    (encoder.atom(new_atom, out_term_defs, out_pred_defs), sigma_code)
                )
                produced_total += 1
            if atom_cap is not None and produced_total > atom_cap:
                truncated = True
                break
        results.append((item, matches, dedup_hits, pairs))
        if truncated or interrupted:
            break
    counters["hom.nodes"] = counters.get("hom.nodes", 0) + effort[0]
    counters["hom.candidates_estimated"] = (
        counters.get("hom.candidates_estimated", 0) + effort[1]
    )
    counters["hom.candidates_scanned"] = (
        counters.get("hom.candidates_scanned", 0) + effort[2]
    )
    if effort[3]:
        counters["hom.backtrack_clashes"] = (
            counters.get("hom.backtrack_clashes", 0) + effort[3]
        )
    seconds = time.perf_counter() - started
    return (
        "ok",
        out_term_defs,
        out_pred_defs,
        results,
        counters,
        seconds,
        truncated,
        interrupted,
    )


def _worker_main(conn, theory, base_atoms) -> None:
    """Worker process entry point: a strict request/response loop."""
    replica = Instance(base_atoms)
    prepared = _prepare_rules(theory)
    decoder = _WireDecoder()
    encoder = _WireEncoder()
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        message = pickle.loads(payload)
        if message is None:
            break
        try:
            response = _run_worker_round(replica, prepared, decoder, encoder, message)
        except Exception:  # noqa: BLE001 — shipped to the coordinator
            response = ("err", traceback.format_exc())
        try:
            conn.send_bytes(pickle.dumps(response, _PICKLE_PROTOCOL))
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class ParallelRoundExecutor:
    """Process-pool round executor with a deterministic merge.

    Satisfies the same ``run_round`` contract as
    :class:`repro.chase.engine.SequentialRoundExecutor`.  A worker that
    dies mid-round is respawned once (per round) from the coordinator's
    authoritative instance and its item slice re-evaluated; a repeated
    failure — or any other unrecoverable error — shuts the pool down,
    flags ``parallel.fallback_inprocess`` and continues in-process.
    Either way a mid-run recovery never loses or duplicates atoms.
    """

    control = None

    def __init__(
        self,
        prepared: tuple[_PreparedRule, ...],
        theory,
        base: Instance,
        budget: ChaseBudget,
        telemetry: Telemetry,
        workers: int,
    ) -> None:
        self.prepared = prepared
        self.telemetry = telemetry
        self.workers = workers
        self.worker_max_atoms = budget.worker_max_atoms
        self._fallback = SequentialRoundExecutor(prepared, telemetry)
        self._degraded = False
        self._connections: list = []
        self._processes: list = []
        self._encoder = _WireEncoder()
        self._decoders: list[_WireDecoder] = []
        self._theory = theory
        self._round = 0
        # Everything the shared encoder ever defined, in definition
        # order.  A respawned worker's fresh decoder replays this history
        # to rebuild the exact code table the dead worker held.
        self._term_def_history: list = []
        self._pred_def_history: list = []
        # The theory and base cross process boundaries at startup (by
        # pickle under the spawn start method); probing them up front
        # turns a mid-chase crash into a clean construction failure the
        # caller converts into a fallback.
        try:
            base_atoms = list(base)
            pickle.dumps((theory, base_atoms), _PICKLE_PROTOCOL)
        except Exception as error:  # unpicklable workload
            raise _ParallelUnavailable(f"workload does not serialize: {error!r}")
        try:
            methods = multiprocessing.get_all_start_methods()
            self._context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            for _ in range(workers):
                parent_conn, process = self._spawn_worker(base_atoms)
                self._connections.append(parent_conn)
                self._processes.append(process)
                self._decoders.append(_WireDecoder())
        except Exception as error:
            self.close()
            raise _ParallelUnavailable(f"cannot start worker processes: {error!r}")
        telemetry.gauge_max("parallel.workers", workers)

    def _spawn_worker(self, base_atoms: list) -> tuple:
        """Start one worker seeded with ``base_atoms``; returns (pipe, proc)."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._theory, base_atoms),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    # ------------------------------------------------------------------
    def _shard_count(self, delta_size: int) -> int:
        if delta_size >= self.workers * _MIN_FACTS_PER_SHARD:
            return self.workers
        return 1

    def _build_items(
        self, delta: Instance | None, delta_terms: set[Term] | None
    ) -> list[tuple]:
        """This round's work items, with sequential-parity skip counters."""
        counters = self.telemetry.counters
        if delta is None:
            return [("full", index) for index in range(len(self.prepared))]
        delta_predicates = delta.predicates_with_facts()
        shards = self._shard_count(len(delta))
        items: list[tuple] = []
        for index, rule in enumerate(self.prepared):
            plan = rule.plan
            if not plan.relevant(delta_predicates, delta_terms):
                counters["plan.rules_skipped"] += 1
                counters["plan.nodes_saved"] += plan.search_count
                continue
            if plan.has_body and not plan.body_predicates.isdisjoint(delta_predicates):
                skipped = sum(
                    1
                    for predicate in plan.pivot_predicates
                    if predicate not in delta_predicates
                )
                if skipped:
                    counters["plan.pivots_skipped"] += skipped
                    counters["plan.nodes_saved"] += skipped
            items.extend(plan.shard_items(index, delta_predicates, delta_terms, shards))
        return items

    def run_round(
        self,
        current: Instance,
        sync: Iterable[Atom],
        delta: Instance | None,
        delta_terms: set[Term] | None,
        domain_pool: list[Term] | None,
    ) -> RoundOutcome:
        self._fallback.control = self.control
        if self._degraded:
            return self._fallback.run_round(
                current, sync, delta, delta_terms, domain_pool
            )
        try:
            return self._pooled_round(sync, delta, delta_terms, domain_pool, current)
        except _ParallelUnavailable:
            self._degrade()
            return self._fallback.run_round(
                current, sync, delta, delta_terms, domain_pool
            )

    def _pooled_round(
        self,
        sync: Iterable[Atom],
        delta: Instance | None,
        delta_terms: set[Term] | None,
        domain_pool: list[Term] | None,
        current: Instance,
    ) -> RoundOutcome:
        counters = self.telemetry.counters
        items = self._build_items(delta, delta_terms)
        items.sort(key=_item_sort_key)
        need_domain = domain_pool is not None
        self._round += 1
        control = self.control
        time_cap = control.remaining() if control is not None else None
        try:
            # Encode the broadcast parts (sync delta + new terms) once;
            # the per-worker messages differ only in their item slice.
            term_defs: list = []
            pred_defs: list = []
            sync_codes = [
                self._encoder.atom(item, term_defs, pred_defs) for item in sync
            ]
            delta_codes = (
                None
                if delta_terms is None
                else [self._encoder.term(term, term_defs) for term in delta_terms]
            )
            self._term_def_history.extend(term_defs)
            self._pred_def_history.extend(pred_defs)
            per_worker_payloads = []
            for worker_index in range(self.workers):
                message = (
                    term_defs,
                    pred_defs,
                    sync_codes,
                    delta_codes,
                    items[worker_index :: self.workers],
                    need_domain,
                    self.worker_max_atoms,
                    time_cap,
                )
                per_worker_payloads.append(pickle.dumps(message, _PICKLE_PROTOCOL))
        except _ParallelUnavailable:
            raise
        except Exception as error:  # defensive: codec state must stay sane
            raise _ParallelUnavailable(f"round payload encoding failed: {error!r}")
        if faults.active() and faults.fire("parallel.worker_death", self._round):
            # Chaos hook: SIGKILL worker 0 before dispatch, so both the
            # send and the receive side of the failure path get exercised.
            os.kill(self._processes[0].pid, signal.SIGKILL)
            self._processes[0].join(timeout=2.0)
        responses: list = [None] * self.workers
        failed: list[int] = []
        for index, payload in enumerate(per_worker_payloads):
            try:
                self._connections[index].send_bytes(payload)
                counters["parallel.bytes_sent"] += len(payload)
            except (BrokenPipeError, OSError):
                failed.append(index)
        for index in range(self.workers):
            if index in failed:
                continue
            try:
                raw = self._recv(self._connections[index])
                counters["parallel.bytes_received"] += len(raw)
                response = pickle.loads(raw)
            except (EOFError, OSError, pickle.UnpicklingError):
                failed.append(index)
                continue
            if response[0] == "err":
                # A traceback means the worker's code raised — a bug, not
                # a crash; respawning would just raise again.  Degrade.
                raise _ParallelUnavailable(f"worker raised:\n{response[1]}")
            responses[index] = response
        for index in failed:
            responses[index] = self._retry_shard(
                index,
                current,
                sync_codes,
                delta_codes,
                items,
                need_domain,
                time_cap,
            )
        if any(response[7] for response in responses):
            # A worker ran out of in-round deadline budget: abandon the
            # round unapplied — the loop records the interruption and the
            # surviving prefix stays exact.
            raise _RoundInterrupt("deadline")
        counters["parallel.rounds"] += 1
        counters["parallel.shards_dispatched"] += len(items)
        return self._merge(responses, current)

    def _recv(self, connection) -> bytes:
        """Receive one response, honouring cancellation while waiting.

        Without a control this is a plain blocking read.  With one, the
        coordinator polls so a :class:`CancellationToken` triggered from
        a signal handler interrupts the round without waiting for worker
        stragglers (deadline stops arrive from the workers themselves,
        via their in-message time cap).
        """
        control = self.control
        if control is None:
            return connection.recv_bytes()
        while not connection.poll(0.05):
            if control.interruption() == "cancelled":
                raise _RoundInterrupt("cancelled")
        return connection.recv_bytes()

    def _retry_shard(
        self,
        index: int,
        current: Instance,
        sync_codes: list,
        delta_codes,
        items: list[tuple],
        need_domain: bool,
        time_cap,
    ) -> tuple:
        """Respawn dead worker ``index`` and re-evaluate its item slice.

        The replacement is seeded with the coordinator's authoritative
        instance (which already includes this round's sync — replicas
        apply sync idempotently), replays the full definition history so
        this round's broadcast codes resolve, and gets a fresh decoder
        slot (its worker→coordinator encoder starts empty).  Any failure
        here — including the injected ``parallel.respawn_fail`` — is
        terminal for the pool and degrades the run in-process.
        """
        counters = self.telemetry.counters
        old_process = self._processes[index]
        try:
            self._connections[index].close()
        except OSError:
            pass
        old_process.join(timeout=2.0)
        if old_process.is_alive():
            old_process.kill()
            old_process.join(timeout=1.0)
        if faults.active() and faults.fire("parallel.respawn_fail"):
            raise _ParallelUnavailable("injected respawn failure")
        try:
            connection, process = self._spawn_worker(list(current))
        except Exception as error:
            raise _ParallelUnavailable(f"cannot respawn worker: {error!r}")
        self._connections[index] = connection
        self._processes[index] = process
        self._decoders[index] = _WireDecoder()
        counters["parallel.worker_restarts"] += 1
        message = (
            list(self._term_def_history),
            list(self._pred_def_history),
            sync_codes,
            delta_codes,
            items[index :: self.workers],
            need_domain,
            self.worker_max_atoms,
            time_cap,
        )
        try:
            payload = pickle.dumps(message, _PICKLE_PROTOCOL)
            connection.send_bytes(payload)
            counters["parallel.bytes_sent"] += len(payload)
            raw = self._recv(connection)
            counters["parallel.bytes_received"] += len(raw)
            response = pickle.loads(raw)
        except (EOFError, OSError, pickle.UnpicklingError) as error:
            raise _ParallelUnavailable(
                f"respawned worker failed its retry: {error!r}"
            )
        if response[0] == "err":
            raise _ParallelUnavailable(f"respawned worker raised:\n{response[1]}")
        return response

    def _merge(self, responses: list[tuple], current: Instance) -> RoundOutcome:
        """Fold worker results in deterministic (rule, pivot, shard) order."""
        counters = self.telemetry.counters
        matches = 0
        dedup_hits = 0
        truncated = False
        item_results: list[tuple] = []
        for worker_index, response in enumerate(responses):
            (
                _,
                term_defs,
                pred_defs,
                results,
                worker_counters,
                seconds,
                overran,
                _interrupted,
            ) = response
            decoder = self._decoders[worker_index]
            decoder.apply_defs(term_defs, pred_defs)
            truncated = truncated or overran
            counters["parallel.worker_us"] += int(seconds * 1_000_000)
            for name, value in worker_counters.items():
                counters[name] += value
            for item, item_matches, item_dedups, pairs in results:
                item_results.append((item, item_matches, item_dedups, pairs, decoder))
        if truncated:
            counters["parallel.worker_truncated"] += 1
            return RoundOutcome(produced={}, matches=0, dedup_hits=0, overflow=True)
        item_results.sort(key=lambda entry: _item_sort_key(entry[0]))
        produced: dict[Atom, Derivation] = {}
        merge_dedups = 0
        with self.telemetry.phase("parallel.merge"):
            for item, item_matches, item_dedups, pairs, decoder in item_results:
                matches += item_matches
                dedup_hits += item_dedups
                rule = self.prepared[item[1]].skolemized.rule
                for atom_code, sigma_code in pairs:
                    new_atom = decoder.atom(atom_code)
                    if new_atom in current or new_atom in produced:
                        dedup_hits += 1
                        merge_dedups += 1
                        continue
                    sigma_key = tuple(
                        (decoder.term(var_code), decoder.term(term_code))
                        for var_code, term_code in sigma_code
                    )
                    produced[new_atom] = Derivation(rule, sigma_key)
        if merge_dedups:
            counters["parallel.merge_dedup_hits"] += merge_dedups
        return RoundOutcome(produced=produced, matches=matches, dedup_hits=dedup_hits)

    # ------------------------------------------------------------------
    def _degrade(self) -> None:
        """Shut the pool down and continue in-process from here on."""
        self._degraded = True
        self.telemetry.counters["parallel.fallback_inprocess"] = 1
        self._shutdown()

    def _shutdown(self) -> None:
        """Stop the pool: polite request, then join → terminate → kill.

        A worker deep in a long round (or wedged) must not outlive the
        run: after the cooperative shutdown message the coordinator
        joins with a timeout, escalates to SIGTERM, then SIGKILL.  A
        worker that survives even SIGKILL (unwaitable kernel state) is
        counted under ``parallel.leaked_workers`` — the chaos suite
        asserts that stays zero.
        """
        for connection in self._connections:
            try:
                connection.send_bytes(pickle.dumps(None, _PICKLE_PROTOCOL))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        leaked = 0
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
            if process.is_alive():
                leaked += 1
            else:
                try:
                    process.close()
                except ValueError:  # pragma: no cover — already closed
                    pass
        if leaked:  # pragma: no cover — needs an unkillable worker
            self.telemetry.counters["parallel.leaked_workers"] += leaked
        self._connections = []
        self._processes = []

    def close(self) -> None:
        self._shutdown()


def make_round_executor(
    prepared: tuple[_PreparedRule, ...],
    theory,
    base: Instance,
    budget: ChaseBudget,
    telemetry: Telemetry,
    workers: int,
) -> ParallelRoundExecutor | None:
    """Build the pool, or return ``None`` (with the fallback flag set).

    This is the single entry point :func:`repro.chase.engine.chase` uses:
    a ``None`` means "run in-process" and is always safe — unpicklable
    workloads and pool start failures degrade here, not as exceptions in
    the middle of a chase.
    """
    try:
        return ParallelRoundExecutor(
            prepared, theory, base, budget, telemetry, workers
        )
    except _ParallelUnavailable:
        telemetry.counters["parallel.fallback_inprocess"] = 1
        return None


def parallel_available() -> bool:
    """Can this platform start worker processes at all?

    A cheap capability probe for callers that want to pick a default
    worker count (the CLI uses it to warn, not to fail).
    """
    try:
        multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_all_start_methods()[0]
        )
        return True
    except Exception:  # pragma: no cover — exotic platforms only
        return False


__all__ = [
    "ParallelRoundExecutor",
    "make_round_executor",
    "parallel_available",
]
