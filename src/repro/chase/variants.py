"""Alternative chase variants, for the comparison experiments (E10).

The paper fixes the **semi-oblivious Skolem** chase (Section 3, footnote
13/15); the two classical neighbours are implemented here so the benchmark
suite can demonstrate why:

* the **oblivious** chase names Skolem terms after *all* body variables, so
  the very same head can be witnessed many times (footnote 15's warning) —
  it produces a superset of the semi-oblivious result, sometimes much
  larger;
* the **restricted** (standard) chase applies a rule only when its head is
  not already satisfied, producing the smallest results but losing the
  determinism that Observation 8 (literal chase monotonicity) requires.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from ..logic.atoms import Atom
from ..logic.homomorphism import iter_query_homomorphisms
from ..logic.instance import Instance
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from ..logic.tgd import TGD, Theory
from .termination import _head_witnessed


@dataclass
class VariantResult:
    """Outcome of a non-Skolem chase run."""

    instance: Instance
    rounds_run: int
    terminated: bool


def _ordered_variables(rule: TGD) -> tuple[Variable, ...]:
    ordered: list[Variable] = []
    seen: set[Variable] = set()
    for item in itertools.chain(rule.body, rule.head):
        for variable in item.variables():
            if variable not in seen:
                seen.add(variable)
                ordered.append(variable)
    return tuple(ordered)


def _rule_digest(rule: TGD) -> str:
    return hashlib.md5(repr(rule).encode("utf8")).hexdigest()[:8]


def oblivious_chase(
    theory: Theory, base: Instance, max_rounds: int = 50, max_atoms: int = 200_000
) -> VariantResult:
    """The oblivious chase: Skolem arguments are all body variables.

    Each distinct body match creates its own witnesses, even when two
    matches agree on the frontier.
    """
    current = base.copy()
    rounds = 0
    for _ in range(max_rounds):
        produced: set[Atom] = set()
        for rule in theory:
            digest = _rule_digest(rule)
            universal = tuple(sorted(rule.universal_head_variables(), key=lambda v: v.name))
            carriers = tuple(
                var for var in _ordered_variables(rule) if var not in rule.existential
            )
            for body_match in iter_query_homomorphisms(rule.body, current):
                assignments = [body_match]
                if universal:
                    assignments = [
                        {**body_match, **dict(zip(universal, combo))}
                        for combo in itertools.product(
                            sorted(current.domain(), key=repr), repeat=len(universal)
                        )
                    ]
                for sigma in assignments:
                    full = dict(sigma)
                    args = tuple(full[var] for var in carriers if var in full)
                    for index, existential in enumerate(
                        sorted(rule.existential, key=lambda v: v.name)
                    ):
                        full[existential] = FunctionTerm(f"ob_{digest}_{index}", args)
                    for head_atom in rule.head:
                        new_atom = head_atom.substitute(full)
                        if new_atom not in current:
                            produced.add(new_atom)
        if not produced:
            return VariantResult(current, rounds, True)
        current.update(produced)
        rounds += 1
        if len(current) > max_atoms:
            return VariantResult(current, rounds, False)
    return VariantResult(current, rounds, False)


def restricted_chase(
    theory: Theory, base: Instance, max_rounds: int = 50, max_atoms: int = 200_000
) -> VariantResult:
    """The restricted (standard) chase: fire only unsatisfied rule matches.

    Fresh labelled nulls are introduced per firing; within one round the
    satisfaction checks are performed against the state at the start of the
    round plus atoms added earlier in the same round, making the run
    deterministic for reproducibility (rule/match order fixed).
    """
    current = base.copy()
    rounds = 0
    null_counter = itertools.count()
    for _ in range(max_rounds):
        fired = False
        for rule in theory:
            universal = tuple(sorted(rule.universal_head_variables(), key=lambda v: v.name))
            matches = list(iter_query_homomorphisms(rule.body, current))
            for body_match in matches:
                assignments = [body_match]
                if universal:
                    assignments = [
                        {**body_match, **dict(zip(universal, combo))}
                        for combo in itertools.product(
                            sorted(current.domain(), key=repr), repeat=len(universal)
                        )
                    ]
                for sigma in assignments:
                    if _head_witnessed(rule, sigma, current):
                        continue
                    full = dict(sigma)
                    for existential in sorted(rule.existential, key=lambda v: v.name):
                        full[existential] = Constant(f"_null{next(null_counter)}")
                    for head_atom in rule.head:
                        current.add(head_atom.substitute(full))
                    fired = True
        if not fired:
            return VariantResult(current, rounds, True)
        rounds += 1
        if len(current) > max_atoms:
            return VariantResult(current, rounds, False)
    return VariantResult(current, rounds, False)
