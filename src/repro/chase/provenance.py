"""Provenance over chase results: birth atoms, frontiers, parents, ancestors.

This module turns the per-atom :class:`~repro.chase.engine.Derivation`
records of the engine into the notions the paper uses:

* the **frontier** ``fr(alpha)`` of a produced atom (Observation 9 —
  well-defined because any two derivations of the same atom agree on it),
* the **birth atom** of a chase-invented term (Observation 10 — the unique
  atom containing the term outside its frontier),
* **parent** and **ancestor** functions (Appendix A) including the
  *connected* variants that ignore nullary parents, used by the Crucial
  Lemma (Lemma 77).
"""

from __future__ import annotations

from typing import Iterable

from ..logic.atoms import Atom
from ..logic.terms import FunctionTerm, Term
from .engine import ChaseResult, Derivation


def frontier_of(result: ChaseResult, item: Atom) -> set[Term]:
    """``fr(alpha)`` for a produced atom (Observation 9)."""
    derivation = result.derivations.get(item)
    if derivation is None:
        raise KeyError(f"{item!r} was not produced by this chase")
    return derivation.frontier_image()


def invented_terms(result: ChaseResult) -> set[Term]:
    """Terms of the chase that are not in the base instance's domain."""
    return result.instance.domain() - result.base.domain()


def birth_atom(result: ChaseResult, term: Term) -> Atom:
    """The unique atom in which ``term`` is born (Observation 10).

    Defined for chase-invented terms only: the atom containing ``term``
    outside of its frontier.
    """
    if term in result.base.domain():
        raise ValueError(f"{term!r} belongs to the base instance")
    candidates = [
        item
        for item in result.instance.containing(term)
        if item in result.derivations and term not in frontier_of(result, item)
    ]
    if not candidates:
        raise KeyError(f"no birth atom found for {term!r}")
    births = set(candidates)
    if len(births) > 1:
        raise AssertionError(
            f"Observation 10 violated: {term!r} has {len(births)} birth atoms"
        )
    return births.pop()


def parents(result: ChaseResult, item: Atom) -> list[Atom]:
    """``par(alpha)``: the body image of the recorded derivation.

    For base atoms the paper's convention makes the atom its own ancestor;
    we return an empty parent list and let :func:`ancestors` implement the
    base case.
    """
    derivation = result.derivations.get(item)
    if derivation is None:
        return []
    return derivation.body_image()


def connected_parents(result: ChaseResult, item: Atom) -> list[Atom]:
    """``cpar(alpha)``: parents that are not nullary atoms (Appendix A)."""
    return [parent for parent in parents(result, item) if parent.predicate.arity > 0]


def ancestors(
    result: ChaseResult,
    item: Atom,
    parent_fn=parents,
    _cache: dict[Atom, frozenset[Atom]] | None = None,
) -> frozenset[Atom]:
    """``anc(alpha)``: the base facts used to derive ``alpha``.

    ``anc(alpha) = {alpha}`` for base atoms, otherwise the union of the
    ancestors of the parents.  ``parent_fn`` may be
    :func:`connected_parents` to obtain ``canc`` instead.
    """
    cache = _cache if _cache is not None else {}

    def walk(current: Atom) -> frozenset[Atom]:
        cached = cache.get(current)
        if cached is not None:
            return cached
        if current in result.base:
            found = frozenset((current,))
        else:
            union: set[Atom] = set()
            for parent in parent_fn(result, current):
                union |= walk(parent)
            found = frozenset(union)
        cache[current] = found
        return found

    return walk(item)


def ancestor_support(result: ChaseResult, items: Iterable[Atom]) -> frozenset[Atom]:
    """Union of the ancestor sets of many atoms (one shared memo table)."""
    cache: dict[Atom, frozenset[Atom]] = {}
    union: set[Atom] = set()
    for item in items:
        union |= ancestors(result, item, _cache=cache)
    return frozenset(union)


def dependents_index(
    derivations: "dict[Atom, Derivation]",
) -> dict[Atom, list[Atom]]:
    """Invert recorded derivations into a parent -> children adjacency.

    The edge set of the provenance DAG walked by DRed over-deletion
    (:func:`repro.incremental.incremental_update`): each produced atom
    points back at its recorded parents (the body image of its
    derivation), so the inverse maps every atom to the atoms whose
    recorded derivation consumed it.
    """
    dependents: dict[Atom, list[Atom]] = {}
    for child, derivation in derivations.items():
        for parent in derivation.body_image():
            dependents.setdefault(parent, []).append(child)
    return dependents


def deletion_cone(
    removed: Iterable[Atom],
    dependents: dict[Atom, list[Atom]],
    protected,
) -> set[Atom]:
    """The DRed over-deletion set: ``removed`` plus all recorded dependents.

    Walks the dependents adjacency transitively from the removed facts.
    Atoms in ``protected`` (the post-update base instance) are never
    entered into the cone — a base fact needs no derivation to exist —
    but the walk does pass *through* a removed fact's children even when
    those have other derivations; the re-derive rounds bring such
    survivors back.  Sound because recorded parents are strictly
    shallower than their children: everything outside the cone is
    derivable from the surviving base by induction on derivation depth.
    """
    deleted: set[Atom] = set(removed)
    stack: list[Atom] = list(deleted)
    while stack:
        parent = stack.pop()
        for child in dependents.get(parent, ()):
            if child in deleted or child in protected:
                continue
            deleted.add(child)
            stack.append(child)
    return deleted


def skolem_depth(term: Term) -> int:
    """Nesting depth of Skolem functors in a term (0 for base elements)."""
    return term.depth()


def derivation_depths(result: ChaseResult) -> dict[Atom, int]:
    """Map every atom of the chase to the round it first appeared in."""
    depths: dict[Atom, int] = {}
    for index, added in enumerate(result.round_added):
        for item in added:
            depths.setdefault(item, index)
    return depths


def _match_ground(pattern: Atom, ground: Atom, binding: dict) -> dict | None:
    """Match a skolemized head atom against a ground chase atom.

    Pattern positions hold frontier variables or Skolem function terms over
    frontier variables; matching binds the frontier consistently.
    """
    if pattern.predicate != ground.predicate:
        return None
    added: dict = {}

    def walk(p: Term, g: Term) -> bool:
        from ..logic.terms import FunctionTerm, Variable

        if isinstance(p, Variable):
            bound = binding.get(p, added.get(p))
            if bound is None:
                added[p] = g
                return True
            return bound == g
        if isinstance(p, FunctionTerm):
            if not isinstance(g, FunctionTerm) or p.functor != g.functor:
                return False
            return all(walk(pa, ga) for pa, ga in zip(p.args, g.args))
        return p == g

    for p, g in zip(pattern.args, ground.args):
        if not walk(p, g):
            return None
    return added


def possible_parent_sets(result: ChaseResult, item: Atom) -> list[list[Atom]]:
    """Every body image that could have produced ``item``.

    The paper stresses (Example 66) that the parent function is a *choice*:
    the same atom may arise from many rule applications.  This enumerates
    them all by unifying ``item`` with every skolemized head atom and
    extending to body matches inside the chase.
    """
    from ..logic.homomorphism import iter_query_homomorphisms
    from .skolem import skolemize

    found: list[list[Atom]] = []
    seen: set[frozenset[Atom]] = set()
    for rule in result.theory:
        skolemized = skolemize(rule)
        for head_atom in skolemized.head:
            binding = _match_ground(head_atom, item, {})
            if binding is None:
                continue
            partial = {
                var: term
                for var, term in binding.items()
                if var in rule.body_variables()
            }
            for sigma in iter_query_homomorphisms(
                rule.body, result.instance, partial
            ):
                parents_image = [a.substitute(sigma) for a in rule.body]
                key = frozenset(parents_image)
                if key not in seen:
                    seen.add(key)
                    found.append(parents_image)
    return found


def possible_ancestors(
    result: ChaseResult,
    items: Iterable[Atom],
    connected_only: bool = False,
) -> frozenset[Atom]:
    """Base facts reachable through *any* possible parent choice.

    The union, over all ancestor functions, of the Lemma-77 left-hand
    sides; computed as graph reachability over possible-parent edges (the
    chase may offer cyclic justifications, which reachability handles).
    ``connected_only`` ignores nullary parents, matching ``canc``.
    """
    reachable_base: set[Atom] = set()
    visited: set[Atom] = set()
    frontier = [item for item in items]
    while frontier:
        current = frontier.pop()
        if current in visited:
            continue
        visited.add(current)
        if current in result.base:
            reachable_base.add(current)
            continue
        for parent_set in possible_parent_sets(result, current):
            for parent in parent_set:
                if connected_only and parent.predicate.arity == 0:
                    continue
                if parent not in visited:
                    frontier.append(parent)
    return frozenset(reachable_base)


def minimal_support(
    result: ChaseResult, item: Atom
) -> frozenset[Atom]:
    """A subset of the base instance from which ``item`` is still derivable.

    Uses the recorded derivation's ancestors — an over-approximation of the
    *minimum* support in general (the chase may have had cheaper ways to
    derive the atom), but exact for the witness families used in the
    experiments, and always sound: chasing the returned subset re-derives
    ``item`` (checked by tests via Observation 8).
    """
    return ancestors(result, item)
