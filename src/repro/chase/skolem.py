"""Skolemization with the paper's naming convention (Definitions 3-4).

For a rule ``beta(x, y) -> exists w. alpha(y, w)`` the skolemized head
``sh(rho)`` replaces each existential variable ``w`` by a function term
``f_i^tau(y)`` where

* ``tau`` is the *isomorphism type* of the (quantified) head: it records the
  relation symbols, the equality pattern among variables and which positions
  carry quantified variables — but not the variable names, and
* ``i`` identifies ``w`` within the head (the paper uses the earliest
  position where ``w`` occurs; we use the index of ``w`` in the canonical
  renaming, which is equivalent),
* the arguments are the frontier variables ``y`` in canonical order.

Crucially, ``sh(rho)`` does **not** depend on the rule body (that would be
the oblivious chase, cf. footnote 15) and two rules with syntactically
isomorphic heads share Skolem functors.  Because function terms compare
structurally, chases of sub-instances are literal subsets of chases of
super-instances (Observation 8), which Section 7's locality notion quantifies
over.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..logic.atoms import Atom
from ..logic.terms import FunctionTerm, Variable
from ..logic.tgd import TGD


@dataclass(frozen=True)
class SkolemizedRule:
    """A rule together with its skolemized head.

    ``head`` contains no existential variables: each has been replaced by a
    function term over the frontier variables.  ``frontier_order`` is the
    canonical ordering used as Skolem-argument order.
    """

    rule: TGD
    head: tuple[Atom, ...]
    frontier_order: tuple[Variable, ...]


def _canonical_head(rule: TGD) -> tuple[str, dict[Variable, str]]:
    """Canonically rename the head and return (type string, renaming).

    Frontier variables become ``y0, y1, ...`` and existential variables
    ``w0, w1, ...``, both in order of first occurrence in the head.  The
    type string is the renamed head conjunction; it realizes the
    isomorphism type ``tau`` of Definition 3 (constants never occur in the
    heads we deal with, matching footnote 14).
    """
    renaming: dict[Variable, str] = {}
    frontier_count = 0
    existential_count = 0
    for item in rule.head:
        for term in item.args:
            if not isinstance(term, Variable) or term in renaming:
                continue
            if term in rule.existential:
                renaming[term] = f"w{existential_count}"
                existential_count += 1
            else:
                renaming[term] = f"y{frontier_count}"
                frontier_count += 1
    pieces = []
    for item in rule.head:
        inner = ",".join(
            renaming[term] if isinstance(term, Variable) else repr(term)
            for term in item.args
        )
        pieces.append(f"{item.predicate.name}/{item.predicate.arity}({inner})")
    return "|".join(pieces), renaming


def skolemize(rule: TGD) -> SkolemizedRule:
    """Compute ``sh(rho)``: the head with Skolem terms for existentials."""
    type_string, renaming = _canonical_head(rule)
    digest = hashlib.md5(type_string.encode("utf8")).hexdigest()[:8]

    def _index(canonical: str) -> int:
        return int(canonical[1:])

    frontier_order = tuple(
        var
        for var, canonical in sorted(
            renaming.items(), key=lambda kv: _index(kv[1])
        )
        if canonical.startswith("y")
    )
    replacements: dict[Variable, FunctionTerm] = {}
    for var, canonical in renaming.items():
        if canonical.startswith("w"):
            functor = f"f_{canonical}_{digest}"
            replacements[var] = FunctionTerm(functor, frontier_order)
    skolem_head = tuple(item.substitute(replacements) for item in rule.head)
    return SkolemizedRule(rule=rule, head=skolem_head, frontier_order=frontier_order)


def apply_rule(skolemized: SkolemizedRule, sigma: dict[Variable, object]) -> list[Atom]:
    """``appl(rho, sigma)`` of Definition 5, for every head atom.

    ``sigma`` must bind every frontier variable (body matches provide body
    variables; the chase engine supplies universal head variables).
    """
    return [item.substitute(sigma) for item in skolemized.head]
