"""Homomorphism search: the engine behind chase steps, CQ evaluation,
containment, cores and the Section-8 folding constructions.

Two flavours are provided over one backtracking core:

* **query homomorphisms** — map the *variables* of a set of atoms into an
  instance so that every atom lands on a fact (constants and ground Skolem
  terms must match themselves), and
* **structure homomorphisms** — map the *domain elements* of a source
  instance into a target instance (``h(alpha) in F`` for every fact, as in
  Section 2), optionally fixing some elements.  Here even constants may be
  remapped unless fixed — the paper's definition has no constant-preservation
  requirement, identities are always imposed explicitly.

The search uses the instance's ``(predicate, position, term)`` indexes and a
dynamic fewest-candidates-first atom ordering.

Hot callers (the chase) precompile their patterns once via
:func:`compile_query_patterns` and search with
:func:`iter_pattern_homomorphisms`; an optional
:class:`~repro.telemetry.Telemetry` records search effort (nodes expanded,
index-bucket estimates vs. facts actually scanned, backtrack clashes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .instance import Instance
from .query import ConjunctiveQuery
from .terms import Term, Variable

if TYPE_CHECKING:
    from ..telemetry import Telemetry

# A pattern slot: ("var", key) must be assigned, ("const", term) must match.
_Slot = tuple[str, object]
_Pattern = tuple[Atom, tuple[_Slot, ...]]


@dataclass(frozen=True)
class JoinPlan:
    """Precomputed atom orders for a compiled pattern sequence.

    ``base_order`` drives full (non-delta) searches; ``pivot_orders[i]``
    drives the semi-naive search whose pattern ``i`` is pinned to the
    delta.  An entry of ``None`` means the static order would hit an
    *unbound prefix* (an atom sharing no variable with everything placed
    before it and carrying no constant) — those searches fall back to the
    dynamic fewest-candidates selection.
    """

    base_order: tuple[int, ...] | None
    pivot_orders: tuple[tuple[int, ...] | None, ...]


def connectivity_order(
    patterns: Sequence[_Pattern],
    first: int | None = None,
    bound: Iterable = (),
) -> tuple[tuple[int, ...], bool]:
    """A static join order by greedy variable connectivity.

    Starting from ``first`` (or the syntactically most constrained atom),
    repeatedly append the pattern sharing the most variables with the
    prefix (ties: more constant slots, fewer fresh variables, original
    index).  Returns the order plus whether every non-initial atom was
    *connected* — had a shared variable or a constant — when placed; a
    ``False`` means the order contains an unbound prefix and a dynamic
    search will likely do better.

    ``bound`` seeds the prefix with variables the caller will pin via a
    partial assignment before searching (containment pins the answer
    variables): atoms touching them score as already-joined, so the
    order starts from the anchored part of the body instead of treating
    those atoms as unconstrained.
    """
    remaining = set(range(len(patterns)))
    bound_vars: set = set(bound)
    order: list[int] = []
    connected = True

    def place(index: int) -> None:
        order.append(index)
        remaining.discard(index)
        for kind, value in patterns[index][1]:
            if kind == "var":
                bound_vars.add(value)

    if first is not None:
        place(first)
    while remaining:
        best_index = -1
        best_score: tuple | None = None
        for index in remaining:
            shared = 0
            ground = 0
            fresh = 0
            seen: set = set()
            for kind, value in patterns[index][1]:
                if kind == "const":
                    ground += 1
                elif value in bound_vars:
                    shared += 1
                elif value not in seen:
                    fresh += 1
                    seen.add(value)
            score = (shared, ground, -fresh, -index)
            if best_score is None or score > best_score:
                best_score = score
                best_index = index
        if (
            (order or bound_vars)
            and best_score is not None
            and best_score[0] == 0
            and best_score[1] == 0
        ):
            connected = False
        place(best_index)
    return tuple(order), connected


def plan_join(patterns: Sequence[_Pattern]) -> JoinPlan:
    """Plan a pattern sequence: base order plus one order per delta pivot.

    Orders that would expand an unbound prefix are dropped (``None``) so
    the search keeps its dynamic fewest-candidates behaviour exactly
    where static planning has nothing to offer.
    """
    base_order, base_connected = connectivity_order(patterns)
    pivot_orders: list[tuple[int, ...] | None] = []
    for pivot in range(len(patterns)):
        order, connected = connectivity_order(patterns, first=pivot)
        pivot_orders.append(order if connected else None)
    return JoinPlan(
        base_order=base_order if base_connected else None,
        pivot_orders=tuple(pivot_orders),
    )


def _slots_for_query_atom(item: Atom) -> tuple[_Slot, ...]:
    slots: list[_Slot] = []
    for term in item.args:
        if isinstance(term, Variable):
            slots.append(("var", term))
        elif term.is_ground():
            slots.append(("const", term))
        else:
            raise ValueError(
                f"query atoms must not contain non-ground function terms: {item!r}"
            )
    return tuple(slots)


def compile_query_patterns(atoms: Sequence[Atom]) -> tuple[_Pattern, ...]:
    """Precompile query atoms into match patterns.

    The slot classification (variable vs. ground) per atom position is
    loop-invariant; the chase compiles each rule body once per run instead
    of once per round per rule.
    """
    return tuple((item, _slots_for_query_atom(item)) for item in atoms)


def _slots_for_element_atom(item: Atom, fixed: Mapping[Term, Term]) -> tuple[_Slot, ...]:
    slots: list[_Slot] = []
    for term in item.args:
        if term in fixed:
            slots.append(("const", fixed[term]))
        else:
            slots.append(("var", term))
    return tuple(slots)


def _candidates(
    pattern: _Pattern, instance: Instance, assignment: dict
) -> tuple[int, Iterable[Atom]]:
    """Return (estimated count, candidate facts) for a pattern atom."""
    item, slots = pattern
    best_key: tuple | None = None
    best_count: int | None = None
    for position, (kind, value) in enumerate(slots):
        if kind == "const":
            bound: Term | None = value  # type: ignore[assignment]
        else:
            bound = assignment.get(value)
        if bound is None:
            continue
        count = instance.candidate_count(item.predicate, position, bound)
        if best_count is None or count < best_count:
            best_count = count
            best_key = (item.predicate, position, bound)
            if count == 0:
                break
    if best_key is not None:
        pred, position, bound = best_key
        return best_count or 0, instance.with_term_at(pred, position, bound)
    facts = instance.with_predicate(item.predicate)
    return len(facts), facts


def _match(pattern: _Pattern, fact: Atom, assignment: dict) -> dict | None:
    """Try to extend ``assignment`` so that the pattern maps onto ``fact``.

    Returns the new bindings added (possibly empty), or ``None`` on clash.
    """
    _, slots = pattern
    added: dict = {}
    for (kind, value), fact_term in zip(slots, fact.args):
        if kind == "const":
            if value != fact_term:
                return None
            continue
        bound = assignment.get(value)
        if bound is None:
            bound = added.get(value)
        if bound is None:
            added[value] = fact_term
        elif bound != fact_term:
            return None
    return added


# Search-effort accumulator slots (flushed to Telemetry counters in bulk;
# list-index bumps are far cheaper than per-node Counter increments).
_NODES, _ESTIMATED, _SCANNED, _CLASHES = range(4)


def _flush_search_effort(telemetry: "Telemetry", effort: list[int]) -> None:
    counters = telemetry.counters
    counters["hom.nodes"] += effort[_NODES]
    counters["hom.candidates_estimated"] += effort[_ESTIMATED]
    counters["hom.candidates_scanned"] += effort[_SCANNED]
    if effort[_CLASHES]:
        counters["hom.backtrack_clashes"] += effort[_CLASHES]


def _search(
    patterns: list[_Pattern],
    instance: Instance,
    assignment: dict,
    restrictions: dict[int, Instance] | None,
    effort: list[int] | None = None,
    order: Sequence[int] | None = None,
) -> Iterator[dict]:
    """Iterative backtracking join over an explicit frame stack.

    ``restrictions`` optionally forces specific pattern indices to match
    within a different (smaller) instance — the semi-naive chase uses this
    to pin one atom to the most recent delta.

    Atom selection is dynamic fewest-candidates-first by default; with
    ``order`` (a permutation of pattern indices, e.g. a chase plan's
    connectivity order) level ``k`` expands ``patterns[order[k]]`` without
    re-scoring the remaining atoms.  The candidate *facts* at each level
    still come from the smallest index bucket the current bindings allow,
    so a static order only fixes which atom is expanded, never which
    bucket serves it.
    """
    depth_limit = len(patterns)
    if depth_limit == 0:
        yield dict(assignment)
        return
    track = effort is not None
    used = [False] * depth_limit if order is None else None
    # One frame per expanded pattern: [pattern index, candidate facts,
    # next candidate position, keys bound by the current candidate].
    stack: list[list] = []
    descend = True
    while True:
        if descend:
            # Pick the pattern for the next level and push a fresh frame.
            if order is not None:
                index = order[len(stack)]
                source = restrictions.get(index, instance) if restrictions else instance
                count, candidates = _candidates(patterns[index], source, assignment)
            else:
                index = -1
                count = None
                candidates = ()
                for candidate_index in range(depth_limit):
                    if used[candidate_index]:
                        continue
                    source = (
                        restrictions.get(candidate_index, instance)
                        if restrictions
                        else instance
                    )
                    found_count, found = _candidates(
                        patterns[candidate_index], source, assignment
                    )
                    if count is None or found_count < count:
                        index, count, candidates = candidate_index, found_count, found
                        if found_count == 0:
                            break
                used[index] = True
            candidate_list = list(candidates)
            if track:
                effort[_NODES] += 1
                effort[_ESTIMATED] += count or 0
                effort[_SCANNED] += len(candidate_list)
            stack.append([index, candidate_list, 0, None])
            descend = False
            continue
        # Advance the top frame to its next matching candidate.
        frame = stack[-1]
        index, candidate_list, position, added = frame
        if added is not None:
            for key in added:
                del assignment[key]
            frame[3] = None
        pattern = patterns[index]
        matched = False
        while position < len(candidate_list):
            fact = candidate_list[position]
            position += 1
            bindings = _match(pattern, fact, assignment)
            if bindings is None:
                if track:
                    effort[_CLASHES] += 1
                continue
            assignment.update(bindings)
            frame[2] = position
            frame[3] = tuple(bindings)
            matched = True
            break
        if not matched:
            stack.pop()
            if used is not None:
                used[index] = False
            if not stack:
                return
            continue
        if len(stack) == depth_limit:
            yield dict(assignment)
        else:
            descend = True


def iter_pattern_homomorphisms(
    patterns: Sequence[_Pattern],
    instance: Instance,
    partial: Mapping[Variable, Term] | None = None,
    delta: Instance | None = None,
    telemetry: "Telemetry | None" = None,
    plan: JoinPlan | None = None,
) -> Iterator[dict[Variable, Term]]:
    """Like :func:`iter_query_homomorphisms` over precompiled patterns.

    With a ``plan`` (see :func:`plan_join`) searches follow the
    precomputed atom orders instead of re-scoring every remaining pattern
    per node, and semi-naive pivots whose predicate has no fact in
    ``delta`` are skipped outright — they cannot yield a match.  Both
    shortcuts change only the work done, never the set of homomorphisms.
    """
    pattern_list = list(patterns)
    base = dict(partial) if partial else {}
    effort = [0, 0, 0, 0] if telemetry is not None else None
    counters = telemetry.counters if telemetry is not None else None
    try:
        if delta is None:
            order = plan.base_order if plan is not None else None
            if order is not None and counters is not None:
                counters["plan.plans_reused"] += 1
            yield from _search(pattern_list, instance, base, None, effort, order)
            return
        if plan is not None:
            live = delta.predicates_with_facts()
            for pivot in range(len(pattern_list)):
                if pattern_list[pivot][0].predicate not in live:
                    if counters is not None:
                        counters["plan.pivots_skipped"] += 1
                        counters["plan.nodes_saved"] += 1
                    continue
                order = plan.pivot_orders[pivot]
                if order is not None and counters is not None:
                    counters["plan.plans_reused"] += 1
                yield from _search(
                    pattern_list, instance, dict(base), {pivot: delta}, effort, order
                )
            return
        for pivot in range(len(pattern_list)):
            yield from _search(pattern_list, instance, dict(base), {pivot: delta}, effort)
    finally:
        # Flush once per search, even when the consumer stops early.
        if telemetry is not None and effort is not None:
            _flush_search_effort(telemetry, effort)


def iter_query_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, Term] | None = None,
    delta: Instance | None = None,
    telemetry: "Telemetry | None" = None,
) -> Iterator[dict[Variable, Term]]:
    """All homomorphisms of ``atoms`` into ``instance`` extending ``partial``.

    With ``delta``, only homomorphisms using at least one fact of ``delta``
    are produced (semi-naive evaluation); the same homomorphism may then be
    yielded more than once, which chase insertion deduplicates for free.
    """
    yield from iter_pattern_homomorphisms(
        compile_query_patterns(atoms), instance, partial, delta, telemetry
    )


def find_query_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, Term] | None = None,
) -> dict[Variable, Term] | None:
    """The first homomorphism found, or ``None``."""
    for hom in iter_query_homomorphisms(atoms, instance, partial):
        return hom
    return None


def evaluate(query: ConjunctiveQuery, instance: Instance) -> set[tuple[Term, ...]]:
    """All answers of a CQ over an instance."""
    answers: set[tuple[Term, ...]] = set()
    for hom in iter_query_homomorphisms(query.atoms, instance):
        answers.add(tuple(hom[var] for var in query.answer_vars))
    return answers


def consistent_binding(
    variables: Sequence[Variable], values: Sequence[Term]
) -> dict[Variable, Term] | None:
    """Zip variables to values, failing on inconsistent repeats.

    Answer tuples may repeat a variable (``q(v, v)``); an answer candidate
    then has to carry equal values at the repeated positions.
    """
    if len(variables) != len(values):
        raise ValueError("answer tuple arity mismatch")
    binding: dict[Variable, Term] = {}
    for variable, value in zip(variables, values):
        bound = binding.get(variable)
        if bound is None:
            binding[variable] = value
        elif bound != value:
            return None
    return binding


def holds(
    query: ConjunctiveQuery,
    instance: Instance,
    answer: Sequence[Term] = (),
) -> bool:
    """Does ``instance |= query(answer)``?  For BCQs pass no answer."""
    partial = consistent_binding(query.answer_vars, answer)
    if partial is None:
        return False
    return find_query_homomorphism(query.atoms, instance, partial) is not None


def iter_structure_homomorphisms(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, Term] | None = None,
) -> Iterator[dict[Term, Term]]:
    """All homomorphisms between structures, extending ``fixed``.

    Every domain element of ``source`` is mappable (constants included);
    elements listed in ``fixed`` are pinned to their images.  The yielded
    mapping covers the full active domain of ``source`` and includes the
    pinned pairs for elements that occur in ``source``.
    """
    fixed = dict(fixed) if fixed else {}
    patterns = [(item, _slots_for_element_atom(item, fixed)) for item in source]
    relevant_fixed = {
        element: image for element, image in fixed.items() if element in source.domain()
    }
    for hom in _search(patterns, target, {}, None):
        hom.update(relevant_fixed)
        yield hom


def find_structure_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, Term] | None = None,
) -> dict[Term, Term] | None:
    """The first structure homomorphism found, or ``None``."""
    for hom in iter_structure_homomorphisms(source, target, fixed):
        return hom
    return None


def apply_structure_homomorphism(source: Instance, hom: Mapping[Term, Term]) -> Instance:
    """The image ``{h(alpha) : alpha in source}`` (Observation 2)."""
    image = Instance()
    for item in source:
        image.add(Atom(item.predicate, tuple(hom.get(t, t) for t in item.args)))
    return image
