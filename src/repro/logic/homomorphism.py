"""Homomorphism search: the engine behind chase steps, CQ evaluation,
containment, cores and the Section-8 folding constructions.

Two flavours are provided over one backtracking core:

* **query homomorphisms** — map the *variables* of a set of atoms into an
  instance so that every atom lands on a fact (constants and ground Skolem
  terms must match themselves), and
* **structure homomorphisms** — map the *domain elements* of a source
  instance into a target instance (``h(alpha) in F`` for every fact, as in
  Section 2), optionally fixing some elements.  Here even constants may be
  remapped unless fixed — the paper's definition has no constant-preservation
  requirement, identities are always imposed explicitly.

The search uses the instance's ``(predicate, position, term)`` indexes and a
dynamic fewest-candidates-first atom ordering.

Hot callers (the chase) precompile their patterns once via
:func:`compile_query_patterns` and search with
:func:`iter_pattern_homomorphisms`; an optional
:class:`~repro.telemetry.Telemetry` records search effort (nodes expanded,
index-bucket estimates vs. facts actually scanned, backtrack clashes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .instance import Instance
from .query import ConjunctiveQuery
from .terms import Term, Variable

if TYPE_CHECKING:
    from ..telemetry import Telemetry

# A pattern slot: ("var", key) must be assigned, ("const", term) must match.
_Slot = tuple[str, object]
_Pattern = tuple[Atom, tuple[_Slot, ...]]


def _slots_for_query_atom(item: Atom) -> tuple[_Slot, ...]:
    slots: list[_Slot] = []
    for term in item.args:
        if isinstance(term, Variable):
            slots.append(("var", term))
        elif term.is_ground():
            slots.append(("const", term))
        else:
            raise ValueError(
                f"query atoms must not contain non-ground function terms: {item!r}"
            )
    return tuple(slots)


def compile_query_patterns(atoms: Sequence[Atom]) -> tuple[_Pattern, ...]:
    """Precompile query atoms into match patterns.

    The slot classification (variable vs. ground) per atom position is
    loop-invariant; the chase compiles each rule body once per run instead
    of once per round per rule.
    """
    return tuple((item, _slots_for_query_atom(item)) for item in atoms)


def _slots_for_element_atom(item: Atom, fixed: Mapping[Term, Term]) -> tuple[_Slot, ...]:
    slots: list[_Slot] = []
    for term in item.args:
        if term in fixed:
            slots.append(("const", fixed[term]))
        else:
            slots.append(("var", term))
    return tuple(slots)


def _candidates(
    pattern: _Pattern, instance: Instance, assignment: dict
) -> tuple[int, Iterable[Atom]]:
    """Return (estimated count, candidate facts) for a pattern atom."""
    item, slots = pattern
    best_key: tuple | None = None
    best_count: int | None = None
    for position, (kind, value) in enumerate(slots):
        if kind == "const":
            bound: Term | None = value  # type: ignore[assignment]
        else:
            bound = assignment.get(value)
        if bound is None:
            continue
        count = instance.candidate_count(item.predicate, position, bound)
        if best_count is None or count < best_count:
            best_count = count
            best_key = (item.predicate, position, bound)
            if count == 0:
                break
    if best_key is not None:
        pred, position, bound = best_key
        return best_count or 0, instance.with_term_at(pred, position, bound)
    facts = instance.with_predicate(item.predicate)
    return len(facts), facts


def _match(pattern: _Pattern, fact: Atom, assignment: dict) -> dict | None:
    """Try to extend ``assignment`` so that the pattern maps onto ``fact``.

    Returns the new bindings added (possibly empty), or ``None`` on clash.
    """
    _, slots = pattern
    added: dict = {}
    for (kind, value), fact_term in zip(slots, fact.args):
        if kind == "const":
            if value != fact_term:
                return None
            continue
        bound = assignment.get(value)
        if bound is None:
            bound = added.get(value)
        if bound is None:
            added[value] = fact_term
        elif bound != fact_term:
            return None
    return added


# Search-effort accumulator slots (flushed to Telemetry counters in bulk;
# list-index bumps are far cheaper than per-node Counter increments).
_NODES, _ESTIMATED, _SCANNED, _CLASHES = range(4)


def _flush_search_effort(telemetry: "Telemetry", effort: list[int]) -> None:
    counters = telemetry.counters
    counters["hom.nodes"] += effort[_NODES]
    counters["hom.candidates_estimated"] += effort[_ESTIMATED]
    counters["hom.candidates_scanned"] += effort[_SCANNED]
    if effort[_CLASHES]:
        counters["hom.backtrack_clashes"] += effort[_CLASHES]


def _search(
    patterns: list[_Pattern],
    instance: Instance,
    assignment: dict,
    restrictions: dict[int, Instance] | None,
    effort: list[int] | None = None,
) -> Iterator[dict]:
    """Backtracking join with dynamic fewest-candidates atom selection.

    ``restrictions`` optionally forces specific pattern indices to match
    within a different (smaller) instance — the semi-naive chase uses this
    to pin one atom to the most recent delta.
    """
    if not patterns:
        yield dict(assignment)
        return
    best_index = 0
    best_count = None
    best_candidates: Iterable[Atom] = ()
    for index, pattern in enumerate(patterns):
        source = restrictions.get(index, instance) if restrictions else instance
        count, candidates = _candidates(pattern, source, assignment)
        if best_count is None or count < best_count:
            best_index, best_count, best_candidates = index, count, candidates
            if count == 0:
                break
    rest = patterns[:best_index] + patterns[best_index + 1 :]
    rest_restrictions = None
    if restrictions:
        rest_restrictions = {}
        for index, restricted in restrictions.items():
            if index == best_index:
                continue
            rest_restrictions[index if index < best_index else index - 1] = restricted
    chosen = patterns[best_index]
    candidates_list = list(best_candidates)
    if effort is not None:
        effort[_NODES] += 1
        effort[_ESTIMATED] += best_count or 0
        effort[_SCANNED] += len(candidates_list)
    for fact in candidates_list:
        added = _match(chosen, fact, assignment)
        if added is None:
            if effort is not None:
                effort[_CLASHES] += 1
            continue
        assignment.update(added)
        yield from _search(rest, instance, assignment, rest_restrictions, effort)
        for key in added:
            del assignment[key]


def iter_pattern_homomorphisms(
    patterns: Sequence[_Pattern],
    instance: Instance,
    partial: Mapping[Variable, Term] | None = None,
    delta: Instance | None = None,
    telemetry: "Telemetry | None" = None,
) -> Iterator[dict[Variable, Term]]:
    """Like :func:`iter_query_homomorphisms` over precompiled patterns."""
    pattern_list = list(patterns)
    base = dict(partial) if partial else {}
    effort = [0, 0, 0, 0] if telemetry is not None else None
    try:
        if delta is None:
            yield from _search(pattern_list, instance, base, None, effort)
            return
        for pivot in range(len(pattern_list)):
            yield from _search(pattern_list, instance, dict(base), {pivot: delta}, effort)
    finally:
        # Flush once per search, even when the consumer stops early.
        if telemetry is not None and effort is not None:
            _flush_search_effort(telemetry, effort)


def iter_query_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, Term] | None = None,
    delta: Instance | None = None,
    telemetry: "Telemetry | None" = None,
) -> Iterator[dict[Variable, Term]]:
    """All homomorphisms of ``atoms`` into ``instance`` extending ``partial``.

    With ``delta``, only homomorphisms using at least one fact of ``delta``
    are produced (semi-naive evaluation); the same homomorphism may then be
    yielded more than once, which chase insertion deduplicates for free.
    """
    yield from iter_pattern_homomorphisms(
        compile_query_patterns(atoms), instance, partial, delta, telemetry
    )


def find_query_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, Term] | None = None,
) -> dict[Variable, Term] | None:
    """The first homomorphism found, or ``None``."""
    for hom in iter_query_homomorphisms(atoms, instance, partial):
        return hom
    return None


def evaluate(query: ConjunctiveQuery, instance: Instance) -> set[tuple[Term, ...]]:
    """All answers of a CQ over an instance."""
    answers: set[tuple[Term, ...]] = set()
    for hom in iter_query_homomorphisms(query.atoms, instance):
        answers.add(tuple(hom[var] for var in query.answer_vars))
    return answers


def consistent_binding(
    variables: Sequence[Variable], values: Sequence[Term]
) -> dict[Variable, Term] | None:
    """Zip variables to values, failing on inconsistent repeats.

    Answer tuples may repeat a variable (``q(v, v)``); an answer candidate
    then has to carry equal values at the repeated positions.
    """
    if len(variables) != len(values):
        raise ValueError("answer tuple arity mismatch")
    binding: dict[Variable, Term] = {}
    for variable, value in zip(variables, values):
        bound = binding.get(variable)
        if bound is None:
            binding[variable] = value
        elif bound != value:
            return None
    return binding


def holds(
    query: ConjunctiveQuery,
    instance: Instance,
    answer: Sequence[Term] = (),
) -> bool:
    """Does ``instance |= query(answer)``?  For BCQs pass no answer."""
    partial = consistent_binding(query.answer_vars, answer)
    if partial is None:
        return False
    return find_query_homomorphism(query.atoms, instance, partial) is not None


def iter_structure_homomorphisms(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, Term] | None = None,
) -> Iterator[dict[Term, Term]]:
    """All homomorphisms between structures, extending ``fixed``.

    Every domain element of ``source`` is mappable (constants included);
    elements listed in ``fixed`` are pinned to their images.  The yielded
    mapping covers the full active domain of ``source`` and includes the
    pinned pairs for elements that occur in ``source``.
    """
    fixed = dict(fixed) if fixed else {}
    patterns = [(item, _slots_for_element_atom(item, fixed)) for item in source]
    relevant_fixed = {
        element: image for element, image in fixed.items() if element in source.domain()
    }
    for hom in _search(patterns, target, {}, None):
        hom.update(relevant_fixed)
        yield hom


def find_structure_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, Term] | None = None,
) -> dict[Term, Term] | None:
    """The first structure homomorphism found, or ``None``."""
    for hom in iter_structure_homomorphisms(source, target, fixed):
        return hom
    return None


def apply_structure_homomorphism(source: Instance, hom: Mapping[Term, Term]) -> Instance:
    """The image ``{h(alpha) : alpha in source}`` (Observation 2)."""
    image = Instance()
    for item in source:
        image.add(Atom(item.predicate, tuple(hom.get(t, t) for t in item.args)))
    return image
