"""Relational signatures (schemas): predicate symbols with fixed arities.

A signature in the paper is a finite set of relation symbols.  We keep it a
lightweight value object; most of the library infers signatures from rules,
queries and instances rather than demanding one up front, but recognizers
such as :func:`repro.classes.recognizers.classify` and the binary-signature
hypothesis of Theorem 3 need the explicit notion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Predicate:
    """A relation symbol with a fixed arity.

    The hash is cached at construction: predicates key the instance
    indexes probed on every fact insertion and candidate lookup.
    """

    name: str
    arity: int
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError(f"negative arity for predicate {self.name}")
        object.__setattr__(self, "_hash", hash((Predicate, self.name, self.arity)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"


class Signature:
    """A finite set of predicates with name-based lookup.

    Adding two predicates with the same name but different arities is
    rejected: the paper (and standard database practice) never overloads
    relation names.
    """

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        self._by_name: dict[str, Predicate] = {}
        for predicate in predicates:
            self.add(predicate)

    def add(self, predicate: Predicate) -> None:
        existing = self._by_name.get(predicate.name)
        if existing is not None and existing != predicate:
            raise ValueError(
                f"predicate {predicate.name} redeclared with arity "
                f"{predicate.arity}, previously {existing.arity}"
            )
        self._by_name[predicate.name] = predicate

    def __contains__(self, predicate: Predicate) -> bool:
        return self._by_name.get(predicate.name) == predicate

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def get(self, name: str) -> Predicate | None:
        """Look a predicate up by name, or ``None`` when absent."""
        return self._by_name.get(name)

    def max_arity(self) -> int:
        """The largest arity in the signature (0 for an empty signature)."""
        return max((p.arity for p in self), default=0)

    def is_binary(self) -> bool:
        """True when every predicate has arity at most 2 (Theorem 3 scope)."""
        return self.max_arity() <= 2

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(p) for p in self))
        return f"Signature({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._by_name == other._by_name
