"""Logic substrate: terms, atoms, instances, TGDs, CQs, homomorphisms.

This subpackage is self-contained first-order machinery; everything above it
(chase, rewriting, the frontier analyses) is built from these pieces.
"""

from .atoms import Atom, atom
from .containment import (
    are_equivalent,
    core_query,
    evaluate_ucq,
    is_contained_in,
    minimize_ucq,
    ucq_holds,
)
from .gaifman import (
    gaifman_graph,
    instance_distance,
    max_degree,
)
from .homomorphism import (
    apply_structure_homomorphism,
    consistent_binding,
    evaluate,
    find_query_homomorphism,
    find_structure_homomorphism,
    holds,
    iter_query_homomorphisms,
    iter_structure_homomorphisms,
)
from .instance import Instance, subsets_of_size_at_most
from .parser import ParseError, parse_instance, parse_query, parse_rule, parse_theory
from .query import ConjunctiveQuery, UnionOfCQs, boolean_query, query
from .signature import Predicate, Signature
from .terms import Constant, FreshVariables, FunctionTerm, Term, Variable
from .tgd import TGD, Theory

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "FreshVariables",
    "FunctionTerm",
    "Instance",
    "ParseError",
    "Predicate",
    "Signature",
    "TGD",
    "Term",
    "Theory",
    "UnionOfCQs",
    "Variable",
    "apply_structure_homomorphism",
    "are_equivalent",
    "atom",
    "boolean_query",
    "consistent_binding",
    "core_query",
    "evaluate",
    "evaluate_ucq",
    "find_query_homomorphism",
    "find_structure_homomorphism",
    "gaifman_graph",
    "holds",
    "instance_distance",
    "is_contained_in",
    "iter_query_homomorphisms",
    "iter_structure_homomorphisms",
    "max_degree",
    "minimize_ucq",
    "parse_instance",
    "parse_query",
    "parse_rule",
    "parse_theory",
    "query",
    "subsets_of_size_at_most",
    "ucq_holds",
]
