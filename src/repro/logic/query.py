"""Conjunctive queries (CQs) and unions of conjunctive queries (UCQs).

A CQ is ``psi(y) = exists x. beta(x, y)`` with ``beta`` a non-empty
conjunction of atoms; its *size* is the number of atoms (Section 2).  The
answer variables ``y`` are ordered, so answers are tuples.

A CQ doubles as a structure (its *canonical instance*): the paper evaluates
containment via homomorphisms between queries-seen-as-structures, and the
proof of Observation 31 builds rewritings out of sub-instances whose domain
elements are variables.  :meth:`ConjunctiveQuery.canonical_instance` returns
exactly that — an :class:`~repro.logic.instance.Instance` whose domain
contains the query's variables as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .atoms import Atom, variables_of_atoms
from .gaifman import atoms_are_connected, connected_components, query_gaifman_graph
from .instance import Instance
from .signature import Predicate
from .terms import FreshVariables, Substitution, Variable, apply_substitution


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with ordered answer variables.

    The answer tuple may repeat a variable (``q(v, v) := P(v)``): rewriting
    sets need such disjuncts whenever a rule head forces two answer
    positions to coincide (e.g. ``P(x) -> F(x, x)`` rewriting
    ``F(v2, v0)``), so Theorem 1's formalism — and ours — allows them.
    """

    answer_vars: tuple[Variable, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a CQ must have a non-empty body")
        all_vars = variables_of_atoms(self.atoms)
        missing = [var for var in self.answer_vars if var not in all_vars]
        if missing:
            raise ValueError(f"answer variables {missing} do not occur in the body")

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|psi|``: the number of atoms."""
        return len(self.atoms)

    def variables(self) -> set[Variable]:
        return variables_of_atoms(self.atoms)

    def existential_vars(self) -> set[Variable]:
        return self.variables() - set(self.answer_vars)

    def is_boolean(self) -> bool:
        return not self.answer_vars

    def is_connected(self) -> bool:
        """Connectivity of the query's Gaifman graph (over variables)."""
        return atoms_are_connected(self.atoms)

    def connected_components(self) -> list["ConjunctiveQuery"]:
        """Split into maximal connected sub-queries.

        Answer variables stay attached to the component they occur in; a
        component's answer tuple preserves the original global order.
        Fully-ground atoms each form their own (boolean) component.
        """
        graph = query_gaifman_graph(self.atoms)
        var_components = connected_components(graph)
        buckets: list[list[Atom]] = [[] for _ in var_components]
        stray: list[Atom] = []
        for item in self.atoms:
            item_vars = item.variable_set()
            if not item_vars:
                stray.append(item)
                continue
            anchor = next(iter(item_vars))
            for index, component in enumerate(var_components):
                if anchor in component:
                    buckets[index].append(item)
                    break
        queries: list[ConjunctiveQuery] = []
        for component, bucket in zip(var_components, buckets):
            answers = tuple(var for var in self.answer_vars if var in component)
            queries.append(ConjunctiveQuery(answers, tuple(bucket)))
        for item in stray:
            queries.append(ConjunctiveQuery((), (item,)))
        return queries

    def predicates(self) -> set[Predicate]:
        return {item.predicate for item in self.atoms}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def substitute(self, theta: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution.

        Answer variables may be renamed or merged (the answer tuple then
        repeats a variable) but not mapped to non-variables.
        """
        new_atoms = tuple(item.substitute(theta) for item in self.atoms)
        new_answers: list[Variable] = []
        for var in self.answer_vars:
            image = apply_substitution(var, theta)
            if not isinstance(image, Variable):
                raise ValueError("substitute() must keep answer variables variables")
            new_answers.append(image)
        return ConjunctiveQuery(tuple(new_answers), new_atoms)

    def rename_apart(self, fresh: FreshVariables) -> "ConjunctiveQuery":
        mapping = {var: fresh.fresh_like(var) for var in self.variables()}
        return self.substitute(mapping)

    def drop_atoms(self, doomed: Iterable[Atom]) -> "ConjunctiveQuery":
        """The query without the given atoms (which must leave it non-empty)."""
        doomed_set = set(doomed)
        kept = tuple(item for item in self.atoms if item not in doomed_set)
        return ConjunctiveQuery(self.answer_vars, kept)

    def canonical_instance(self) -> Instance:
        """The query body seen as a structure over its own variables.

        Built once and cached: containment checks probe the canonical
        instance of the same query against many candidates (UCQ
        minimization, core folding), and rebuilding the index dicts per
        probe dominated those loops.  Callers must not mutate the result
        (the chase copies its base, so chasing it stays safe).
        """
        cached = self.__dict__.get("_canonical")
        if cached is None:
            cached = Instance(self.atoms)
            object.__setattr__(self, "_canonical", cached)
        return cached

    def compiled_patterns(self) -> tuple:
        """The body precompiled for homomorphism search, built once.

        See :func:`repro.logic.homomorphism.compile_query_patterns`; the
        slot classification is immutable alongside the query.
        """
        cached = self.__dict__.get("_patterns")
        if cached is None:
            from .homomorphism import compile_query_patterns

            cached = compile_query_patterns(self.atoms)
            object.__setattr__(self, "_patterns", cached)
        return cached

    def join_plan(self):
        """A static atom order for searches over this body, built once.

        See :func:`repro.logic.homomorphism.plan_join`; containment and
        core folding probe the same body against many instances, so the
        connectivity order is worth precomputing exactly like a chase
        rule's.
        """
        cached = self.__dict__.get("_join_plan")
        if cached is None:
            from .homomorphism import plan_join

            cached = plan_join(self.compiled_patterns())
            object.__setattr__(self, "_join_plan", cached)
        return cached

    def anchored_join_plan(self):
        """A join order that knows the answer variables come pre-bound.

        Containment and core folding search this body with the answer
        variables already pinned by a partial assignment; the plain
        :meth:`join_plan` order ignores that and may start from an atom
        the pinning does not constrain.  This variant seeds the
        connectivity order with the answer variables (see
        :func:`repro.logic.homomorphism.connectivity_order`), built once.
        For boolean queries it is the plain plan.
        """
        if not self.answer_vars:
            return self.join_plan()
        cached = self.__dict__.get("_anchored_plan")
        if cached is None:
            from .homomorphism import JoinPlan, connectivity_order

            order, connected = connectivity_order(
                self.compiled_patterns(), bound=self.answer_vars
            )
            cached = JoinPlan(
                base_order=order if connected else None, pivot_orders=()
            )
            object.__setattr__(self, "_anchored_plan", cached)
        return cached

    def __repr__(self) -> str:
        body = ", ".join(repr(item) for item in self.atoms)
        existential = sorted(var.name for var in self.existential_vars())
        prefix = f"exists {','.join(existential)}. " if existential else ""
        head = ",".join(var.name for var in self.answer_vars)
        return f"q({head}) := {prefix}{body}"


class UnionOfCQs:
    """A finite disjunction of CQs with the same answer arity."""

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery], name: str = "") -> None:
        self._disjuncts: tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        self.name = name
        arities = {len(q.answer_vars) for q in self._disjuncts}
        if len(arities) > 1:
            raise ValueError("all disjuncts of a UCQ must share the answer arity")

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def disjuncts(self) -> tuple[ConjunctiveQuery, ...]:
        return self._disjuncts

    def max_disjunct_size(self) -> int:
        """``rs``-style measure: the largest disjunct size (Section 7)."""
        return max((q.size for q in self._disjuncts), default=0)

    def __repr__(self) -> str:
        title = self.name or "UCQ"
        lines = "\n  | ".join(repr(q) for q in self._disjuncts)
        return f"{title}:\n    {lines}"


def query(answer_vars: Sequence[Variable], atoms: Sequence[Atom]) -> ConjunctiveQuery:
    """Convenience constructor mirroring :func:`repro.logic.atoms.atom`."""
    return ConjunctiveQuery(tuple(answer_vars), tuple(atoms))


def boolean_query(atoms: Sequence[Atom]) -> ConjunctiveQuery:
    """A BCQ: every variable existentially quantified."""
    return ConjunctiveQuery((), tuple(atoms))
