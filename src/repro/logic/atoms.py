"""Atomic formulas over a relational signature.

An :class:`Atom` is a predicate applied to a tuple of terms.  Atoms double as
*facts* when all their arguments are ground (constants or ground Skolem
terms); the paper's "fact sets"/"structures" are sets of such atoms and are
modelled by :class:`repro.logic.instance.Instance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .signature import Predicate
from .terms import Substitution, Term, TermLike, Variable, apply_substitution, as_term


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``P(t1, ..., tn)``.

    The hash is computed once at construction (atoms spend their lives in
    instance sets and index buckets) and ``variable_set`` is cached on
    first use — both were top profile entries on the larger chase and
    rewriting workloads.
    """

    predicate: Predicate
    args: tuple[Term, ...]
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _variable_set: "frozenset[Variable] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.args) != self.predicate.arity:
            raise ValueError(
                f"predicate {self.predicate!r} applied to {len(self.args)} "
                f"arguments"
            )
        object.__setattr__(self, "_hash", hash((self.predicate, self.args)))

    def __hash__(self) -> int:
        return self._hash

    def is_ground(self) -> bool:
        """True when no variable occurs in the atom (i.e. it is a fact)."""
        return all(arg.is_ground() for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield each variable occurrence (with repetition)."""
        for arg in self.args:
            yield from arg.variables()

    def variable_set(self) -> frozenset[Variable]:
        cached = self._variable_set
        if cached is None:
            cached = frozenset(self.variables())
            object.__setattr__(self, "_variable_set", cached)
        return cached

    def terms(self) -> Iterator[Term]:
        """Yield the (top-level) argument terms."""
        return iter(self.args)

    def substitute(self, theta: Substitution) -> "Atom":
        """Apply a substitution to every argument."""
        new_args = tuple(apply_substitution(arg, theta) for arg in self.args)
        if new_args == self.args:
            return self
        return Atom(self.predicate, new_args)

    def __repr__(self) -> str:
        inner = ",".join(repr(arg) for arg in self.args)
        return f"{self.predicate.name}({inner})"


def atom(name: str, *args: TermLike) -> Atom:
    """Convenience constructor: ``atom("E", x, "a")``.

    Strings become constants, terms pass through; the predicate's arity is
    inferred from the number of arguments.
    """
    terms = tuple(as_term(arg) for arg in args)
    return Atom(Predicate(name, len(terms)), terms)


def variables_of_atoms(atoms: "Iterator[Atom] | tuple[Atom, ...] | list[Atom]") -> set[Variable]:
    """All variables occurring in a collection of atoms."""
    found: set[Variable] = set()
    for item in atoms:
        found |= item.variable_set()
    return found
