"""A small text syntax for rules, queries, theories and instances.

The syntax follows the paper's notation as closely as ASCII allows::

    # a TGD (multi-head allowed, 'true' or nothing for an empty body)
    E(x,y) -> exists z. E(y,z)
    R(x,x'), G(x,u), G(u,u') -> exists z. R(u',z), G(x',z)
    true -> exists x. R(x,x), G(x,x)

    # a CQ with explicit answer tuple, or a prefix-quantified body
    q(x) := exists y. Mother(x,y)
    exists y. Mother(x,y)          # free variables become answers

    # facts (identifiers denote constants here)
    Human(abel). Mother(abel, eve)

Conventions:

* In **rules and queries** bare identifiers are variables; quote with single
  or double quotes to write a constant (``Siblings('abel', x)``).
* In **instances/facts** bare identifiers are constants.
* Primes are allowed in identifiers (``x'``, ``u''``) to match the paper.
* ``#`` starts a comment until the end of the line.
"""

from __future__ import annotations

import re
from typing import Sequence

from .atoms import Atom
from .instance import Instance
from .query import ConjunctiveQuery
from .signature import Predicate
from .terms import Constant, Term, Variable
from .tgd import TGD, Theory


class ParseError(ValueError):
    """Raised on malformed input, with a position hint."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<arrow>->)
  | (?P<walrus>:=|:-)
  | (?P<quoted>'[^']*'|"[^\"]*")
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*'*)
  | (?P<number>-?\d+)
  | (?P<punct>[(),.])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            snippet = text[position : position + 12]
            raise ParseError(f"unexpected character at {position}: {snippet!r}")
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[str]) -> None:
        self._tokens = list(tokens)
        self._index = 0

    def peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def expect(self, wanted: str) -> None:
        token = self.next()
        if token != wanted:
            raise ParseError(f"expected {wanted!r}, found {token!r}")

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)


def _term_from_token(token: str, constants_are_default: bool) -> Term:
    if token.startswith(("'", '"')):
        return Constant(token[1:-1])
    if token.lstrip("-").isdigit():
        return Constant(token)
    if constants_are_default:
        return Constant(token)
    return Variable(token)


def _parse_atom(stream: _TokenStream, constants_are_default: bool) -> Atom:
    name = stream.next()
    if not re.fullmatch(r"[A-Za-z][A-Za-z0-9_]*'*", name):
        raise ParseError(f"bad predicate name {name!r}")
    stream.expect("(")
    args: list[Term] = []
    if stream.peek() == ")":
        stream.next()
    else:
        while True:
            args.append(_term_from_token(stream.next(), constants_are_default))
            token = stream.next()
            if token == ")":
                break
            if token != ",":
                raise ParseError(f"expected ',' or ')' in atom, found {token!r}")
    return Atom(Predicate(name, len(args)), tuple(args))


def _parse_atom_list(stream: _TokenStream, constants_are_default: bool) -> list[Atom]:
    atoms = [_parse_atom(stream, constants_are_default)]
    while stream.peek() == ",":
        stream.next()
        atoms.append(_parse_atom(stream, constants_are_default))
    return atoms


def _parse_variable_list(stream: _TokenStream) -> list[Variable]:
    names = [stream.next()]
    while stream.peek() == ",":
        stream.next()
        names.append(stream.next())
    return [Variable(name) for name in names]


def parse_rule(text: str, label: str = "") -> TGD:
    """Parse a single TGD, e.g. ``"E(x,y) -> exists z. E(y,z)"``."""
    stream = _TokenStream(_tokenize(text))
    body: list[Atom] = []
    if stream.peek() == "true":
        stream.next()
    elif stream.peek() != "->":
        body = _parse_atom_list(stream, constants_are_default=False)
    stream.expect("->")
    existential: list[Variable] = []
    if stream.peek() == "exists":
        stream.next()
        existential = _parse_variable_list(stream)
        stream.expect(".")
    head = _parse_atom_list(stream, constants_are_default=False)
    if not stream.at_end():
        raise ParseError(f"trailing input after rule: {stream.peek()!r}")
    return TGD(tuple(body), tuple(head), frozenset(existential), label)


def parse_theory(text: str, name: str = "") -> Theory:
    """Parse newline/semicolon-separated rules into a :class:`Theory`."""
    rules: list[TGD] = []
    for index, line in enumerate(re.split(r"[;\n]", text)):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        rules.append(parse_rule(stripped, label=f"r{len(rules)}"))
    return Theory(rules, name=name)


def parse_query(
    text: str, answer_vars: Sequence[str] | None = None
) -> ConjunctiveQuery:
    """Parse a CQ.

    Accepted forms::

        q(x, y) := R(x, z), G(z, y)       # explicit answer tuple
        exists z. R(x, z), G(z, y)        # free variables become answers
        R(x, y)                            # everything free

    When ``answer_vars`` is given it overrides the inferred answer tuple
    (useful to force a boolean query: ``answer_vars=[]``).
    """
    stream = _TokenStream(_tokenize(text))
    declared: list[Variable] | None = None
    if ":=" in text or ":-" in text:
        head_name = stream.next()
        stream.expect("(")
        declared = []
        if stream.peek() == ")":
            stream.next()
        else:
            while True:
                declared.append(Variable(stream.next()))
                token = stream.next()
                if token == ")":
                    break
                if token != ",":
                    raise ParseError(f"expected ',' or ')' in query head, found {token!r}")
        walrus = stream.next()
        if walrus not in (":=", ":-"):
            raise ParseError(f"expected ':=' after query head, found {walrus!r}")
        del head_name
    quantified: set[Variable] = set()
    if stream.peek() == "exists":
        stream.next()
        quantified = set(_parse_variable_list(stream))
        stream.expect(".")
    atoms = _parse_atom_list(stream, constants_are_default=False)
    if not stream.at_end():
        raise ParseError(f"trailing input after query: {stream.peek()!r}")

    if answer_vars is not None:
        answers = tuple(Variable(name) for name in answer_vars)
    elif declared is not None:
        answers = tuple(declared)
    else:
        ordered: list[Variable] = []
        seen: set[Variable] = set()
        for item in atoms:
            for variable in item.variables():
                if variable not in quantified and variable not in seen:
                    seen.add(variable)
                    ordered.append(variable)
        answers = tuple(ordered)
    return ConjunctiveQuery(answers, tuple(atoms))


def parse_instance(text: str) -> Instance:
    """Parse facts (identifiers are constants), separated by '.' or newlines."""
    instance = Instance()
    for chunk in re.split(r"[.\n]", text):
        stripped = chunk.split("#", 1)[0].strip()
        if not stripped:
            continue
        stream = _TokenStream(_tokenize(stripped))
        for item in _parse_atom_list(stream, constants_are_default=True):
            instance.add(item)
        if not stream.at_end():
            raise ParseError(f"trailing input after fact: {stream.peek()!r}")
    return instance
