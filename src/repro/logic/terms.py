"""First-order terms: variables, constants and (Skolem) function terms.

Terms are immutable and hashable so they can be used as dictionary keys, set
members and members of the active domain of an :class:`~repro.logic.instance.
Instance`.  The chase engine (see :mod:`repro.chase.engine`) creates
:class:`FunctionTerm` values with the Skolem naming convention of the paper
(Definition 4); because equality of function terms is structural, chases of
sub-instances are *literal* subsets of chases of larger instances
(Observation 8), which the locality machinery depends on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Union


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    def is_ground(self) -> bool:
        """Return ``True`` when no :class:`Variable` occurs in the term."""
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        """Yield every variable occurring in the term (with repetition)."""
        raise NotImplementedError

    def depth(self) -> int:
        """Function-symbol nesting depth: 0 for variables and constants."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A first-order variable, identified by its name.

    The hash is computed once at construction: terms live in sets and
    index-dict keys throughout the chase, where re-hashing on every probe
    dominated profiles of the larger workloads.
    """

    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((Variable, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def depth(self) -> int:
        return 0

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A constant (a named element of the active domain)."""

    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((Constant, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator[Variable]:
        return iter(())

    def depth(self) -> int:
        return 0

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FunctionTerm(Term):
    """A function term ``f(t1, ..., tn)``.

    The chase uses these for Skolem terms: ``functor`` encodes the Skolem
    functor ``f_i^tau`` of Definition 4 and ``args`` holds the images of the
    frontier variables.  Two function terms are equal iff their functors and
    argument tuples are equal, which realizes the "literal" Skolem naming the
    paper relies on.
    """

    functor: str
    args: tuple[Term, ...]
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Child hashes are already cached, so this is O(arity), not a
        # re-walk of the whole Skolem tree — deep chase terms made the
        # recursive dataclass hash the hottest frame on cyclic workloads.
        object.__setattr__(self, "_hash", hash((FunctionTerm, self.functor, self.args)))

    def __hash__(self) -> int:
        return self._hash

    def is_ground(self) -> bool:
        return all(arg.is_ground() for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def depth(self) -> int:
        if not self.args:
            return 1
        return 1 + max(arg.depth() for arg in self.args)

    def __repr__(self) -> str:
        if not self.args:
            return f"{self.functor}()"
        inner = ",".join(repr(arg) for arg in self.args)
        return f"{self.functor}({inner})"


Substitution = Mapping[Variable, Term]
MutableSubstitution = dict[Variable, Term]


def apply_substitution(term: Term, theta: Substitution) -> Term:
    """Apply ``theta`` to ``term``, rebuilding function terms as needed."""
    if isinstance(term, Variable):
        return theta.get(term, term)
    if isinstance(term, FunctionTerm):
        new_args = tuple(apply_substitution(arg, theta) for arg in term.args)
        if new_args == term.args:
            return term
        return FunctionTerm(term.functor, new_args)
    return term


def compose(first: Substitution, second: Substitution) -> MutableSubstitution:
    """Return the substitution equivalent to applying ``first`` then ``second``.

    For every variable ``v``: ``compose(f, s)[v] == s(f(v))``.  Variables
    bound only by ``second`` are included as well.
    """
    result: MutableSubstitution = {
        var: apply_substitution(image, second) for var, image in first.items()
    }
    for var, image in second.items():
        result.setdefault(var, image)
    return result


class FreshVariables:
    """A supply of fresh variables, used to rename rules and queries apart.

    The produced names start with an underscore so they can never collide
    with variables produced by :mod:`repro.logic.parser` (which rejects
    leading underscores in user input).
    """

    def __init__(self, prefix: str = "_v") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> Variable:
        """Return a variable never produced by this supply before."""
        return Variable(f"{self._prefix}{next(self._counter)}")

    def fresh_like(self, var: Variable) -> Variable:
        """Return a fresh variable whose name hints at ``var``'s name."""
        return Variable(f"{self._prefix}{next(self._counter)}_{var.name}")


def variables_of(terms: Iterable[Term]) -> set[Variable]:
    """The set of variables occurring in any of ``terms``."""
    found: set[Variable] = set()
    for term in terms:
        found.update(term.variables())
    return found


TermLike = Union[Term, str]


def as_term(value: TermLike) -> Term:
    """Coerce a convenience value to a term.

    Strings become constants; terms pass through.  This keeps example and
    test code readable (``fact("E", "a", "b")``) without weakening the typed
    core API.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Constant(value)
    raise TypeError(f"cannot interpret {value!r} as a term")
