"""Textual serialization of theories, instances and queries.

The format is exactly the :mod:`repro.logic.parser` syntax, so dump/parse
round-trips are the identity (tested).  Chase-produced instances contain
Skolem function terms, which the fact syntax cannot express — dumping them
raises rather than silently flattening structure.
"""

from __future__ import annotations

from pathlib import Path

from .instance import Instance
from .query import ConjunctiveQuery
from .terms import Constant, FunctionTerm, Term, Variable
from .tgd import Theory


class SerializationError(ValueError):
    """The object contains structure the text syntax cannot express."""


def dump_theory(theory: Theory) -> str:
    """Render a theory in the parser's rule syntax, one rule per line."""
    lines = []
    if theory.name:
        lines.append(f"# theory: {theory.name}")
    lines.extend(repr(rule) for rule in theory)
    return "\n".join(lines) + "\n"


def dump_instance(instance: Instance) -> str:
    """Render a base instance in the fact syntax, one fact per line."""
    lines = []
    for item in sorted(instance, key=repr):
        for term in item.args:
            if isinstance(term, FunctionTerm):
                raise SerializationError(
                    f"fact {item!r} contains a Skolem term; only base "
                    "instances are serializable"
                )
        lines.append(f"{item!r}")
    return "\n".join(lines) + "\n"


def _dump_query_term(term: Term, query: ConjunctiveQuery) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        # Query syntax reads bare identifiers as variables, so constants
        # must be quoted (``repr(query)`` prints them bare — fine for
        # humans, lossy for a parser round-trip).
        return f"'{term.name}'"
    raise SerializationError(
        f"query {query!r} contains the function term {term!r}; only "
        "constant/variable arguments are expressible in query syntax"
    )


def dump_query(query: ConjunctiveQuery) -> str:
    """Render a CQ in the ``q(...) := ...`` syntax, parse-exactly.

    Unlike ``repr(query)``, constants come out quoted, so
    ``parse_query(dump_query(q))`` is ``q`` itself (tested).  The text
    doubles as a canonical cache key: ``OMQASession`` keys compiled SQL
    by the dumped canonical shape.  Function terms raise
    :class:`SerializationError` — the syntax cannot express them.
    """
    head = ",".join(var.name for var in query.answer_vars)
    existential = sorted(var.name for var in query.existential_vars())
    prefix = f"exists {','.join(existential)}. " if existential else ""
    body = ", ".join(
        f"{item.predicate.name}"
        f"({','.join(_dump_query_term(term, query) for term in item.args)})"
        for item in query.atoms
    )
    return f"q({head}) := {prefix}{body}\n"


def save_theory(theory: Theory, path: str | Path) -> None:
    Path(path).write_text(dump_theory(theory), encoding="utf8")


def save_instance(instance: Instance, path: str | Path) -> None:
    Path(path).write_text(dump_instance(instance), encoding="utf8")


def save_query(query: ConjunctiveQuery, path: str | Path) -> None:
    Path(path).write_text(dump_query(query), encoding="utf8")


def load_theory(path: str | Path, name: str = "") -> Theory:
    from .parser import parse_theory

    return parse_theory(Path(path).read_text(encoding="utf8"), name=name)


def load_instance(path: str | Path) -> Instance:
    from .parser import parse_instance

    return parse_instance(Path(path).read_text(encoding="utf8"))


def load_query(path: str | Path) -> ConjunctiveQuery:
    from .parser import parse_query

    return parse_query(Path(path).read_text(encoding="utf8"))
