"""Textual and JSON serialization of theories, instances and queries.

The textual format is exactly the :mod:`repro.logic.parser` syntax, so
dump/parse round-trips are the identity (tested).  Chase-produced
instances contain Skolem function terms, which the fact syntax cannot
express — dumping them raises rather than silently flattening structure.

The JSON wire format (``*_to_json``/``*_from_json``) wraps the same text
in tagged envelopes — ``{"format": "repro/theory@1", ...}`` — and is the
contract of the :mod:`repro.service` HTTP API.  Reusing the parser
syntax inside JSON keeps one grammar authoritative: decode(encode(x))
is canonical-key-identical (property-tested), and malformed documents
raise :class:`SerializationError`, which the service maps to HTTP 400.
"""

from __future__ import annotations

from pathlib import Path

from .instance import Instance
from .query import ConjunctiveQuery
from .terms import Constant, FunctionTerm, Term, Variable
from .tgd import Theory


class SerializationError(ValueError):
    """The object contains structure the text syntax cannot express."""


def dump_theory(theory: Theory) -> str:
    """Render a theory in the parser's rule syntax, one rule per line."""
    lines = []
    if theory.name:
        lines.append(f"# theory: {theory.name}")
    lines.extend(repr(rule) for rule in theory)
    return "\n".join(lines) + "\n"


def dump_instance(instance: Instance) -> str:
    """Render a base instance in the fact syntax, one fact per line."""
    lines = []
    for item in sorted(instance, key=repr):
        for term in item.args:
            if isinstance(term, FunctionTerm):
                raise SerializationError(
                    f"fact {item!r} contains a Skolem term; only base "
                    "instances are serializable"
                )
        lines.append(f"{item!r}")
    return "\n".join(lines) + "\n"


def _dump_query_term(term: Term, query: ConjunctiveQuery) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        # Query syntax reads bare identifiers as variables, so constants
        # must be quoted (``repr(query)`` prints them bare — fine for
        # humans, lossy for a parser round-trip).
        return f"'{term.name}'"
    raise SerializationError(
        f"query {query!r} contains the function term {term!r}; only "
        "constant/variable arguments are expressible in query syntax"
    )


def dump_query(query: ConjunctiveQuery) -> str:
    """Render a CQ in the ``q(...) := ...`` syntax, parse-exactly.

    Unlike ``repr(query)``, constants come out quoted, so
    ``parse_query(dump_query(q))`` is ``q`` itself (tested).  The text
    doubles as a canonical cache key: ``OMQASession`` keys compiled SQL
    by the dumped canonical shape.  Function terms raise
    :class:`SerializationError` — the syntax cannot express them.
    """
    head = ",".join(var.name for var in query.answer_vars)
    existential = sorted(var.name for var in query.existential_vars())
    prefix = f"exists {','.join(existential)}. " if existential else ""
    body = ", ".join(
        f"{item.predicate.name}"
        f"({','.join(_dump_query_term(term, query) for term in item.args)})"
        for item in query.atoms
    )
    return f"q({head}) := {prefix}{body}\n"


def save_theory(theory: Theory, path: str | Path) -> None:
    Path(path).write_text(dump_theory(theory), encoding="utf8")


def save_instance(instance: Instance, path: str | Path) -> None:
    Path(path).write_text(dump_instance(instance), encoding="utf8")


def save_query(query: ConjunctiveQuery, path: str | Path) -> None:
    Path(path).write_text(dump_query(query), encoding="utf8")


def load_theory(path: str | Path, name: str = "") -> Theory:
    from .parser import parse_theory

    return parse_theory(Path(path).read_text(encoding="utf8"), name=name)


def load_instance(path: str | Path) -> Instance:
    from .parser import parse_instance

    return parse_instance(Path(path).read_text(encoding="utf8"))


def load_query(path: str | Path) -> ConjunctiveQuery:
    from .parser import parse_query

    return parse_query(Path(path).read_text(encoding="utf8"))


# ----------------------------------------------------------------------
# JSON wire format (the service API contract)
# ----------------------------------------------------------------------
THEORY_FORMAT = "repro/theory@1"
INSTANCE_FORMAT = "repro/instance@1"
QUERY_FORMAT = "repro/query@1"


def _expect_envelope(doc: object, tag: str, payload_key: str) -> dict:
    if not isinstance(doc, dict):
        raise SerializationError(f"expected a JSON object, got {type(doc).__name__}")
    if doc.get("format") != tag:
        raise SerializationError(
            f"expected format {tag!r}, got {doc.get('format')!r}"
        )
    if payload_key not in doc:
        raise SerializationError(f"missing {payload_key!r} field")
    return doc


def theory_to_json(theory: Theory) -> dict:
    """The theory as a JSON-able envelope: one parser-syntax rule per entry."""
    return {
        "format": THEORY_FORMAT,
        "name": theory.name,
        "rules": [repr(rule) for rule in theory],
    }


def theory_from_json(doc: object) -> Theory:
    """Decode :func:`theory_to_json` output (raises on malformed docs)."""
    from .parser import ParseError, parse_theory

    doc = _expect_envelope(doc, THEORY_FORMAT, "rules")
    rules = doc["rules"]
    if not isinstance(rules, list) or not all(
        isinstance(rule, str) for rule in rules
    ):
        raise SerializationError("'rules' must be a list of strings")
    name = doc.get("name", "")
    if not isinstance(name, str):
        raise SerializationError("'name' must be a string")
    try:
        return parse_theory("\n".join(rules), name=name)
    except ParseError as exc:
        raise SerializationError(f"unparseable rule: {exc}") from exc


def instance_to_json(instance: Instance) -> dict:
    """The base instance as a JSON-able envelope, facts sorted.

    Like :func:`dump_instance`, Skolem terms raise — only base instances
    travel over the wire.
    """
    return {
        "format": INSTANCE_FORMAT,
        "facts": [
            line for line in dump_instance(instance).splitlines() if line
        ],
    }


def instance_from_json(doc: object) -> Instance:
    """Decode :func:`instance_to_json` output (raises on malformed docs)."""
    from .parser import ParseError, parse_instance

    doc = _expect_envelope(doc, INSTANCE_FORMAT, "facts")
    facts = doc["facts"]
    if not isinstance(facts, list) or not all(
        isinstance(fact, str) for fact in facts
    ):
        raise SerializationError("'facts' must be a list of strings")
    try:
        return parse_instance(". ".join(facts))
    except ParseError as exc:
        raise SerializationError(f"unparseable fact: {exc}") from exc


def query_to_json(query: ConjunctiveQuery) -> dict:
    """The CQ as a JSON-able envelope carrying its :func:`dump_query` text."""
    return {"format": QUERY_FORMAT, "query": dump_query(query).strip()}


def query_from_json(doc: object) -> ConjunctiveQuery:
    """Decode :func:`query_to_json` output (raises on malformed docs)."""
    from .parser import ParseError, parse_query

    doc = _expect_envelope(doc, QUERY_FORMAT, "query")
    text = doc["query"]
    if not isinstance(text, str):
        raise SerializationError("'query' must be a string")
    try:
        return parse_query(text)
    except ParseError as exc:
        raise SerializationError(f"unparseable query: {exc}") from exc
