"""Gaifman graphs of instances and of conjunctive queries.

The vertices of the Gaifman graph of an instance are its domain elements;
two elements are adjacent iff they co-occur in a fact (Section 2 of the
paper).  For a CQ the vertices are its *variables* (constants are not
vertices, matching the paper's definition of connected queries).

These graphs drive:

* the distance measurements behind *distancing* theories (Definition 43),
* the degree bound of *bd-locality* (Definition 40), and
* connectivity tests for rules, queries and theories.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

from .atoms import Atom
from .instance import Instance
from .terms import Term, Variable

Adjacency = dict[Hashable, set[Hashable]]


def _adjacency_from_groups(groups: Iterable[Iterable[Hashable]]) -> Adjacency:
    graph: Adjacency = {}
    for group in groups:
        members = list(dict.fromkeys(group))
        for member in members:
            graph.setdefault(member, set())
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                graph[first].add(second)
                graph[second].add(first)
    return graph


def gaifman_graph(instance: Instance) -> Adjacency:
    """Adjacency of the Gaifman graph of an instance."""
    return _adjacency_from_groups(tuple(fact.args) for fact in instance)


def query_gaifman_graph(atoms: Iterable[Atom]) -> Adjacency:
    """Adjacency over the *variables* of a set of query atoms."""
    return _adjacency_from_groups(
        tuple(term for term in item.args if isinstance(term, Variable)) for item in atoms
    )


def distance(graph: Adjacency, source: Hashable, target: Hashable) -> float:
    """Shortest-path distance; ``inf`` when disconnected or vertices absent."""
    if source not in graph or target not in graph:
        return float("inf")
    if source == target:
        return 0
    seen = {source}
    frontier = deque([(source, 0)])
    while frontier:
        vertex, dist = frontier.popleft()
        for neighbor in graph[vertex]:
            if neighbor == target:
                return dist + 1
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, dist + 1))
    return float("inf")


def instance_distance(instance: Instance, source: Term, target: Term) -> float:
    """``dist_F(c, c')`` of the paper: Gaifman distance in ``instance``."""
    return distance(gaifman_graph(instance), source, target)


def degree(graph: Adjacency, vertex: Hashable) -> int:
    """Vertex degree (number of distinct neighbours)."""
    return len(graph.get(vertex, ()))


def max_degree(instance: Instance) -> int:
    """The degree of an instance: max Gaifman degree over its domain."""
    graph = gaifman_graph(instance)
    return max((len(neighbors) for neighbors in graph.values()), default=0)


def connected_components(graph: Adjacency) -> list[set[Hashable]]:
    """The connected components of an adjacency structure."""
    remaining = set(graph)
    components: list[set[Hashable]] = []
    while remaining:
        start = remaining.pop()
        component = {start}
        frontier = deque([start])
        while frontier:
            vertex = frontier.popleft()
            for neighbor in graph[vertex]:
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        remaining -= component
        components.append(component)
    return components


def is_connected(graph: Adjacency) -> bool:
    """True for graphs with at most one connected component.

    The empty graph counts as connected (an empty rule body is connected by
    convention, cf. the (loop) and per-element rules of the theory T_d).
    """
    return len(connected_components(graph)) <= 1


def atoms_are_connected(atoms: Iterable[Atom]) -> bool:
    """Connectivity of a set of query atoms over their shared variables.

    Atoms without variables (fully ground) attach to nothing; a set
    containing such an atom alongside others is considered disconnected,
    except that a singleton set is always connected.
    """
    atom_list = list(atoms)
    if len(atom_list) <= 1:
        return True
    graph = query_gaifman_graph(atom_list)
    if not is_connected(graph):
        return False
    variable_sets = [item.variable_set() for item in atom_list]
    anchored = [bool(vs) for vs in variable_sets]
    return all(anchored)


def iter_balls(graph: Adjacency, center: Hashable, radius: int) -> Iterator[Hashable]:
    """Yield every vertex within ``radius`` of ``center`` (including it)."""
    if center not in graph:
        return
    seen = {center}
    frontier = deque([(center, 0)])
    yield center
    while frontier:
        vertex, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph[vertex]:
            if neighbor not in seen:
                seen.add(neighbor)
                yield neighbor
                frontier.append((neighbor, dist + 1))
