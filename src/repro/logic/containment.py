"""CQ containment, equivalence, cores and UCQ minimization.

The paper (Section 2) says: ``phi(y)`` *contains* ``psi(y)`` iff every
structure satisfying ``phi`` satisfies ``psi`` with the same answers —
equivalently, iff there is a homomorphism from ``psi`` to ``phi`` (seen as
structures) that is the identity on the answer variables.  We follow that
orientation: :func:`is_contained_in(phi, psi)` asks whether ``psi`` is the
more general query.

Rewriting sets (Theorem 1) must be *minimal*: no disjunct contained in
another.  :func:`minimize_ucq` enforces exactly that.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .homomorphism import iter_pattern_homomorphisms
from .instance import Instance
from .query import ConjunctiveQuery, UnionOfCQs
from .terms import Term, Variable


def is_contained_in(phi: ConjunctiveQuery, psi: ConjunctiveQuery) -> bool:
    """``phi`` contains ``psi`` in the paper's sense: phi's answers are
    always psi's answers.

    Checked via Chandra–Merlin: evaluate ``psi`` over the canonical instance
    of ``phi`` asking for ``phi``'s own answer variables as the answer.
    """
    if len(phi.answer_vars) != len(psi.answer_vars):
        raise ValueError("containment needs queries of the same answer arity")
    canonical = phi.canonical_instance()
    from .homomorphism import consistent_binding

    partial = consistent_binding(psi.answer_vars, phi.answer_vars)
    if partial is None:
        # psi repeats an answer variable where phi has two distinct ones:
        # psi's answers always satisfy the equality, phi's need not — so a
        # homomorphism witnessing containment cannot exist.
        return False
    for _ in iter_pattern_homomorphisms(
        psi.compiled_patterns(), canonical, partial, plan=psi.anchored_join_plan()
    ):
        return True
    return False


def are_equivalent(phi: ConjunctiveQuery, psi: ConjunctiveQuery) -> bool:
    """Mutual containment."""
    return is_contained_in(phi, psi) and is_contained_in(psi, phi)


def core_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """An equivalent minimal (core) CQ.

    Repeatedly looks for a proper endomorphism of the canonical instance
    fixing the answer variables and restricts the query to its image.
    """
    current = query
    while True:
        smaller = _one_folding_step(current)
        if smaller is None:
            return current
        current = smaller


def _one_folding_step(query: ConjunctiveQuery) -> ConjunctiveQuery | None:
    canonical = query.canonical_instance()
    patterns = query.compiled_patterns()
    plan = query.anchored_join_plan()
    variables = sorted(query.variables(), key=lambda v: v.name)
    partial: dict[Variable, Term] = {var: var for var in query.answer_vars}
    for dropped in variables:
        if dropped in query.answer_vars:
            continue
        # Try to fold the query so that `dropped` disappears from the image.
        for hom in iter_pattern_homomorphisms(patterns, canonical, partial, plan=plan):
            if hom[dropped] == dropped:
                continue
            if any(image == dropped for image in hom.values()):
                continue
            folded_atoms = tuple(
                dict.fromkeys(item.substitute(hom) for item in query.atoms)
            )
            if len(folded_atoms) <= len(query.atoms):
                return ConjunctiveQuery(query.answer_vars, folded_atoms)
    return None


def minimize_ucq(disjuncts: Iterable[ConjunctiveQuery], name: str = "") -> UnionOfCQs:
    """Keep only the most general disjuncts (Theorem 1's minimality).

    A disjunct ``phi`` is dropped when some other kept disjunct ``psi``
    contains it (``phi``'s answers are always ``psi``'s answers, so ``phi``
    is redundant in the union).  Each survivor is also replaced by its core.
    """
    cores = [core_query(q) for q in disjuncts]
    kept: list[ConjunctiveQuery] = []
    for candidate in sorted(cores, key=lambda q: q.size):
        redundant = any(is_contained_in(candidate, existing) for existing in kept)
        if not redundant:
            kept.append(candidate)
    return UnionOfCQs(kept, name=name)


def contains_equivalent(
    queries: Sequence[ConjunctiveQuery], candidate: ConjunctiveQuery
) -> bool:
    """Is some query in ``queries`` equivalent to ``candidate``?"""
    return any(are_equivalent(candidate, existing) for existing in queries)


def evaluate_ucq(ucq: UnionOfCQs, instance: Instance) -> set[tuple[Term, ...]]:
    """All answers of a UCQ: the union of its disjuncts' answers."""
    from .homomorphism import evaluate

    answers: set[tuple[Term, ...]] = set()
    for disjunct in ucq:
        answers |= evaluate(disjunct, instance)
    return answers


def ucq_holds(ucq: UnionOfCQs, instance: Instance, answer: Sequence[Term] = ()) -> bool:
    """Does some disjunct hold with the given answer tuple?"""
    from .homomorphism import holds

    return any(holds(disjunct, instance, answer) for disjunct in ucq)
