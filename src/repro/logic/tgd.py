"""Tuple-generating dependencies (TGDs, a.k.a. rules) and theories.

A TGD is a formula ``forall x,y (body(x,y) -> exists w head(y,w))``.  The
paper's Section 2 works with single-head rules, but the theory ``T_d`` of
Definition 45 is presented with multi-head rules, so :class:`TGD` supports
multiple head atoms together with :meth:`TGD.single_head_equivalent`, the
auxiliary-predicate translation of footnote 10/31.

Two non-standard-but-paper-mandated features:

* **Empty bodies.**  The (loop) rule of ``T_d`` is ``true -> exists x
  R(x,x), G(x,x)`` and the per-element rule is ``forall x (true -> exists z
  R(x,z))``.  A head variable that occurs in no body atom and is not
  declared existential is a *universal* ("domain") variable ranging over the
  active domain of the instance being chased.
* **Frontier access.**  ``fr(rho)`` (the variables shared between body and
  head, plus universal head variables) is needed by the Skolem naming
  convention, birth atoms and the Appendix-A machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .atoms import Atom, variables_of_atoms
from .gaifman import atoms_are_connected
from .signature import Predicate, Signature
from .terms import FreshVariables, Substitution, Variable


@dataclass(frozen=True)
class TGD:
    """A (possibly multi-head) tuple-generating dependency."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    existential: frozenset[Variable] = field(default=None)  # type: ignore[assignment]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.head:
            raise ValueError("a TGD must have at least one head atom")
        body_vars = variables_of_atoms(self.body)
        head_vars = variables_of_atoms(self.head)
        if self.existential is None:
            inferred = frozenset(head_vars - body_vars)
            object.__setattr__(self, "existential", inferred)
        else:
            existential = frozenset(self.existential)
            object.__setattr__(self, "existential", existential)
            if existential & body_vars:
                raise ValueError("existential variables must not occur in the body")
            if not existential <= head_vars:
                raise ValueError("existential variables must occur in the head")

    # ------------------------------------------------------------------
    # Variable taxonomy
    # ------------------------------------------------------------------
    def body_variables(self) -> set[Variable]:
        return variables_of_atoms(self.body)

    def head_variables(self) -> set[Variable]:
        return variables_of_atoms(self.head)

    def universal_head_variables(self) -> set[Variable]:
        """Head variables that are neither existential nor in the body.

        These range over the active domain (the ``forall x (true -> ...)``
        rules of ``T_d``); for rules produced by the parser from bodies that
        are not empty, this set is empty.
        """
        return self.head_variables() - self.body_variables() - self.existential

    def frontier(self) -> set[Variable]:
        """``fr(rho)``: variables visible in the head but not invented by it."""
        return self.head_variables() - self.existential

    def frontier_tuple(self) -> tuple[Variable, ...]:
        """The frontier in a deterministic order (first occurrence in head)."""
        ordered: list[Variable] = []
        seen: set[Variable] = set()
        for item in self.head:
            for variable in item.variables():
                if variable in self.frontier() and variable not in seen:
                    seen.add(variable)
                    ordered.append(variable)
        return tuple(ordered)

    # ------------------------------------------------------------------
    # Syntactic classes (Section 1's catalogue)
    # ------------------------------------------------------------------
    def is_datalog(self) -> bool:
        """No existential variables (and then no universal ones either)."""
        return not self.existential and not self.universal_head_variables()

    def is_linear(self) -> bool:
        """At most one body atom."""
        return len(self.body) <= 1

    def is_guarded(self) -> bool:
        """Some body atom contains every body variable."""
        if not self.body:
            return True
        body_vars = self.body_variables()
        return any(item.variable_set() >= body_vars for item in self.body)

    def is_frontier_guarded(self) -> bool:
        """Some body atom contains every frontier variable."""
        if not self.body:
            return not (self.frontier() - self.universal_head_variables())
        frontier = self.frontier() & self.body_variables()
        return any(item.variable_set() >= frontier for item in self.body)

    def is_frontier_one(self) -> bool:
        """The frontier has at most one variable (Appendix A, footnote 37)."""
        return len(self.frontier()) <= 1

    def is_connected(self) -> bool:
        """The body's Gaifman graph is connected (empty body counts)."""
        return atoms_are_connected(self.body)

    def is_detached(self) -> bool:
        """Existential rule with empty frontier (Appendix A terminology)."""
        return not self.is_datalog() and not self.frontier()

    def is_single_head(self) -> bool:
        return len(self.head) == 1

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def substitute(self, theta: Substitution) -> "TGD":
        """Apply a variable renaming; ``theta`` must be injective on vars."""
        new_body = tuple(item.substitute(theta) for item in self.body)
        new_head = tuple(item.substitute(theta) for item in self.head)
        new_existential = frozenset(
            theta.get(var, var) for var in self.existential  # type: ignore[arg-type]
        )
        renamed = {
            var for var in new_existential if isinstance(var, Variable)
        }
        if len(renamed) != len(self.existential):
            raise ValueError("substitution must rename existential variables injectively")
        return TGD(new_body, new_head, frozenset(renamed), self.label)

    def rename_apart(self, fresh: FreshVariables) -> "TGD":
        """A variant of the rule with globally fresh variables."""
        mapping = {var: fresh.fresh_like(var) for var in self.variables()}
        return self.substitute(mapping)

    def variables(self) -> set[Variable]:
        return self.body_variables() | self.head_variables()

    def predicates(self) -> set[Predicate]:
        return {item.predicate for item in itertools.chain(self.body, self.head)}

    def single_head_equivalent(self, aux_prefix: str = "Aux") -> list["TGD"]:
        """Split a multi-head rule into single-head rules.

        The translation of footnote 10: introduce an auxiliary predicate
        over the frontier and existential variables, one rule producing it,
        and one projection rule per original head atom.  Single-head rules
        pass through unchanged.  Note the footnote's warning: the auxiliary
        predicate may need arity above 2, so the translation does not stay
        inside binary signatures.
        """
        if self.is_single_head():
            return [self]
        shared = self.frontier_tuple() + tuple(
            sorted(self.existential, key=lambda v: v.name)
        )
        aux = Predicate(f"{aux_prefix}_{self.label or id(self) % 10_000}", len(shared))
        aux_atom = Atom(aux, shared)
        producer = TGD(self.body, (aux_atom,), self.existential, f"{self.label}:aux")
        projections = [
            TGD((aux_atom,), (item,), frozenset(), f"{self.label}:proj{i}")
            for i, item in enumerate(self.head)
        ]
        return [producer, *projections]

    def __repr__(self) -> str:
        body_text = ", ".join(repr(item) for item in self.body) if self.body else "true"
        head_text = ", ".join(repr(item) for item in self.head)
        if self.existential:
            names = ",".join(sorted(var.name for var in self.existential))
            head_text = f"exists {names}. {head_text}"
        return f"{body_text} -> {head_text}"


class Theory:
    """A finite set of TGDs (a "rule set").

    The class is a thin ordered container with signature/shape introspection;
    semantic analyses (chase, rewriting, locality, ...) live in their own
    modules and take a :class:`Theory` as input.
    """

    def __init__(self, rules: Iterable[TGD], name: str = "") -> None:
        self._rules: tuple[TGD, ...] = tuple(rules)
        self.name = name

    def __iter__(self) -> Iterator[TGD]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, index: int) -> TGD:
        return self._rules[index]

    def rules(self) -> tuple[TGD, ...]:
        return self._rules

    def predicates(self) -> set[Predicate]:
        found: set[Predicate] = set()
        for rule in self._rules:
            found.update(rule.predicates())
        return found

    def signature(self) -> Signature:
        return Signature(self.predicates())

    def max_arity(self) -> int:
        return max((p.arity for p in self.predicates()), default=0)

    def is_binary(self) -> bool:
        """Every predicate has arity at most 2 (the scope of Theorem 3)."""
        return self.max_arity() <= 2

    def is_connected(self) -> bool:
        """Every rule has a connected body (Section 2)."""
        return all(rule.is_connected() for rule in self._rules)

    def is_datalog(self) -> bool:
        return all(rule.is_datalog() for rule in self._rules)

    def is_linear(self) -> bool:
        return all(rule.is_linear() for rule in self._rules)

    def is_guarded(self) -> bool:
        return all(rule.is_guarded() for rule in self._rules)

    def is_single_head(self) -> bool:
        return all(rule.is_single_head() for rule in self._rules)

    def datalog_rules(self) -> "Theory":
        """The datalog fragment ``T_DL`` (Appendix A)."""
        return Theory(
            (rule for rule in self._rules if rule.is_datalog()),
            name=f"{self.name}_DL" if self.name else "",
        )

    def existential_rules(self) -> "Theory":
        """The existential fragment ``T_exists`` (Appendix A)."""
        return Theory(
            (rule for rule in self._rules if not rule.is_datalog()),
            name=f"{self.name}_EX" if self.name else "",
        )

    def single_head_equivalent(self) -> "Theory":
        """Replace each multi-head rule by its single-head translation."""
        rules: list[TGD] = []
        for index, rule in enumerate(self._rules):
            labelled = rule if rule.label else TGD(rule.body, rule.head, rule.existential, f"r{index}")
            rules.extend(labelled.single_head_equivalent())
        return Theory(rules, name=f"{self.name}_sh" if self.name else "")

    def apply_trivial_trick(self, fresh_name: str = "_conn") -> "Theory":
        """The "trivial trick" of Section 2.

        Add a fresh variable as an additional first argument of every atom in
        every rule, producing a connected theory that preserves BDD and Core
        Termination status (at the price of raising every arity by one).
        """
        glue = Variable(fresh_name)

        def widen(item: Atom) -> Atom:
            widened = Predicate(item.predicate.name, item.predicate.arity + 1)
            return Atom(widened, (glue, *item.args))

        rules = []
        for rule in self._rules:
            rules.append(
                TGD(
                    tuple(widen(item) for item in rule.body),
                    tuple(widen(item) for item in rule.head),
                    rule.existential,
                    rule.label,
                )
            )
        return Theory(rules, name=f"{self.name}_conn" if self.name else "")

    def __repr__(self) -> str:
        title = self.name or "Theory"
        lines = "\n  ".join(repr(rule) for rule in self._rules)
        return f"{title}:\n  {lines}"
