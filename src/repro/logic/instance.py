"""Database instances (fact sets / structures).

An :class:`Instance` is a set of atoms with secondary indexes that make
homomorphism search (and thus chase steps, query evaluation and containment
checks) efficient:

* by predicate,
* by ``(predicate, position, term)``, and
* by term (every fact mentioning a term, powering ``containing()`` and the
  active-domain queries in O(result)).

Following the paper's Section 7, the *domain elements* of an instance may be
arbitrary terms — including variables (the proof of Observation 31 works with
"instances whose constants are variables") and Skolem function terms created
by the chase.  The active domain is simply the set of all terms occurring in
the facts.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .atoms import Atom
from .signature import Predicate, Signature
from .terms import Term


class Instance:
    """A mutable, indexed set of atoms.

    Mutation is add-mostly (the chase only ever adds atoms); removal is
    supported for workload construction and subset experiments.
    """

    __slots__ = ("_atoms", "_by_pred", "_by_pos", "_by_term", "_live_preds")

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._atoms: set[Atom] = set()
        self._by_pred: dict[Predicate, set[Atom]] = {}
        self._by_pos: dict[tuple[Predicate, int, Term], set[Atom]] = {}
        self._by_term: dict[Term, set[Atom]] = {}
        self._live_preds: set[Predicate] = set()
        for item in atoms:
            self.add(item)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, item: Atom) -> bool:
        """Add an atom; return ``True`` when it was not present before."""
        if item in self._atoms:
            return False
        self._atoms.add(item)
        self._by_pred.setdefault(item.predicate, set()).add(item)
        self._live_preds.add(item.predicate)
        for position, term in enumerate(item.args):
            self._by_pos.setdefault((item.predicate, position, term), set()).add(item)
            self._by_term.setdefault(term, set()).add(item)
        return True

    def update(self, items: Iterable[Atom]) -> int:
        """Add many atoms; return how many were new."""
        return sum(1 for item in items if self.add(item))

    def discard(self, item: Atom) -> bool:
        """Remove an atom if present; return ``True`` when it was removed."""
        if item not in self._atoms:
            return False
        self._atoms.discard(item)
        bucket = self._by_pred[item.predicate]
        bucket.discard(item)
        if not bucket:
            self._live_preds.discard(item.predicate)
        for position, term in enumerate(item.args):
            self._by_pos[(item.predicate, position, term)].discard(item)
            bucket = self._by_term.get(term)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del self._by_term[term]
        return True

    # ------------------------------------------------------------------
    # Queries on the structure
    # ------------------------------------------------------------------
    def __contains__(self, item: Atom) -> bool:
        return item in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __bool__(self) -> bool:
        return bool(self._atoms)

    def domain(self) -> set[Term]:
        """The active domain: every term occurring in some fact."""
        return set(self._by_term)

    def domain_size(self) -> int:
        return len(self._by_term)

    def predicates(self) -> set[Predicate]:
        return set(self._live_preds)

    def predicates_with_facts(self) -> set[Predicate]:
        """The live predicate set, served without a copy.

        Maintained incrementally by ``add``/``discard``; the chase
        planner's relevance check consults it once per rule per round, so
        it must be O(1).  Callers must treat the returned set as
        read-only.
        """
        return self._live_preds

    def signature(self) -> Signature:
        return Signature(self.predicates())

    def with_predicate(self, predicate: Predicate) -> set[Atom]:
        """All facts over ``predicate`` (a set the caller must not mutate)."""
        return self._by_pred.get(predicate, set())

    def with_term_at(self, predicate: Predicate, position: int, term: Term) -> set[Atom]:
        """All facts over ``predicate`` with ``term`` at ``position``."""
        return self._by_pos.get((predicate, position, term), set())

    def containing(self, term: Term) -> set[Atom]:
        """All facts mentioning ``term`` at any position.

        Served from the per-term index — O(result), not a scan of the
        ``(predicate, position, term)`` buckets.  Returns a fresh set the
        caller may mutate.
        """
        return set(self._by_term.get(term, ()))

    def candidate_count(self, predicate: Predicate, position: int, term: Term) -> int:
        """Size of the ``(predicate, position, term)`` index bucket."""
        return len(self._by_pos.get((predicate, position, term), ()))

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        """A fast structural copy: index dicts rebuilt by copying buckets.

        Re-running ``add`` per atom would re-derive every index entry;
        copying the three index dicts (bucket sets shallow-copied — atoms
        are immutable) makes chase start-up O(index size) with tiny
        constants instead.
        """
        clone = Instance.__new__(Instance)
        clone._atoms = set(self._atoms)
        clone._by_pred = {key: set(value) for key, value in self._by_pred.items()}
        clone._by_pos = {key: set(value) for key, value in self._by_pos.items()}
        clone._by_term = {key: set(value) for key, value in self._by_term.items()}
        clone._live_preds = set(self._live_preds)
        return clone

    def union(self, other: "Instance | Iterable[Atom]") -> "Instance":
        result = self.copy()
        result.update(other)
        return result

    def issubset(self, other: "Instance") -> bool:
        return all(item in other for item in self._atoms)

    def atoms(self) -> frozenset[Atom]:
        """A frozen snapshot of the facts."""
        return frozenset(self._atoms)

    def restrict_to_terms(self, allowed: set[Term]) -> "Instance":
        """The induced substructure on ``allowed``.

        Keeps exactly the facts whose terms all belong to ``allowed`` — the
        construction behind the structures ``M_F`` of Definition 36 ("ban"
        the other terms and drop every atom that mentions a banned one).
        """
        kept = (item for item in self._atoms if all(t in allowed for t in item.args))
        return Instance(kept)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._atoms == other._atoms

    def __repr__(self) -> str:
        shown = sorted(repr(item) for item in self._atoms)
        if len(shown) > 12:
            head = ", ".join(shown[:12])
            return f"Instance({{{head}, ... {len(shown)} facts}})"
        return f"Instance({{{', '.join(shown)}}})"


def subsets_of_size_at_most(instance: Instance, bound: int) -> Iterator[Instance]:
    """Enumerate all sub-instances with at most ``bound`` facts.

    Used by the locality checkers (Definition 30).  The enumeration is
    exponential in ``bound``; callers keep ``bound`` small (it plays the role
    of the locality constant ``l_T``).
    """
    from itertools import combinations

    facts = sorted(instance, key=repr)
    for size in range(1, min(bound, len(facts)) + 1):
        for chosen in combinations(facts, size):
            yield Instance(chosen)
