"""Realistic linear ontologies — the classical FUS-engine workload shape.

The BDD/FUS literature the paper builds on evaluates rewriting engines on
DL-Lite-style ontologies (role hierarchies, domain/range axioms, concept
inclusions, mandatory participation).  These three synthetic ontologies
mirror that shape over different domains; all rules are linear, so every
ontology is BDD, local (``l_T = 1``) and sticky — the well-behaved side of
the paper's frontier, against which ``T_d``'s pathologies stand out.

Each ontology ships with a seeded database generator and a set of
benchmark queries (used by E14 and the property suite).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..logic.atoms import atom
from ..logic.instance import Instance
from ..logic.parser import parse_query, parse_theory
from ..logic.query import ConjunctiveQuery
from ..logic.tgd import Theory


@dataclass
class OntologyWorkload:
    """An ontology together with its data generator and query set."""

    name: str
    theory: Theory
    queries: dict[str, ConjunctiveQuery] = field(default_factory=dict)

    def database(self, scale: int, seed: int = 0) -> Instance:
        raise NotImplementedError


class MedicalWorkload(OntologyWorkload):
    """Patients, conditions, treatments, prescribing physicians."""

    def __init__(self) -> None:
        theory = parse_theory(
            """
            Patient(x) -> Person(x)
            Physician(x) -> Person(x)
            Specialist(x) -> Physician(x)
            Patient(x) -> exists c. Diagnosed(x, c)
            Diagnosed(x, c) -> Condition(c)
            Condition(c) -> exists t. TreatedBy(c, t)
            TreatedBy(c, t) -> Treatment(t)
            Treatment(t) -> exists p. PrescribedBy(t, p)
            PrescribedBy(t, p) -> Physician(p)
            ChronicCondition(c) -> Condition(c)
            ChronicCondition(c) -> exists s. MonitoredBy(c, s)
            MonitoredBy(c, s) -> Specialist(s)
            """,
            name="Medical",
        )
        queries = {
            "persons": parse_query("q(x) := Person(x)"),
            "diagnosed": parse_query("q(x) := exists c. Diagnosed(x, c)"),
            "treated-by-physician": parse_query(
                "q(x) := exists c, t, p. Diagnosed(x, c), TreatedBy(c, t), "
                "PrescribedBy(t, p), Person(p)"
            ),
            "monitored-chronic": parse_query(
                "q(c) := exists s. MonitoredBy(c, s), Specialist(s)"
            ),
        }
        super().__init__(name="Medical", theory=theory, queries=queries)

    def database(self, scale: int, seed: int = 0) -> Instance:
        rng = random.Random(seed)
        instance = Instance()
        for i in range(scale):
            instance.add(atom("Patient", f"pat{i}"))
            if rng.random() < 0.5:
                instance.add(atom("Diagnosed", f"pat{i}", f"cond{i % 7}"))
        for c in range(7):
            if rng.random() < 0.4:
                instance.add(atom("ChronicCondition", f"cond{c}"))
            if rng.random() < 0.5:
                instance.add(atom("TreatedBy", f"cond{c}", f"treat{c}"))
        for d in range(max(1, scale // 10)):
            instance.add(atom("Specialist" if rng.random() < 0.3 else "Physician", f"doc{d}"))
        return instance


class GeographyWorkload(OntologyWorkload):
    """Cities, regions, countries, capitals — containment chains."""

    def __init__(self) -> None:
        theory = parse_theory(
            """
            City(x) -> Place(x)
            Region(x) -> Place(x)
            Country(x) -> Place(x)
            Capital(x) -> City(x)
            City(x) -> exists r. LocatedIn(x, r)
            LocatedIn(x, r) -> Region(r)
            Region(r) -> exists c. PartOf(r, c)
            PartOf(r, c) -> Country(c)
            Country(c) -> exists k. HasCapital(c, k)
            HasCapital(c, k) -> Capital(k)
            """,
            name="Geography",
        )
        queries = {
            "places": parse_query("q(x) := Place(x)"),
            "city-country": parse_query(
                "q(x) := exists r, c. LocatedIn(x, r), PartOf(r, c), Country(c)"
            ),
            "capitals-exist": parse_query(
                "q() := exists c, k. HasCapital(c, k), City(k)"
            ),
        }
        super().__init__(name="Geography", theory=theory, queries=queries)

    def database(self, scale: int, seed: int = 0) -> Instance:
        rng = random.Random(seed)
        instance = Instance()
        regions = max(2, scale // 5)
        for i in range(scale):
            name = f"city{i}"
            instance.add(atom("Capital" if rng.random() < 0.1 else "City", name))
            if rng.random() < 0.6:
                instance.add(atom("LocatedIn", name, f"region{rng.randrange(regions)}"))
        for r in range(regions):
            if rng.random() < 0.5:
                instance.add(atom("PartOf", f"region{r}", f"country{r % 3}"))
        return instance


class StockWorkload(OntologyWorkload):
    """Companies, listings, exchanges, investors (the classic S benchmark
    shape from the query-rewriting literature)."""

    def __init__(self) -> None:
        theory = parse_theory(
            """
            Company(x) -> LegalPerson(x)
            Investor(x) -> LegalPerson(x)
            ListedCompany(x) -> Company(x)
            ListedCompany(x) -> exists s. HasStock(x, s)
            HasStock(x, s) -> Stock(s)
            Stock(s) -> exists e. TradedOn(s, e)
            TradedOn(s, e) -> Exchange(e)
            Investor(x) -> exists s. Owns(x, s)
            Owns(x, s) -> Stock(s)
            """,
            name="Stock",
        )
        queries = {
            "legal-persons": parse_query("q(x) := LegalPerson(x)"),
            "traded-stocks": parse_query(
                "q(s) := exists e. TradedOn(s, e), Exchange(e)"
            ),
            "investor-exchange": parse_query(
                "q(x) := exists s, e. Owns(x, s), TradedOn(s, e)"
            ),
        }
        super().__init__(name="Stock", theory=theory, queries=queries)

    def database(self, scale: int, seed: int = 0) -> Instance:
        rng = random.Random(seed)
        instance = Instance()
        for i in range(scale):
            kind = rng.random()
            if kind < 0.4:
                instance.add(atom("ListedCompany", f"co{i}"))
            elif kind < 0.7:
                instance.add(atom("Company", f"co{i}"))
            else:
                instance.add(atom("Investor", f"inv{i}"))
                if rng.random() < 0.5:
                    instance.add(atom("Owns", f"inv{i}", f"stk{i % 9}"))
        for s in range(9):
            if rng.random() < 0.5:
                instance.add(atom("TradedOn", f"stk{s}", f"ex{s % 2}"))
        return instance


def all_ontology_workloads() -> list[OntologyWorkload]:
    """The three workloads, for sweeps and parametrized tests."""
    return [MedicalWorkload(), GeographyWorkload(), StockWorkload()]
