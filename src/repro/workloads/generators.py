"""Witness-instance families and synthetic workload generators.

Every negative result in the paper comes with a concrete family of
instances; this module builds them (deterministically, constants named
``a0, a1, ...``) plus seeded random instances for property-based and
crossover experiments.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..logic.atoms import Atom, atom
from ..logic.instance import Instance
from ..logic.signature import Predicate
from ..logic.terms import Constant


def constants(count: int, prefix: str = "a") -> list[Constant]:
    """``[a0, a1, ..., a{count-1}]``."""
    return [Constant(f"{prefix}{i}") for i in range(count)]


def edge_path(length: int, predicate: str = "E", prefix: str = "a") -> Instance:
    """A path ``P(a0,a1), ..., P(a{n-1},a{n})`` of ``length`` facts."""
    nodes = constants(length + 1, prefix)
    return Instance(
        atom(predicate, nodes[i], nodes[i + 1]) for i in range(length)
    )


def edge_cycle(length: int, predicate: str = "E", prefix: str = "a") -> Instance:
    """The cycle ``P(a0,a1), ..., P(a{n-1},a0)`` used in Example 42."""
    if length < 1:
        raise ValueError("a cycle needs at least one edge")
    nodes = constants(length, prefix)
    return Instance(
        atom(predicate, nodes[i], nodes[(i + 1) % length]) for i in range(length)
    )


def green_path(length: int, prefix: str = "a") -> Instance:
    """``G^n(a0, a_n)`` — the green path of Section 10 (instance form)."""
    return edge_path(length, predicate="G", prefix=prefix)


def level_path(length: int, level: int, prefix: str = "a") -> Instance:
    """An ``I_level`` path for the Section-12 theories ``T_d^K``."""
    return edge_path(length, predicate=f"I{level}", prefix=prefix)


def sticky_star(spokes: int) -> Instance:
    """The Example-39 witness: one seen edge plus ``spokes`` colour facts.

    ``E(a, b1, b2, c1)`` and ``R(a, c_i)`` for ``1 <= i <= spokes``;
    chasing it produces atoms whose support needs every fact.
    """
    facts = [atom("E", "a", "b1", "b2", "c1")]
    facts.extend(atom("R", "a", f"c{i}") for i in range(1, spokes + 1))
    return Instance(facts)


def example66_instance(spokes: int) -> Instance:
    """The Example-66 witness: one E-edge and ``spokes`` P-facts."""
    facts = [atom("E", "a0", "a1")]
    facts.extend(atom("P", f"b{i}") for i in range(1, spokes + 1))
    return Instance(facts)


def star(center_degree: int, predicate: str = "E") -> Instance:
    """A star: edges from one hub to ``center_degree`` leaves."""
    hub = Constant("hub")
    return Instance(
        atom(predicate, hub, Constant(f"leaf{i}")) for i in range(center_degree)
    )


def grid_instance(rows: int, cols: int) -> Instance:
    """A rows x cols grid with ``Right`` and ``Down`` edges."""
    facts: list[Atom] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                facts.append(atom("Right", f"n{r}_{c}", f"n{r}_{c + 1}"))
            if r + 1 < rows:
                facts.append(atom("Down", f"n{r}_{c}", f"n{r + 1}_{c}"))
    return Instance(facts)


def random_instance(
    predicates: Sequence[Predicate],
    fact_count: int,
    domain_size: int,
    seed: int = 0,
) -> Instance:
    """A seeded random instance over the given predicates.

    Facts are drawn uniformly (with replacement, then deduplicated), so the
    result may have slightly fewer than ``fact_count`` facts.
    """
    rng = random.Random(seed)
    pool = constants(domain_size)
    instance = Instance()
    for _ in range(fact_count):
        predicate = rng.choice(list(predicates))
        args = tuple(rng.choice(pool) for _ in range(predicate.arity))
        instance.add(Atom(predicate, args))
    return instance


def random_degree_bounded_instance(
    predicates: Sequence[Predicate],
    fact_count: int,
    max_degree: int,
    seed: int = 0,
) -> Instance:
    """A seeded random instance whose Gaifman degree stays below a bound.

    Used for the bd-locality experiments (Definition 40): elements are
    retired once their incident-fact count reaches ``max_degree``.
    """
    rng = random.Random(seed)
    instance = Instance()
    usage: dict[Constant, int] = {}
    next_id = 0

    def pick() -> Constant:
        nonlocal next_id
        available = [c for c, used in usage.items() if used < max_degree]
        if available and rng.random() < 0.7:
            return rng.choice(available)
        fresh = Constant(f"a{next_id}")
        next_id += 1
        usage[fresh] = 0
        return fresh

    for _ in range(fact_count):
        predicate = rng.choice(list(predicates))
        args = tuple(pick() for _ in range(predicate.arity))
        for arg in set(args):
            usage[arg] = usage.get(arg, 0) + 1
        instance.add(Atom(predicate, args))
    return instance


def university_database(
    students: int, professors: int, courses: int, seed: int = 0
) -> Instance:
    """A synthetic database for the university ontology (E9 crossover).

    Deliberately *incomplete* (not all students have enrollments, not all
    courses have teachers) so that ontology-mediated answering has work to
    do.
    """
    rng = random.Random(seed)
    instance = Instance()
    for s in range(students):
        name = f"student{s}"
        instance.add(atom("GradStudent" if rng.random() < 0.3 else "Student", name))
        if rng.random() < 0.6 and courses:
            instance.add(atom("EnrolledIn", name, f"course{rng.randrange(courses)}"))
    for p in range(professors):
        name = f"prof{p}"
        instance.add(atom("Professor", name))
        if rng.random() < 0.5 and courses:
            instance.add(atom("TaughtBy", f"course{rng.randrange(courses)}", name))
    for c in range(courses):
        if rng.random() < 0.4:
            instance.add(atom("Course", f"course{c}"))
    return instance
