"""Every named theory from the paper, as ready-made :class:`Theory` values.

Each constructor documents where in the paper the theory comes from and
what it is a witness of.  The experiment index in DESIGN.md maps these to
bench targets.
"""

from __future__ import annotations

from ..logic.atoms import Atom
from ..logic.parser import parse_theory
from ..logic.signature import Predicate
from ..logic.terms import Variable
from ..logic.tgd import TGD, Theory


def t_a() -> Theory:
    """Example 1: mothers of humans are humans (BDD, not core-terminating)."""
    return parse_theory(
        """
        Human(y) -> exists z. Mother(y, z)
        Mother(x, y) -> Human(y)
        """,
        name="T_a",
    )


def t_p() -> Theory:
    """Exercise 12: one linear rule growing an E-path.

    BDD (linear), but **not** Core Terminating (Exercise 22): every element
    sprouts an infinite forward path no finite prefix of which folds back.
    """
    return parse_theory("E(x, y) -> exists z. E(y, z)", name="T_p")


def exercise23() -> Theory:
    """Exercise 23: Core Terminating but not All-Instances Terminating.

    The second rule plants a loop ``E(x', x')`` two steps into every path;
    the chase keeps extending paths forever (no AIT) but the loop gives a
    finite model inside an early prefix (CT).
    """
    return parse_theory(
        """
        E(x, y) -> exists z. E(y, z)
        E(x, x1), E(x1, x2) -> E(x1, x1)
        """,
        name="Ex23",
    )


def example28_slice(levels: int) -> Theory:
    """A finite slice of Example 28's infinite theory.

    Rules ``E_i(x,y) -> exists z. E_{i-1}(y,z)`` for ``1 <= i <= levels``.
    The full (infinite) theory is BDD and Core Terminating but not UBDD;
    any finite instance only mentions finitely many relations, so its
    behaviour is captured by a sufficiently deep slice — and the bound
    ``c_{T,D}`` grows with the top level present in ``D`` (bench E8).
    """
    if levels < 1:
        raise ValueError("need at least one level")
    lines = "\n".join(
        f"E{i}(x, y) -> exists z. E{i - 1}(y, z)" for i in range(1, levels + 1)
    )
    return parse_theory(lines, name=f"Ex28[{levels}]")


def example39_sticky() -> Theory:
    """Example 39: a one-rule sticky theory that is BDD but **not local**.

    ``E(a,b,b',c)`` reads "a sees an edge b->b' coloured c" and ``R(a,c)``
    "a thinks c is a colour".  High-degree instances (stars of R-facts
    around one spectator) force unboundedly many facts into the support of
    a single chase atom.
    """
    return parse_theory(
        "E(x, y, y1, t), R(x, t1) -> exists y2. E(x, y1, y2, t1)",
        name="Ex39",
    )


def example41() -> Theory:
    """Example 41: bounded-degree local but **not BDD** (a datalog rule)."""
    return parse_theory("E(x, y, z), R(x, z) -> R(y, z)", name="Ex41")


def example42_tc() -> Theory:
    """Example 42, the theory ``T_c``: BDD but not bd-local.

    On an E-cycle of length n (degree 2) the chase produces atoms that
    need *all* n facts of the cycle, so no degree-relative locality
    constant exists.
    """
    return parse_theory(
        """
        E(x, y) -> exists x1, y1. R(x, y, x1, y1)
        R(x, y, x1, y1), E(y, z) -> exists z1. R(y, z, y1, z1)
        """,
        name="T_c",
    )


def t_d() -> Theory:
    """Definition 45, the non-distancing BDD theory ``T_d``.

    Multi-head rules over the binary signature {R (red), G (green)}:

    * (loop)  ``true -> exists x. R(x,x), G(x,x)``
    * (pins)  ``forall x (true -> exists z, z'. R(x,z), G(x,z'))``
    * (grid)  ``R(x,x'), G(x,u), G(u,u') -> exists z. R(u',z), G(x',z)``

    In the (pins) rule the variable ``x`` occurs only in the head and is not
    existential: it is a *universal* variable ranging over the active
    domain, exactly the paper's ``forall x (true -> ...)``.
    """
    return parse_theory(
        """
        true -> exists x. R(x, x), G(x, x)                       # (loop)
        true -> exists z, z1. R(x, z), G(x, z1)                  # (pins)
        R(x, x1), G(x, u), G(u, u1) -> exists z. R(u1, z), G(x1, z)   # (grid)
        """,
        name="T_d",
    )


def t_d_without_loop() -> Theory:
    """``T_d`` minus (loop) — **not** BDD (Exercise 46)."""
    return parse_theory(
        """
        true -> exists z, z1. R(x, z), G(x, z1)
        R(x, x1), G(x, u), G(u, u1) -> exists z. R(u1, z), G(x1, z)
        """,
        name="T_d-loop",
    )


def i_predicate(level: int) -> Predicate:
    """The binary predicate ``I_level`` of the Section-12 signature."""
    return Predicate(f"I{level}", 2)


def t_d_k(levels: int) -> Theory:
    """Section 12, the theory ``T_d^K`` over ``I_K, ..., I_1``.

    2K+1 rules: one (loop) making an all-colours self-loop element, one
    (pins_k) per level, and one (grid_i) per adjacent pair of levels.
    ``t_d_k(2)`` is ``T_d`` with ``I_2 = R`` and ``I_1 = G`` (up to the
    pins rules being split per level).
    """
    if levels < 2:
        raise ValueError("T_d^K needs K >= 2")
    x = Variable("x")
    loop_head = tuple(
        Atom(i_predicate(k), (x, x)) for k in range(levels, 0, -1)
    )
    rules = [TGD((), loop_head, frozenset((x,)), "loop")]
    for k in range(1, levels + 1):
        u, z = Variable("u"), Variable("z")
        rules.append(
            TGD((), (Atom(i_predicate(k), (u, z)),), frozenset((z,)), f"pins_{k}")
        )
    for i in range(1, levels):
        upper, lower = i_predicate(i + 1), i_predicate(i)
        x0, x1, u, u1, z = (
            Variable("x"),
            Variable("x1"),
            Variable("u"),
            Variable("u1"),
            Variable("z"),
        )
        body = (
            Atom(upper, (x0, x1)),
            Atom(lower, (x0, u)),
            Atom(lower, (u, u1)),
        )
        head = (Atom(upper, (u1, z)), Atom(lower, (x1, z)))
        rules.append(TGD(body, head, frozenset((z,)), f"grid_{i}"))
    return Theory(rules, name=f"T_d^{levels}")


def example66() -> Theory:
    """Example 66: the ancestor-blowup counterexample to (false) Lemma 65.

    The semi-oblivious chase may route every ``P(b_i)`` fact into the
    ancestors of one tree, which the Appendix-A normalization repairs.
    """
    return parse_theory(
        """
        E(x, y), R(z, y) -> exists v. E(y, v)
        E(x, y), P(z) -> R(z, y)
        """,
        name="Ex66",
    )


def university_ontology() -> Theory:
    """A small linear (hence BDD and local) ontology for the examples.

    Linear rules only, so rewriting terminates and the theory is local
    (Section 7's remark that linear theories are local); used by the
    quickstart, the OMQA example and the crossover benchmark (E9).
    """
    return parse_theory(
        """
        GradStudent(x) -> Student(x)
        Student(x) -> Person(x)
        Professor(x) -> Person(x)
        Student(x) -> exists c. EnrolledIn(x, c)
        EnrolledIn(x, c) -> Course(c)
        Course(c) -> exists p. TaughtBy(c, p)
        TaughtBy(c, p) -> Professor(p)
        Professor(p) -> exists d. MemberOf(p, d)
        MemberOf(p, d) -> Department(d)
        """,
        name="University",
    )


def family_ontology() -> Theory:
    """A tiny family ontology (Example 1 plus symmetric siblings)."""
    return parse_theory(
        """
        Human(y) -> exists z. Mother(y, z)
        Mother(x, y) -> Human(y)
        Mother(x, y) -> Parent(x, y)
        Siblings(x, y) -> Siblings(y, x)
        """,
        name="Family",
    )
