"""Bounded-degree locality (Definition 40).

``T`` is *bd-local* when for every degree bound ``k`` there is a constant
``l_T(k)`` making the Definition-30 equation hold over all instances of
Gaifman degree at most ``k``.  Sticky theories are bd-local (Section 9);
the theory ``T_c`` of Example 42 is BDD but not even bd-local — cycles of
degree 2 defeat every constant.

The checks reuse :mod:`repro.frontier.locality` but insist on the degree
bound, so the caller's instance family must respect it (we verify)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.gaifman import max_degree
from ..logic.instance import Instance
from ..logic.tgd import Theory
from .locality import LocalityDefect, find_locality_constant, locality_defect


@dataclass
class BdLocalityProbe:
    """Outcome of probing bd-locality at one degree bound."""

    degree: int
    constant: int | None
    defects_at_max_bound: list[LocalityDefect]


def check_degree(instances: Sequence[Instance], degree: int) -> None:
    """Raise unless every instance respects the degree bound."""
    for instance in instances:
        actual = max_degree(instance)
        if actual > degree:
            raise ValueError(
                f"instance has Gaifman degree {actual} > declared bound {degree}"
            )


def find_bd_locality_constant(
    theory: Theory,
    degree: int,
    instances: Sequence[Instance],
    max_bound: int,
    depth: int,
    subset_depth: int | None = None,
    max_atoms: int = 200_000,
) -> BdLocalityProbe:
    """Search ``l_T(degree)`` over a family of degree-bounded instances.

    ``constant=None`` documents that no bound up to ``max_bound`` works —
    for ``T_c`` on growing cycles this stays ``None`` however large the
    budget, which is the Example-42 phenomenon.
    """
    check_degree(instances, degree)
    constant = find_locality_constant(
        theory, instances, max_bound, depth, subset_depth, max_atoms
    )
    defects: list[LocalityDefect] = []
    if constant is None:
        defects = [
            locality_defect(theory, instance, max_bound, depth, subset_depth, max_atoms)
            for instance in instances
        ]
    return BdLocalityProbe(degree=degree, constant=constant, defects_at_max_bound=defects)
