"""The rewriting *process* for ``T_d`` (Section 10's high-level proof).

Start from ``S_0``, the set of all proper markings of the input query;
while some query is live, replace it by the result of the applicable
operation; finish when only totally marked (or empty/"true") queries
remain.  The survivors *are* the rewriting: a totally marked query holds in
``Ch(T_d, D)`` iff its CQ holds in ``D`` (every ``T_d`` chase atom mentions
an invented term, so the base-domain substructure of the chase is ``D``
itself).

Termination is guaranteed by the rank argument (Lemma 53 + the multiset
orders); ``check_ranks=True`` re-verifies the strict decrease at every
step, turning the paper's proof into an executable certificate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..logic.containment import minimize_ucq
from ..logic.homomorphism import find_query_homomorphism
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery, UnionOfCQs
from ..logic.terms import FreshVariables, Term, Variable
from .marked import (
    ADOM,
    MarkedQuery,
    all_markings,
    is_live,
    is_properly_marked,
    peel_true_components,
)
from .multiset import rank_pair_less
from .operations import OperationRecord, apply_operation
from .ranks import qrk


@dataclass
class ProcessResult:
    """Outcome of the five-operation process on one query."""

    query: ConjunctiveQuery
    survivors: list[MarkedQuery]
    steps: int
    records: list[OperationRecord] = field(default_factory=list)
    rank_violations: list[OperationRecord] = field(default_factory=list)

    def disjuncts(self) -> list[ConjunctiveQuery]:
        """The CQ-expressible survivors (answer variables in real atoms)."""
        found: list[ConjunctiveQuery] = []
        for mq in self.survivors:
            real = mq.real_atoms()
            if not real:
                continue
            covered = set()
            for item in real:
                covered |= item.variable_set()
            if all(var in covered for var in mq.answer_vars):
                found.append(ConjunctiveQuery(mq.answer_vars, real))
        return found

    def rewriting(self) -> UnionOfCQs:
        """The minimized UCQ rewriting (Theorem 1 shape)."""
        return minimize_ucq(self.disjuncts(), name=f"rew_td({self.query!r})")

    def holds_on_base(self, instance: Instance, answer: Sequence[Term] = ()) -> bool:
        """Evaluate the rewriting over a plain database instance."""
        return any(
            _survivor_holds(mq, instance, answer) for mq in self.survivors
        )


def _survivor_holds(
    mq: MarkedQuery, instance: Instance, answer: Sequence[Term]
) -> bool:
    from ..logic.homomorphism import consistent_binding

    partial = consistent_binding(mq.answer_vars, answer)
    if partial is None:
        return False
    real = mq.real_atoms()
    domain = instance.domain()
    if any(value not in domain for value in partial.values()):
        return False
    adom_only = {
        var
        for item in mq.atoms
        if item.predicate == ADOM
        for var in item.variable_set()
    } - {var for item in real for var in item.variable_set()}
    if not real:
        return not (adom_only - set(partial)) or bool(domain)
    if adom_only - set(partial) and not domain:
        return False
    return find_query_homomorphism(real, instance, partial) is not None


def _canonical_key(mq: MarkedQuery) -> tuple:
    """A renaming-invariant key for deduplication.

    Colour refinement over the query's variables, then (for small tie
    groups) a brute-force minimization over permutations.  When tie groups
    are too large the key falls back to a deterministic-but-not-canonical
    form — deduplication then may miss isomorphic copies, which costs work
    but never correctness.
    """
    variables = sorted(mq.variables(), key=lambda v: v.name)
    answer_index = {var: i for i, var in enumerate(mq.answer_vars)}
    # Incidence structures are loop-invariant: one pass over the atoms
    # instead of one pass per variable (and per refinement iteration).
    incidences: dict[Variable, list[tuple[str, int]]] = {var: [] for var in variables}
    occurrences: dict[Variable, list[int]] = {var: [] for var in variables}
    for atom_index, item in enumerate(mq.atoms):
        name = item.predicate.name
        for position, term in enumerate(item.args):
            if isinstance(term, Variable):
                incidences[term].append((name, position))
        for var in item.variable_set():
            occurrences[var].append(atom_index)
    color: dict[Variable, int] = {}
    signature0 = {
        var: (
            answer_index.get(var, -1),
            var in mq.marked,
            tuple(sorted(incidences[var])),
        )
        for var in variables
    }
    palette = {sig: i for i, sig in enumerate(sorted(set(signature0.values())))}
    for var in variables:
        color[var] = palette[signature0[var]]
    for _ in range(len(variables)):
        colored = [
            (
                item.predicate.name,
                tuple(
                    color[t] if isinstance(t, Variable) else -1 for t in item.args
                ),
            )
            for item in mq.atoms
        ]
        refined = {
            var: (color[var], tuple(sorted(colored[i] for i in occurrences[var])))
            for var in variables
        }
        palette = {sig: i for i, sig in enumerate(sorted(set(refined.values())))}
        new_color = {var: palette[refined[var]] for var in variables}
        if new_color == color:
            break
        color = new_color

    groups: dict[int, list[Variable]] = {}
    for var in variables:
        groups.setdefault(color[var], []).append(var)
    group_sizes = [len(g) for g in groups.values()]
    budget = 1
    for size in group_sizes:
        for k in range(2, size + 1):
            budget *= k

    def render(order: dict[Variable, int]) -> tuple:
        atoms_key = tuple(
            sorted(
                (
                    item.predicate.name,
                    tuple(
                        order[t] if isinstance(t, Variable) else repr(t)
                        for t in item.args
                    ),
                )
                for item in mq.atoms
            )
        )
        marks_key = tuple(sorted(order[v] for v in mq.marked))
        answers_key = tuple(order[v] for v in mq.answer_vars)
        return (answers_key, marks_key, atoms_key)

    if budget <= 720:
        best = None
        sorted_groups = [groups[c] for c in sorted(groups)]
        for permutations in itertools.product(
            *(itertools.permutations(g) for g in sorted_groups)
        ):
            order: dict[Variable, int] = {}
            index = 0
            for permuted in permutations:
                for var in permuted:
                    order[var] = index
                    index += 1
            key = render(order)
            if best is None or key < best:
                best = key
        return best  # type: ignore[return-value]
    order = {
        var: i
        for i, var in enumerate(
            sorted(variables, key=lambda v: (color[v], v.name))
        )
    }
    return render(order)


def run_process(
    query: ConjunctiveQuery,
    red: str = "R",
    green: str = "G",
    max_steps: int = 200_000,
    collect_records: bool = False,
    check_ranks: bool = False,
    deduplicate: bool = True,
) -> ProcessResult:
    """Run the five-operation process from ``S_0`` to a live-free set.

    ``check_ranks`` re-verifies Lemma 53 (``qrk`` strictly decreases in
    ``<_R``) on every produced query; violations are recorded, never
    silently ignored.  ``deduplicate=False`` disables the canonical-form
    deduplication (ablation A2): the rank argument still guarantees
    termination, but isomorphic copies are re-processed.
    """
    colors = (red, green)
    fresh = FreshVariables(prefix="_td")
    survivors: list[MarkedQuery] = []
    seen: set[tuple] = set()
    work: list[MarkedQuery] = []

    def admit(mq: MarkedQuery) -> None:
        mq = peel_true_components(mq, colors)
        if not is_properly_marked(mq, colors):
            return
        if deduplicate:
            key = _canonical_key(mq)
            if key in seen:
                return
            seen.add(key)
        # Properness was just established, so liveness reduces to the two
        # structural checks — re-running the marking closure here doubled
        # the per-admission cost for nothing.
        if not mq.is_totally_marked() and not mq.is_empty():
            work.append(mq)
        else:
            survivors.append(mq)

    for marking in all_markings(query):
        admit(marking)

    steps = 0
    records: list[OperationRecord] = []
    violations: list[OperationRecord] = []
    while work:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"process exceeded {max_steps} steps on {query!r}; "
                "the rank argument guarantees termination, so raise the budget"
            )
        current = work.pop()
        record = apply_operation(current, fresh, red, green)
        if collect_records or check_ranks:
            records.append(record)
        if check_ranks:
            before = qrk(current, red, green)
            for produced in record.results:
                if not is_properly_marked(produced, colors):
                    continue
                after = qrk(produced, red, green)
                if not rank_pair_less(after, before):
                    violations.append(record)
                    break
        for produced in record.results:
            admit(produced)

    return ProcessResult(
        query=query,
        survivors=survivors,
        steps=steps,
        records=records if collect_records else [],
        rank_violations=violations,
    )
