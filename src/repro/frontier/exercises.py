"""Executable versions of the paper's exercises and small observations.

The paper plants several exercises "later used as lemmas"; this module
turns the measurable ones into checkers used by tests and benchmarks:

* **Exercise 13** — for a connected BDD theory, chase-adjacency of base
  elements implies bounded base distance: measure the worst base distance
  over chase-adjacent base pairs.
* **Exercise 17** — facts about existing terms appear with a constant
  delay ``n_at``: measure the worst (creation round minus newest-argument
  round) over all produced atoms.
* **Observation 29** — an answer over ``Ch(T, D)`` is already an answer
  over ``Ch(T, F)`` for some ``F ⊆ D`` with ``|F| <= rs_T(psi)``.
* **Observation 49** — structural invariants of ``T_d``-style chases:
  invented terms have in-degree at most one per colour, edges into the
  base come from the base, and cycles live in the base (or in the (loop)
  element's cone, the caveat Section 10's restriction to connected
  non-boolean queries silently handles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..chase.engine import ChaseBudget, ChaseResult, chase
from ..logic.atoms import Atom
from ..logic.gaifman import distance, gaifman_graph
from ..logic.homomorphism import holds
from ..logic.instance import Instance, subsets_of_size_at_most
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Term
from ..logic.tgd import Theory


# ----------------------------------------------------------------------
# Exercise 13
# ----------------------------------------------------------------------
def adjacency_contraction(
    theory: Theory, instance: Instance, depth: int, max_atoms: int = 200_000
) -> int:
    """The worst base distance over chase-adjacent base pairs.

    Exercise 13 predicts this stays below a theory constant ``d`` for
    connected BDD theories, over every instance; callers sweep instance
    families and watch for flatness.
    """
    result = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
    base_domain = instance.domain()
    base_graph = gaifman_graph(instance)
    chase_graph = gaifman_graph(result.instance)
    worst = 0
    for source in base_domain:
        for neighbour in chase_graph.get(source, ()):
            if neighbour not in base_domain or neighbour == source:
                continue
            base_distance = distance(base_graph, source, neighbour)
            if base_distance == float("inf"):
                raise AssertionError(
                    "chase connected two base components — impossible for a "
                    "connected theory"
                )
            worst = max(worst, int(base_distance))
    return worst


# ----------------------------------------------------------------------
# Exercise 17
# ----------------------------------------------------------------------
def atom_delay(result: ChaseResult) -> int:
    """``n_at`` observed: max (atom round − newest argument's round).

    Exercise 17: once all the terms of a chase-entailed atom exist, the
    atom itself is produced within a constant number of rounds.
    """
    term_round: dict[Term, int] = {}
    for index, added in enumerate(result.round_added):
        for item in added:
            for term in item.args:
                term_round.setdefault(term, index)
    worst = 0
    for index, added in enumerate(result.round_added):
        if index == 0:
            continue
        for item in added:
            newest = max((term_round[t] for t in item.args), default=index)
            worst = max(worst, index - newest)
    return worst


# ----------------------------------------------------------------------
# Observation 29
# ----------------------------------------------------------------------
@dataclass
class SupportWitness:
    """A small sub-instance re-deriving one answer."""

    answer: tuple[Term, ...]
    support: Instance


def observation29_supports(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    size_bound: int,
    depth: int,
    max_atoms: int = 200_000,
) -> list[SupportWitness] | None:
    """For every base answer of ``query`` over the chase, find a support
    ``F ⊆ D`` with ``|F| <= size_bound`` whose own chase yields it.

    Returns the witnesses, or ``None`` when some answer has no support
    within the bound — for a BDD theory with ``size_bound >=
    rs_T(query)`` that must not happen (Observation 29).
    """
    from ..logic.homomorphism import evaluate

    result = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
    base_domain = instance.domain()
    answers = {
        answer
        for answer in evaluate(query, result.instance)
        if all(term in base_domain for term in answer)
    }
    witnesses: list[SupportWitness] = []
    for answer in sorted(answers, key=repr):
        found = None
        for part in subsets_of_size_at_most(instance, size_bound):
            partial = chase(theory, part, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
            if holds(query, partial.instance, answer):
                found = part
                break
        if found is None:
            return None
        witnesses.append(SupportWitness(answer=answer, support=found))
    return witnesses


# ----------------------------------------------------------------------
# Observation 49 (T_d structural invariants)
# ----------------------------------------------------------------------
@dataclass
class Observation49Report:
    """Structural invariants of a two-colour chase.

    ``edge_into_base_from_outside`` — violations of (i): an edge whose
    target is a base element but whose source is invented.
    ``multi_in_edges`` — violations of (iii): an invented term with two
    same-colour in-edges from distinct sources.
    ``cycles_outside_base`` — cycles not contained in the base, split into
    the (loop)-cone ones (expected: the paper's silent exception) and any
    others (real violations).
    """

    edge_into_base_from_outside: list[Atom]
    multi_in_edges: list[tuple[Term, str]]
    loop_cone_cycle_atoms: list[Atom]
    other_cycle_atoms: list[Atom]

    @property
    def clean_modulo_loop(self) -> bool:
        return not (
            self.edge_into_base_from_outside
            or self.multi_in_edges
            or self.other_cycle_atoms
        )


def observation49_report(
    result: ChaseResult, colors: Sequence[str] = ("R", "G")
) -> Observation49Report:
    """Check Observation 49's three invariants on a chase result."""
    base_domain = result.base.domain()
    into_base: list[Atom] = []
    in_edges: dict[tuple[Term, str], set[Term]] = {}
    for item in result.instance:
        if item.predicate.name not in colors or item.predicate.arity != 2:
            continue
        source, target = item.args
        if item not in result.base:
            if target in base_domain and source not in base_domain:
                into_base.append(item)
        if target not in base_domain:
            in_edges.setdefault((target, item.predicate.name), set()).add(source)
    multi = [
        (target, color)
        for (target, color), sources in in_edges.items()
        if len(sources) > 1
    ]

    # Cycles: any strongly-connected behaviour outside the base.  In a
    # T_d chase the only candidates are the (loop) element's self-loops.
    loop_cycles: list[Atom] = []
    other_cycles: list[Atom] = []
    for item in result.instance:
        if item.predicate.name not in colors or item.predicate.arity != 2:
            continue
        if item in result.base:
            continue
        source, target = item.args
        if source == target:
            derivation = result.derivations.get(item)
            if derivation is not None and not derivation.rule.body:
                loop_cycles.append(item)
            else:
                other_cycles.append(item)
    # Longer invented cycles would need an edge into an older term, which
    # the in-degree bookkeeping above already rules out; self-loops are
    # therefore the only possible invented cycles.
    return Observation49Report(
        edge_into_base_from_outside=into_base,
        multi_in_edges=multi,
        loop_cone_cycle_atoms=loop_cycles,
        other_cycle_atoms=other_cycles,
    )


# ----------------------------------------------------------------------
# Exercises 15/16: closure of rewriting sets under the chase
# ----------------------------------------------------------------------
def exercise16_check(
    theory: Theory,
    query: ConjunctiveQuery,
    rewriting_disjuncts: Sequence[ConjunctiveQuery],
    depth: int,
    max_atoms: int = 200_000,
) -> bool:
    """Exercise 16: a disjunct true in some ``Ch(T, D)`` entails the query
    there.  Checked on the canonical instances of the disjuncts themselves
    (the hardest cases: each disjunct trivially holds on its own canonical
    instance, so the query must follow by chasing it)."""
    for disjunct in rewriting_disjuncts:
        canonical = disjunct.canonical_instance()
        run = chase(theory, canonical, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
        if not holds(query, run.instance, disjunct.answer_vars):
            return False
    return True
