"""Marked queries (Definitions 47–48) and proper markings (Observation 50).

A marked query pairs a CQ with a set ``V`` of *marked* variables — those
that must land on base-domain elements, while unmarked variables must land
on chase-invented terms.  The five-operation process of Section 11
manipulates marked queries over the two-colour signature of ``T_d``; the
generalized process of Section 12 uses the same data structure over the
``I_K .. I_1`` signature.

Two paper-driven extensions:

* the CQ body may be **empty** (the operations can consume every atom; an
  empty marked query is unconditionally true thanks to the (loop) rule),
  and
* a pseudo-atom ``Adom(z)`` may appear, asserting that ``z`` is a
  base-domain element.  It arises when an operation removes the last
  ordinary atom containing a *marked* variable: the membership constraint
  must survive even though CQ syntax has no atom left to carry it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..chase.engine import ChaseResult
from ..logic.atoms import Atom, variables_of_atoms
from ..logic.homomorphism import iter_query_homomorphisms
from ..logic.query import ConjunctiveQuery
from ..logic.signature import Predicate
from ..logic.terms import Term, Variable

ADOM = Predicate("Adom", 1)


def adom_atom(variable: Variable) -> Atom:
    """The pseudo-atom asserting base-domain membership of a variable."""
    return Atom(ADOM, (variable,))


@dataclass(frozen=True)
class MarkedQuery:
    """A CQ with ordered answer variables and a marking ``V``.

    Invariants: answer variables are marked; marked variables occur in the
    atoms (or are answer variables); ``Adom`` atoms only mention marked
    variables.
    """

    answer_vars: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    marked: frozenset[Variable]

    def __post_init__(self) -> None:
        variables = variables_of_atoms(self.atoms) | set(self.answer_vars)
        if not set(self.answer_vars) <= self.marked:
            raise ValueError("answer variables must be marked")
        if not self.marked <= variables:
            raise ValueError("marked variables must occur in the query")
        for item in self.atoms:
            if item.predicate == ADOM and not item.variable_set() <= self.marked:
                raise ValueError("Adom atoms may only mention marked variables")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def variables(self) -> set[Variable]:
        """All variables (cached; callers must not mutate the result)."""
        cached = self.__dict__.get("_variables")
        if cached is None:
            cached = variables_of_atoms(self.atoms) | set(self.answer_vars)
            object.__setattr__(self, "_variables", cached)
        return cached

    def unmarked(self) -> set[Variable]:
        return self.variables() - self.marked

    def real_atoms(self) -> tuple[Atom, ...]:
        """Atoms over the actual signature (``Adom`` pseudo-atoms excluded).

        Cached: the process layer consults this several times per admitted
        query (peeling, marking closure, liveness, keys).
        """
        cached = self.__dict__.get("_real_atoms")
        if cached is None:
            cached = tuple(item for item in self.atoms if item.predicate != ADOM)
            object.__setattr__(self, "_real_atoms", cached)
        return cached

    def atoms_of(self, predicate_name: str) -> tuple[Atom, ...]:
        return tuple(
            item for item in self.atoms if item.predicate.name == predicate_name
        )

    def is_totally_marked(self) -> bool:
        return not self.unmarked()

    def is_empty(self) -> bool:
        return not self.real_atoms()

    def size(self) -> int:
        return len(self.real_atoms())

    def with_marking(self, marked: Iterable[Variable]) -> "MarkedQuery":
        return MarkedQuery(self.answer_vars, self.atoms, frozenset(marked))

    def to_cq(self) -> ConjunctiveQuery:
        """The underlying CQ (``Adom`` atoms dropped when redundant).

        Only valid for totally marked queries whose every answer variable
        still occurs in a real atom; the process layer handles the other
        shapes explicitly.
        """
        real = self.real_atoms()
        if not real:
            raise ValueError("empty marked query has no CQ form")
        return ConjunctiveQuery(self.answer_vars, real)

    def __repr__(self) -> str:
        marks = ",".join(sorted(v.name for v in self.marked))
        body = ", ".join(repr(a) for a in self.atoms) if self.atoms else "true"
        head = ",".join(v.name for v in self.answer_vars)
        return f"<q({head}) := {body} | V={{{marks}}}>"


def all_markings(query: ConjunctiveQuery) -> Iterator[MarkedQuery]:
    """Every marking of a CQ that includes the answer variables (``S_0``)."""
    optional = sorted(query.existential_vars(), key=lambda v: v.name)
    base = frozenset(query.answer_vars)
    for size in range(len(optional) + 1):
        for chosen in itertools.combinations(optional, size):
            yield MarkedQuery(query.answer_vars, query.atoms, base | set(chosen))


# ----------------------------------------------------------------------
# Proper markings: Observation 50 for a two-colour (or K-colour) signature
# ----------------------------------------------------------------------
def _binary_edges(mq: MarkedQuery, colors: Sequence[str]) -> list[tuple[Variable, Variable]]:
    edges = []
    for item in mq.real_atoms():
        if item.predicate.name in colors and item.predicate.arity == 2:
            source, target = item.args
            if isinstance(source, Variable) and isinstance(target, Variable):
                edges.append((source, target))
    return edges


def _cycle_variables(edges: list[tuple[Variable, Variable]]) -> set[Variable]:
    """Variables lying on a directed cycle (over all colours jointly).

    A vertex is on a cycle iff it belongs to a strongly connected
    component of size at least two, or carries a self-loop; one iterative
    Tarjan pass finds these in O(V + E) (the per-vertex reachability it
    replaces was O(V * E) and dominated the marking closure on admission).
    """
    adjacency: dict[Variable, set[Variable]] = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
        adjacency.setdefault(target, set())
    on_cycle: set[Variable] = set()
    index_of: dict[Variable, int] = {}
    low: dict[Variable, int] = {}
    on_stack: set[Variable] = set()
    scc_stack: list[Variable] = []
    counter = 0
    for root in adjacency:
        if root in index_of:
            continue
        work: list[tuple[Variable, Iterator[Variable]]] = [
            (root, iter(adjacency[root]))
        ]
        index_of[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter
                    counter += 1
                    scc_stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if nxt in on_stack and index_of[nxt] < low[vertex]:
                    low[vertex] = index_of[nxt]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[vertex] < low[parent]:
                    low[parent] = low[vertex]
            if low[vertex] == index_of[vertex]:
                component = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                if len(component) > 1:
                    on_cycle.update(component)
                elif vertex in adjacency[vertex]:
                    on_cycle.add(vertex)
    return on_cycle


def proper_marking_closure(
    mq: MarkedQuery, colors: Sequence[str] = ("R", "G")
) -> frozenset[Variable] | None:
    """The least superset of ``mq.marked`` satisfying Observation 50.

    Conditions propagated to a fixpoint:

    1. ``E(z, z')`` with ``z'`` marked forces ``z`` marked;
    2. every variable on a directed cycle is marked;
    3. ``E(z1, u)``, ``E(z2, u)`` of the same colour with ``z1`` marked
       force ``z2`` marked.

    Returns ``None`` when the closure would mark a variable that the
    original marking *excludes implicitly* — it never does: marking more
    variables is always consistent, so the closure always exists; callers
    compare it against ``mq.marked`` to test properness.
    """
    edges = _binary_edges(mq, colors)
    marked = set(mq.marked) | _cycle_variables(edges)
    per_color_target: dict[tuple[str, Variable], set[Variable]] = {}
    for item in mq.real_atoms():
        if item.predicate.name in colors and item.predicate.arity == 2:
            source, target = item.args
            if isinstance(source, Variable) and isinstance(target, Variable):
                per_color_target.setdefault(
                    (item.predicate.name, target), set()
                ).add(source)
    changed = True
    while changed:
        changed = False
        for source, target in edges:
            if target in marked and source not in marked:
                marked.add(source)
                changed = True
        for (_, target), sources in per_color_target.items():
            if sources & marked:
                fresh = sources - marked
                if fresh:
                    marked |= fresh
                    changed = True
    return frozenset(marked)


def is_properly_marked(mq: MarkedQuery, colors: Sequence[str] = ("R", "G")) -> bool:
    """Does the marking already satisfy the Observation-50 conditions?

    Improperly marked queries are unsatisfiable as marked queries (their
    closure would force an unmarked variable to be marked), so the process
    discards them (footnote 33).
    """
    closure = proper_marking_closure(mq, colors)
    return closure == mq.marked


def is_live(mq: MarkedQuery, colors: Sequence[str] = ("R", "G")) -> bool:
    """Properly marked but not totally marked — the process's work items."""
    return (
        not mq.is_totally_marked()
        and not mq.is_empty()
        and is_properly_marked(mq, colors)
    )


def peel_true_components(
    mq: MarkedQuery, colors: Sequence[str] = ("R", "G")
) -> MarkedQuery:
    """Delete connected components with no marked variable.

    Such a component can always be satisfied by mapping it onto the
    all-colours self-loop element created by the (loop) rule — an element
    outside ``dom(D)`` whose cone realizes every colour pattern — so it is
    unconditionally true and contributes nothing to the rewriting.  (This
    is the executable counterpart of the paper's restriction to connected
    non-boolean queries: the restriction must be re-established whenever an
    operation splits a query.)
    """
    real = mq.real_atoms()
    if not real:
        return mq
    # Connected components over variables through shared atoms: chain each
    # atom's variables and flood-fill.  (This replaced a union-find whose
    # find() calls dominated the admission path.)
    adjacency: dict[Variable, list[Variable]] = {}
    for item in real:
        variables = [t for t in item.args if isinstance(t, Variable)]
        for v in variables:
            adjacency.setdefault(v, [])
        for first, second in zip(variables, variables[1:]):
            adjacency[first].append(second)
            adjacency[second].append(first)
    component: dict[Variable, int] = {}
    next_component = 0
    for start in adjacency:
        if start in component:
            continue
        next_component += 1
        component[start] = next_component
        queue = [start]
        while queue:
            vertex = queue.pop()
            for neighbour in adjacency[vertex]:
                if neighbour not in component:
                    component[neighbour] = next_component
                    queue.append(neighbour)
    marked_components = {component[v] for v in mq.marked if v in component}
    kept_real = tuple(
        item
        for item in real
        if any(component[v] in marked_components for v in item.variable_set())
    )
    if len(kept_real) == len(real):
        return mq
    adom = tuple(item for item in mq.atoms if item.predicate == ADOM)
    atoms = kept_real + adom
    surviving = variables_of_atoms(atoms) | set(mq.answer_vars)
    return MarkedQuery(mq.answer_vars, atoms, mq.marked & frozenset(surviving))


# ----------------------------------------------------------------------
# Semantics: Definition 48
# ----------------------------------------------------------------------
def marked_holds(
    result: ChaseResult,
    mq: MarkedQuery,
    answer: Sequence[Term] = (),
) -> bool:
    """``Ch(D) |= Q(answer)`` in the marked sense (Definition 48).

    There must be a homomorphism of the query into the chase, sending the
    answer variables to ``answer``, with marked variables landing in
    ``dom(D)`` and unmarked variables landing outside it.
    """
    from ..logic.homomorphism import consistent_binding

    partial = consistent_binding(mq.answer_vars, answer)
    if partial is None:
        return False
    base_domain = result.base.domain()
    for var, image in partial.items():
        if (image in base_domain) != (var in mq.marked):
            return False
    real = mq.real_atoms()
    adom_only = {
        var
        for item in mq.atoms
        if item.predicate == ADOM
        for var in item.variable_set()
        if not any(var in other.variable_set() for other in real)
    }
    for hom in iter_query_homomorphisms(real, result.instance, partial):
        good = True
        for var, image in hom.items():
            if (image in base_domain) != (var in mq.marked):
                good = False
                break
        if not good:
            continue
        # Adom-only variables: need some base element (any will do) unless
        # already pinned by the answer.
        unbound_adom = adom_only - set(hom) - set(partial)
        if unbound_adom and not base_domain:
            continue
        return True
    if not real:
        # Empty query: true provided Adom constraints are satisfiable.
        unbound_adom = adom_only - set(partial)
        return not unbound_adom or bool(base_domain)
    return False
