"""The five operations on marked queries (Definitions 56–58, Lemma 55).

Given a *live* marked query over the ``T_d`` signature, some unmarked
variable is **maximal** — no atom leaves it.  Its in-atoms classify it
(Lemma 55) and select the operation:

* one in-atom ``E(z, x)``                       -> **cut-red/cut-green**
* exactly ``R(x_r, x)`` and ``G(x_g, x)``       -> **reduce** (4 markings)
* two same-colour in-atoms from distinct sources -> **fuse-red/fuse-green**

Soundness (Lemma 52) rests on the structure of ``Ch(T_d, D)``: chase terms
have in-degree one per colour except grid-created terms (one red + one
green), so unmarked variables force these shapes.  The test suite
re-verifies each operation empirically against chase-based marked-query
evaluation.

The functions are colour-parametric so the Section-12 generalization
(:mod:`repro.frontier.tdk`) can reuse them with ``red = I_{i+1}``,
``green = I_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.atoms import Atom
from ..logic.terms import FreshVariables, Variable
from .marked import MarkedQuery, adom_atom


@dataclass(frozen=True)
class MaximalVariable:
    """A maximal unmarked variable together with its in-atoms."""

    variable: Variable
    in_atoms: tuple[Atom, ...]


class NoMaximalVariable(RuntimeError):
    """Raised when a live query has no maximal variable — per Lemma 51 this
    cannot happen for properly marked queries; seeing it means a bug (or an
    improperly marked input)."""


class UnsupportedFusion(RuntimeError):
    """Fusing two answer variables would merge answer positions; the CQ
    rewriting formalism cannot express the induced equality (see DESIGN.md
    limitations).  Never triggered by the paper's witness queries."""


def find_maximal_variable(
    mq: MarkedQuery, colors: Sequence[str] = ("R", "G")
) -> MaximalVariable:
    """Pick the (deterministically first) maximal unmarked variable."""
    outgoing: set[Variable] = set()
    incoming: dict[Variable, list[Atom]] = {}
    for item in mq.real_atoms():
        if item.predicate.name not in colors or item.predicate.arity != 2:
            continue
        source, target = item.args
        if isinstance(source, Variable):
            outgoing.add(source)
        if isinstance(target, Variable):
            incoming.setdefault(target, []).append(item)
    for variable in sorted(mq.unmarked(), key=lambda v: v.name):
        if variable not in outgoing:
            return MaximalVariable(
                variable=variable,
                in_atoms=tuple(
                    sorted(incoming.get(variable, []), key=repr)
                ),
            )
    raise NoMaximalVariable(f"no maximal variable in {mq!r}")


def _drop_atoms_keep_constraints(
    mq: MarkedQuery, doomed: set[Atom], extra: tuple[Atom, ...] = ()
) -> tuple[Atom, ...]:
    """Remove atoms; keep marked variables' base-membership via ``Adom``.

    When the removal makes a *marked* variable (or an answer variable)
    vanish from the query, an ``Adom`` pseudo-atom retains the constraint
    that it denotes a base-domain element.
    """
    kept = tuple(item for item in mq.atoms if item not in doomed) + extra
    surviving: set[Variable] = set()
    for item in kept:
        surviving |= item.variable_set()
    rescued: list[Atom] = []
    for item in sorted(doomed, key=repr):
        for variable in item.variable_set():
            needs_constraint = variable in mq.marked
            if needs_constraint and variable not in surviving:
                rescued.append(adom_atom(variable))
                surviving.add(variable)
    return kept + tuple(rescued)


def cut(mq: MarkedQuery, maximal: MaximalVariable) -> MarkedQuery:
    """cut-red / cut-green: drop the sole in-atom of the maximal variable."""
    if len(maximal.in_atoms) != 1:
        raise ValueError("cut needs a maximal variable with exactly one in-atom")
    doomed = {maximal.in_atoms[0]}
    atoms = _drop_atoms_keep_constraints(mq, doomed)
    marked = mq.marked & _variables_of(atoms, mq.answer_vars)
    return MarkedQuery(mq.answer_vars, atoms, marked | frozenset(mq.answer_vars))


def fuse(
    mq: MarkedQuery,
    maximal: MaximalVariable,
    first: Atom,
    second: Atom,
) -> MarkedQuery:
    """fuse-red / fuse-green: identify the two same-colour in-sources.

    In the chase of ``T_d`` every invented term has in-degree at most one
    per colour, so both sources must map to the same term (Lemma 81).
    """
    if first.predicate != second.predicate:
        raise ValueError("fuse needs two atoms of the same colour")
    z1 = first.args[0]
    z2 = second.args[0]
    if not (isinstance(z1, Variable) and isinstance(z2, Variable)) or z1 == z2:
        raise ValueError("fuse needs distinct variable sources")
    answers = set(mq.answer_vars)
    if z1 in answers and z2 in answers:
        raise UnsupportedFusion(f"cannot merge answer variables {z1} and {z2}")
    keep, drop = (z1, z2) if (z1 in answers or (z2 not in answers and z1.name <= z2.name)) else (z2, z1)
    theta = {drop: keep}
    atoms = tuple(dict.fromkeys(item.substitute(theta) for item in mq.atoms))
    marked = frozenset(keep if v == drop else v for v in mq.marked)
    return MarkedQuery(mq.answer_vars, atoms, marked)


def reduce_step(
    mq: MarkedQuery,
    maximal: MaximalVariable,
    fresh: FreshVariables,
    red: str = "R",
    green: str = "G",
) -> list[MarkedQuery]:
    """reduce: rewind one (grid) application (Definition 58).

    Replaces ``R(x_r, x), G(x_g, x)`` by ``R(x', x_g), G(x', x''),
    G(x'', x_r)`` with fresh ``x', x''`` and returns the four markings of
    the new variables (one of which is improperly marked and will be
    discarded by the process, footnote 33).
    """
    by_color = {item.predicate.name: item for item in maximal.in_atoms}
    if set(by_color) != {red, green} or len(maximal.in_atoms) != 2:
        raise ValueError("reduce needs exactly one red and one green in-atom")
    red_atom = by_color[red]
    green_atom = by_color[green]
    x_r = red_atom.args[0]
    x_g = green_atom.args[0]
    x_prime = fresh.fresh_like(Variable("xp"))
    x_second = fresh.fresh_like(Variable("xpp"))
    red_pred = red_atom.predicate
    green_pred = green_atom.predicate
    replacement = (
        Atom(red_pred, (x_prime, x_g)),
        Atom(green_pred, (x_prime, x_second)),
        Atom(green_pred, (x_second, x_r)),
    )
    atoms = _drop_atoms_keep_constraints(mq, {red_atom, green_atom}, replacement)
    base_marked = mq.marked & _variables_of(atoms, mq.answer_vars)
    base_marked |= frozenset(mq.answer_vars)
    variants = [
        base_marked,
        base_marked | {x_prime},
        base_marked | {x_prime, x_second},
        base_marked | {x_second},
    ]
    return [MarkedQuery(mq.answer_vars, atoms, frozenset(v)) for v in variants]


def _variables_of(atoms: tuple[Atom, ...], answers: tuple[Variable, ...]) -> frozenset[Variable]:
    found: set[Variable] = set(answers)
    for item in atoms:
        found |= item.variable_set()
    return frozenset(found)


@dataclass(frozen=True)
class OperationRecord:
    """What the process did at one step (for certificates and tests)."""

    operation: str
    source: MarkedQuery
    variable: Variable
    results: tuple[MarkedQuery, ...]


def apply_operation(
    mq: MarkedQuery,
    fresh: FreshVariables,
    red: str = "R",
    green: str = "G",
) -> OperationRecord:
    """Classify the maximal variable (Lemma 55) and apply the operation."""
    colors = (red, green)
    maximal = find_maximal_variable(mq, colors)
    in_atoms = maximal.in_atoms
    per_color: dict[str, list[Atom]] = {}
    for item in in_atoms:
        per_color.setdefault(item.predicate.name, []).append(item)
    # Case (iii): some colour has two in-atoms with distinct sources.
    for color, items in sorted(per_color.items()):
        if len(items) >= 2:
            first, second = sorted(items, key=repr)[:2]
            fused = fuse(mq, maximal, first, second)
            return OperationRecord(
                operation=f"fuse-{'red' if color == red else 'green'}",
                source=mq,
                variable=maximal.variable,
                results=(fused,),
            )
    # Case (i): a single in-atom.
    if len(in_atoms) == 1:
        color = in_atoms[0].predicate.name
        return OperationRecord(
            operation=f"cut-{'red' if color == red else 'green'}",
            source=mq,
            variable=maximal.variable,
            results=(cut(mq, maximal),),
        )
    # Case (ii): one red and one green in-atom.
    if len(in_atoms) == 2 and set(per_color) == {red, green}:
        return OperationRecord(
            operation="reduce",
            source=mq,
            variable=maximal.variable,
            results=tuple(reduce_step(mq, maximal, fresh, red, green)),
        )
    raise AssertionError(
        f"Lemma 55 violated: unexpected in-atom shape {in_atoms!r} at "
        f"{maximal.variable!r}"
    )
