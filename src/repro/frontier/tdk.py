"""The Section-12 theories ``T_d^K``: K-level marked-query rewriting.

``T_d^K`` lives over binary predicates ``I_K, ..., I_1``; its rewritings
can require disjuncts of (K-1)-fold exponential size (Theorem 6).  The
paper sketches the generalized procedure and defers details to a journal
version; we implement the natural generalization it describes:

* **K cut operations** — a maximal variable with a single in-atom;
* **K fuse operations** — two same-level in-atoms with distinct sources
  (in the chase, invented terms have at most one in-edge per level);
* **K-1 reduce operations** — in-atoms at adjacent levels ``{i, i+1}``
  rewind one ``grid_i`` application (``I_{i+1}`` plays red, ``I_i`` plays
  green);
* **one drop rule** the paper's "slight redefinition" of proper markings
  must contain: an unmarked maximal variable whose in-atoms sit at
  *non-adjacent* levels could only denote the (loop) element; since live
  queries are connected to a marked (base-domain) variable and the loop
  element's cone never touches the base domain, such queries are
  unsatisfiable and are discarded.  (All-unmarked components are instead
  unconditionally true and peeled off, exactly as for ``T_d``.)

Termination follows the paper's lexicographic rank
``<|Q_K|, qrk_K, ..., |Q_2|, qrk_2>``; :func:`tower_rank` computes it and
the process re-verifies the strict decrease on demand.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..logic.atoms import Atom
from ..logic.query import ConjunctiveQuery
from ..logic.terms import FreshVariables, Term, Variable
from ..workloads.theories import i_predicate
from .marked import (
    MarkedQuery,
    all_markings,
    is_properly_marked,
    peel_true_components,
)
from .multiset import multiset_less
from .operations import (
    MaximalVariable,
    NoMaximalVariable,
    OperationRecord,
    cut,
    find_maximal_variable,
    fuse,
    reduce_step,
)
from .process import ProcessResult, _canonical_key
from .ranks import hike_costs


def level_names(levels: int) -> tuple[str, ...]:
    """``("I1", ..., "IK")`` — the colour names of ``T_d^K``."""
    return tuple(f"I{k}" for k in range(1, levels + 1))


def _level_of(item: Atom) -> int:
    return int(item.predicate.name[1:])


def apply_operation_k(
    mq: MarkedQuery, fresh: FreshVariables, levels: int
) -> OperationRecord:
    """Classify the maximal variable and apply the level-aware operation."""
    colors = level_names(levels)
    maximal = find_maximal_variable(mq, colors)
    per_level: dict[int, list[Atom]] = {}
    for item in maximal.in_atoms:
        per_level.setdefault(_level_of(item), []).append(item)
    # Fuse: some level with two in-atoms.
    for level in sorted(per_level):
        items = per_level[level]
        if len(items) >= 2:
            first, second = sorted(items, key=repr)[:2]
            return OperationRecord(
                operation=f"fuse_{level}",
                source=mq,
                variable=maximal.variable,
                results=(fuse(mq, maximal, first, second),),
            )
    # Cut: a single in-atom.
    if len(maximal.in_atoms) == 1:
        level = _level_of(maximal.in_atoms[0])
        return OperationRecord(
            operation=f"cut_{level}",
            source=mq,
            variable=maximal.variable,
            results=(cut(mq, maximal),),
        )
    present = sorted(per_level)
    # Reduce: exactly two in-atoms at adjacent levels.
    if len(present) == 2 and present[1] == present[0] + 1:
        lower, upper = present
        return OperationRecord(
            operation=f"reduce_{lower}",
            source=mq,
            variable=maximal.variable,
            results=tuple(
                reduce_step(
                    mq,
                    maximal,
                    fresh,
                    red=f"I{upper}",
                    green=f"I{lower}",
                )
            ),
        )
    # Drop: the in-pattern is realizable only by the (loop) element, which
    # lives in a cone disjoint from the base domain; a live (marked-variable
    # -connected) query demanding it is unsatisfiable.
    return OperationRecord(
        operation="drop_loop_pattern",
        source=mq,
        variable=maximal.variable,
        results=(),
    )


def tower_rank(mq: MarkedQuery, levels: int) -> tuple:
    """``qrk`` of Section 12: ``<|Q_K|, qrk_K, ..., |Q_2|, qrk_2>``.

    ``qrk_i`` is the multiset of ``erk`` values of the ``I_{i-1}`` atoms
    under ``I_i``-paths (red = ``I_i``, green = ``I_{i-1}``, every other
    level neutral).  Multisets are frozen to sorted tuples so ranks can be
    compared with :func:`tower_rank_less`.
    """
    names = level_names(levels)
    parts: list = []
    for level in range(levels, 1, -1):
        red = f"I{level}"
        green = f"I{level - 1}"
        neutral = tuple(name for name in names if name not in (red, green))
        costs = hike_costs(mq, red=red, green=green, neutral=neutral)
        parts.append(len(mq.atoms_of(red)))
        parts.append(tuple(sorted(Counter(costs.values()).items())))
    return tuple(parts)


def tower_rank_less(left: tuple, right: tuple) -> bool:
    """Strict lexicographic comparison of Section-12 ranks."""
    for index in range(0, len(left), 2):
        if left[index] != right[index]:
            return left[index] < right[index]
        left_multiset = Counter(dict(left[index + 1]))
        right_multiset = Counter(dict(right[index + 1]))
        if left_multiset != right_multiset:
            return multiset_less(left_multiset, right_multiset)
    return False


def run_process_k(
    query: ConjunctiveQuery,
    levels: int,
    max_steps: int = 500_000,
    collect_records: bool = False,
    check_ranks: bool = False,
) -> ProcessResult:
    """The generalized process over the ``T_d^K`` signature."""
    colors = level_names(levels)
    fresh = FreshVariables(prefix="_tdk")
    survivors: list[MarkedQuery] = []
    seen: set[tuple] = set()
    work: list[MarkedQuery] = []

    def admit(mq: MarkedQuery) -> None:
        mq = peel_true_components(mq, colors)
        if not is_properly_marked(mq, colors):
            return
        key = _canonical_key(mq)
        if key in seen:
            return
        seen.add(key)
        if mq.is_totally_marked() or mq.is_empty():
            survivors.append(mq)
        else:
            work.append(mq)

    for marking in all_markings(query):
        admit(marking)

    steps = 0
    records: list[OperationRecord] = []
    violations: list[OperationRecord] = []
    while work:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(f"K-process exceeded {max_steps} steps")
        current = work.pop()
        record = apply_operation_k(current, fresh, levels)
        if collect_records or check_ranks:
            records.append(record)
        if check_ranks and record.results:
            before = tower_rank(current, levels)
            for produced in record.results:
                if not is_properly_marked(produced, colors):
                    continue
                after = tower_rank(produced, levels)
                if not tower_rank_less(after, before):
                    violations.append(record)
                    break
        for produced in record.results:
            admit(produced)

    return ProcessResult(
        query=query,
        survivors=survivors,
        steps=steps,
        records=records if collect_records else [],
        rank_violations=violations,
    )


# ----------------------------------------------------------------------
# Theorem 6(B): the per-level-pair doubling behind the tower
# ----------------------------------------------------------------------
#
# The paper asserts (proof deferred to its journal version) a query
# ``psi(y, y')`` whose rewriting has a (K-1)-fold exponential disjunct.
# The mechanism is a cascade: for every adjacent level pair (i+1, i) the
# two-colour doubling of Theorem 5 applies verbatim with ``I_{i+1}`` as
# red and ``I_i`` as green, so an ``I_{i+1}``-armed query of size ~n
# rewrites to ``I_i``-paths of length ``2^n``; composing the K-1 pairs
# tower-exponentiates.  We verify each pair's doubling executably
# (:func:`check_level_pair_doubling`) and expose the composed bound
# (:func:`tower`); the single explicit tower-sized witness query is the
# part the paper leaves to the journal version (see DESIGN.md §5).
def tower(height: int, top: int) -> int:
    """``tower(0, n) = n``; ``tower(h, n) = 2^tower(h-1, n)``."""
    value = top
    for _ in range(height):
        value = 2 ** value
    return value


def level_path_query(length: int, level: int) -> ConjunctiveQuery:
    """``I_level^length(x0, xn)`` as a CQ with answers ``(x0, xn)``."""
    from .td import color_path_atoms

    start, end = Variable("x0"), Variable("xn")
    atoms, _ = color_path_atoms(
        length, i_predicate(level), start, end, f"p{level}_"
    )
    return ConjunctiveQuery((start, end), atoms)


def phi_pair(pair_level: int, depth: int) -> ConjunctiveQuery:
    """``phi_R^depth`` transplanted to the level pair (pair_level+1, pair_level).

    ``phi(x, y) = exists x',y'. I_{i+1}^depth(x,x'), I_{i+1}^depth(y,y'),
    I_i(x',y')`` with ``i = pair_level`` — red is ``I_{i+1}``, green is
    ``I_i``.  With ``pair_level = 1`` and ``K = 2`` this is literally
    ``phi_R^depth`` over the renamed ``T_d`` signature.
    """
    from .td import color_path_atoms

    x, y = Variable("x"), Variable("y")
    x_prime, y_prime = Variable("xp"), Variable("yp")
    upper = i_predicate(pair_level + 1)
    lower = i_predicate(pair_level)
    left, _ = color_path_atoms(depth, upper, x, x_prime, "tl")
    right, _ = color_path_atoms(depth, upper, y, y_prime, "tr")
    bridge = Atom(lower, (x_prime, y_prime))
    return ConjunctiveQuery((x, y), left + right + (bridge,))


@dataclass
class LevelPairDoubling:
    """Doubling evidence for one adjacent level pair of ``T_d^K``."""

    levels: int
    pair_level: int
    depth: int
    max_disjunct_size: int
    lower_path_found: int
    disjunct_count: int

    @property
    def doubled(self) -> bool:
        """Did the rewriting produce an ``I_i``-path of length ``2^depth``?"""
        return self.lower_path_found >= 2 ** self.depth


def check_level_pair_doubling(
    levels: int, pair_level: int, depth: int = 1, max_steps: int = 500_000
) -> LevelPairDoubling:
    """Run the K-process on ``phi_pair`` and measure the lower-level blowup.

    Theorem 6(B)'s cascade needs every adjacent pair to double; this checks
    one pair.  ``check_level_pair_doubling(2, 1, n)`` reproduces Theorem
    5(B) exactly.
    """
    if not 1 <= pair_level < levels:
        raise ValueError("pair_level must name an adjacent pair inside 1..K")
    result = run_process_k(phi_pair(pair_level, depth), levels, max_steps=max_steps)
    rewriting = result.rewriting()
    longest_lower = 0
    lower_pred = i_predicate(pair_level)
    for disjunct in rewriting:
        lower = sum(1 for item in disjunct.atoms if item.predicate == lower_pred)
        longest_lower = max(longest_lower, lower)
    return LevelPairDoubling(
        levels=levels,
        pair_level=pair_level,
        depth=depth,
        max_disjunct_size=rewriting.max_disjunct_size(),
        lower_path_found=longest_lower,
        disjunct_count=len(rewriting),
    )


def composed_tower_bound(levels: int, depth: int) -> int:
    """The composed (K-1)-fold exponential of Theorem 6(B).

    Each of the K-1 level pairs exponentiates the path length once;
    starting from arms of length ``depth`` the bottom level reaches
    ``tower(levels - 1, depth)``.
    """
    return tower(levels - 1, depth)
