"""The FUS/FES conjecture machinery (Sections 6 and 8, Theorem 4).

The conjecture: BDD + Core Termination implies UBDD — a single chase-depth
bound ``c_T`` for *all* queries and instances.  Theorem 4 proves it for
**local** theories, constructively: fold ``Ch(D)`` through the
``M_F``-homomorphisms (Lemmas 35–38) into a model sitting inside
``Ch_{c_T}(D)`` whose elements come from ``C_D``, the union of cores of
small sub-instances.

Everything here is executable:

* :func:`small_subset_cores` — ``I_D``, ``C_D`` and ``k_T`` (Lemma 33);
* :func:`banned_terms` / :func:`m_f_structure` — Definition 36's ``M_F``;
* :func:`h_star` — Lemma 35's homomorphism ``Ch(F) -> Core(F)`` that is
  the identity on ``dom(Core(F))`` (for finitely-chaseable ``F``);
* :func:`global_folding` — the composed homomorphism ``h̄_D`` of Lemma 38's
  aftermath, with the Section-8 guarantee checked: every term lands in
  ``dom(C_D)``;
* :func:`uniform_bound_profile` — the empirical face of Observation 27:
  ``c_{T,D}`` per instance, flat for local CT theories (experiment E6) and
  growing for the Example-28 slices (E8).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..chase.engine import ChaseBudget, chase, chase_to_fixpoint
from ..chase.termination import (
    CoreTerminationWitness,
    core_termination,
    is_model,
    minimize_model,
)
from ..logic.instance import Instance
from ..logic.terms import Term
from ..logic.tgd import Theory


@dataclass
class SubsetCores:
    """``I_D``, the per-subset Core-Termination witnesses, ``C_D``, ``k``."""

    bound: int
    witnesses: list[tuple[Instance, CoreTerminationWitness]]
    union_of_cores: Instance
    max_core_depth: int

    def core_domain(self) -> set[Term]:
        return self.union_of_cores.domain()


def small_subset_cores(
    theory: Theory,
    instance: Instance,
    bound: int,
    max_depth: int = 20,
    minimize: bool = True,
) -> SubsetCores:
    """Compute ``C_D = ⋃_{F ∈ I_D} Core(F)`` (Definition 32) and ``k_T``.

    Raises when some small subset fails the Core-Termination search within
    ``max_depth`` — for a Core-Terminating theory that means the budget is
    too small, for others it is the honest answer.
    """
    witnesses: list[tuple[Instance, CoreTerminationWitness]] = []
    union = Instance()
    worst = 0
    facts = sorted(instance, key=repr)
    for size in range(1, min(bound, len(facts)) + 1):
        for chosen in itertools.combinations(facts, size):
            part = Instance(chosen)
            witness = core_termination(theory, part, max_depth=max_depth)
            if witness is None:
                raise RuntimeError(
                    f"no Core-Termination witness for a {size}-fact subset "
                    f"within depth {max_depth}"
                )
            model = witness.model
            if minimize:
                model = minimize_model(model, keep=part)
            witnesses.append(
                (part, CoreTerminationWitness(witness.bound, model, witness.folding))
            )
            union.update(model)
            worst = max(worst, witness.bound)
    return SubsetCores(
        bound=bound,
        witnesses=witnesses,
        union_of_cores=union,
        max_core_depth=worst,
    )


def banned_terms(chase_of_subset: Instance, core: Instance) -> set[Term]:
    """``ban_F``: terms of ``Ch(F)`` outside ``dom(Core(F))`` (Definition 36)."""
    return chase_of_subset.domain() - core.domain()


def m_f_structure(full_chase: Instance, chase_of_subset: Instance, core: Instance) -> Instance:
    """``M_F``: the substructure of ``Ch(D)`` avoiding the banned terms.

    "First ban all the terms that appear in Ch(F).  Unless they appear in
    Core(F) ... then remove from Ch(D) all atoms which dare to mention a
    banned term."
    """
    allowed = full_chase.domain() - banned_terms(chase_of_subset, core)
    return full_chase.restrict_to_terms(allowed)


def h_star(
    theory: Theory, instance: Instance, max_rounds: int = 100, max_atoms: int = 200_000
) -> tuple[Instance, dict[Term, Term]]:
    """Lemma 35 for finitely-chaseable instances.

    Returns ``(Core(F), h*_F)`` with ``h*_F : Ch(F) -> Core(F)`` the
    identity on ``dom(Core(F))``.  Requires the Skolem chase of ``F`` to
    terminate within budget (the exact setting where the lemma's statement
    is fully checkable); Core-Terminating-but-not-AIT theories are handled
    by the truncated pipeline in :func:`uniform_bound_profile` instead.
    """
    result = chase_to_fixpoint(theory, instance, budget=ChaseBudget(max_rounds=max_rounds, max_atoms=max_atoms))
    witness = core_termination(theory, instance, max_depth=result.rounds_run + 1)
    if witness is None:
        raise RuntimeError("terminating chase without a core witness — bug")
    core = minimize_model(witness.model, keep=instance)
    # Fold the full (finite) chase onto the core: h is the identity on the
    # core's domain by construction of the eventual image.
    from ..logic.homomorphism import find_structure_homomorphism

    fixed = {term: term for term in core.domain()}
    hom = find_structure_homomorphism(result.instance, core, fixed)
    if hom is None:
        raise AssertionError("Lemma 35 witness not found on a terminating chase")
    return core, hom


def global_folding(
    theory: Theory,
    instance: Instance,
    bound: int,
    depth: int,
    max_atoms: int = 200_000,
) -> tuple[dict[Term, Term], SubsetCores]:
    """The composed homomorphism ``h̄_D`` of Section 8 (truncated chase).

    Composes, over all ``F ∈ I_D``, endomorphisms of ``Ch_depth(D)`` that
    are the identity outside ``ban_F`` and map ``ban_F`` into
    ``dom(Core(F))``.  Verifies the paper's punchline on the truncated
    chase: every term of ``dom(Ch_depth(D))`` lands in ``dom(C_D)``.
    """
    cores = small_subset_cores(theory, instance, bound)
    full = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms)).instance
    composed = {term: term for term in full.domain()}
    for part, witness in cores.witnesses:
        part_chase = chase(theory, part, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms)).instance
        folding = dict(witness.folding)
        # Extend the subset folding to a map defined on all of Ch_depth(F):
        # terms beyond the witness's horizon fold via their deepest known
        # ancestor images; for the experiment families the witness folding
        # already covers Ch_depth(F).
        step: dict[Term, Term] = {}
        for term in full.domain():
            if term in part_chase.domain():
                step[term] = folding.get(term, term)
            else:
                step[term] = term
        composed = {term: step.get(composed[term], composed[term]) for term in composed}
    leftovers = {
        term
        for term, image in composed.items()
        if image not in cores.core_domain() and term in _reachable_terms(cores, full)
    }
    if leftovers:
        raise AssertionError(
            f"Section-8 folding failed to land {len(leftovers)} terms in dom(C_D)"
        )
    return composed, cores


def _reachable_terms(cores: SubsetCores, full: Instance) -> set[Term]:
    """Terms covered by some small-subset chase (the Section-8 argument
    applies exactly to those; on a truncated chase of a non-local theory
    some terms may need bigger subsets and are excluded from the check)."""
    covered: set[Term] = set()
    for part, witness in cores.witnesses:
        covered |= witness.model.domain()
    covered |= cores.core_domain()
    return covered & full.domain()


@dataclass
class UniformBoundProfile:
    """Per-instance Core-Termination bounds (Observation 27's ``c_T``)."""

    bounds: list[int]

    @property
    def uniform_bound(self) -> int:
        """``max c_{T,D}`` over the sample: the empirical ``c_T``."""
        return max(self.bounds, default=0)

    @property
    def looks_uniform(self) -> bool:
        """No growth on the (assumed size-ordered) family's tail."""
        if len(self.bounds) < 3:
            return True
        return self.bounds[-1] <= max(self.bounds[:-1])


def ubdd_enough_check(
    theory: Theory,
    queries: Sequence,
    instances: Sequence[Instance],
    bound: int,
    probe_depth: int | None = None,
    max_atoms: int = 200_000,
) -> bool:
    """Definition 26 directly: ``Enough(bound, phi, D, T)`` for every pair.

    The quantifier over *all* queries and instances is approximated by the
    supplied samples (the paper's UBDD is undecidable to confirm); a
    ``False`` is a genuine refutation of ``bound`` as a uniform constant.
    """
    from ..rewriting.bdd import enough

    horizon = probe_depth if probe_depth is not None else bound + 4
    for instance in instances:
        for query in queries:
            if not enough(theory, query, instance, bound, horizon, max_atoms):
                return False
    return True


def uniform_bound_profile(
    theory: Theory,
    instances: Sequence[Instance],
    max_depth: int = 25,
) -> UniformBoundProfile:
    """Measure ``c_{T,D}`` across an instance family (experiments E6/E8).

    Theorem 4 predicts a flat profile for local Core-Terminating theories;
    Example 28's slices show the profile growing when the theory (or its
    slice level) grows with the data.
    """
    bounds: list[int] = []
    for instance in instances:
        witness = core_termination(theory, instance, max_depth=max_depth)
        if witness is None:
            raise RuntimeError("Core-Termination witness not found within budget")
        bounds.append(witness.bound)
    return UniformBoundProfile(bounds=bounds)
