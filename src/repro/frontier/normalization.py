"""Appendix A: the normalization behind Theorem 3 (binary BDD => local).

The proof machinery, made executable:

* **taxonomy** of chase atoms — datalog vs existential, and among the
  existential ones *detached* (empty-frontier rules) vs *sensible*; the
  sensible atoms form a forest of trees ``S(t)`` rooted at base constants
  and detached terms (Observation 64);
* **Example 66** — why the naive ancestor bound fails: the semi-oblivious
  chase may route unboundedly many base facts into one tree's ancestry;
* **the normalization algorithm** — body rewriting (via the FUS engine),
  body separation with nullary ``M_phi`` predicates, and the three-step
  construction of ``T_NF = T_II ∪ T_III`` with
  ``Ch_exists(T_NF, D) = Ch_exists(T, D)`` (Lemma 70);
* **the Crucial Lemma** (Lemma 77) — after normalization, each tree's
  ancestor set is bounded by ``M = N*h + k*h``, a constant of the theory.

Scope: binary signatures with single-head rules whose existential rules
are frontier-one (footnote 37) — exactly the hypotheses of Theorem 3 —
and BDD theories (the rewriting engine must terminate on rule bodies).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..chase.engine import ChaseBudget, ChaseResult, chase
from ..chase.provenance import ancestors, connected_parents
from ..logic.atoms import Atom
from ..logic.gaifman import connected_components, query_gaifman_graph
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery
from ..logic.signature import Predicate
from ..logic.terms import Term, Variable
from ..logic.tgd import TGD, Theory
from ..rewriting.engine import RewritingBudget, rewrite


class NormalizationError(RuntimeError):
    """The input theory falls outside Theorem 3's hypotheses, or the
    rewriting engine could not certify a body rewriting within budget."""


# ----------------------------------------------------------------------
# Atom taxonomy over a chase result
# ----------------------------------------------------------------------
def existential_atoms(result: ChaseResult) -> Instance:
    """``Ch_exists``: base atoms plus atoms created by existential rules."""
    collected = Instance(result.base)
    for item, derivation in result.derivations.items():
        if not derivation.rule.is_datalog():
            collected.add(item)
    return collected


def detached_terms(result: ChaseResult) -> set[Term]:
    """Terms created by detached (empty-frontier existential) rules."""
    found: set[Term] = set()
    base_domain = result.base.domain()
    for item, derivation in result.derivations.items():
        if derivation.rule.is_detached():
            found.update(t for t in item.args if t not in base_domain)
    return found


def sensible_forest(result: ChaseResult) -> dict[Term, list[Atom]]:
    """The trees ``S(t)`` of Observation 64.

    Maps each root (base constant or detached term) to the sensible
    existential atoms of its tree.  An atom created by a sensible rule
    attaches below the (unique, frontier-one) term it hangs from.
    """
    base_domain = result.base.domain()
    roots = set(base_domain) | detached_terms(result)
    owner: dict[Term, Term] = {t: t for t in roots}
    trees: dict[Term, list[Atom]] = {t: [] for t in roots}

    # Atoms in creation order (chase rounds) so parents resolve first.
    for added in result.round_added[1:]:
        for item in sorted(added, key=repr):
            derivation = result.derivations.get(item)
            if derivation is None or derivation.rule.is_datalog():
                continue
            if derivation.rule.is_detached():
                continue  # detached atoms are roots, not edges
            frontier = derivation.frontier_image()
            if len(frontier) != 1:
                raise NormalizationError(
                    "sensible rule with non-singleton frontier; Theorem 3 "
                    "needs frontier-one existential rules"
                )
            anchor = next(iter(frontier))
            root = owner.get(anchor)
            if root is None:
                # The anchor is itself a chase term created by a sensible
                # rule; its owner was set when its birth atom was placed.
                raise NormalizationError(f"unowned anchor term {anchor!r}")
            trees.setdefault(root, []).append(item)
            for term in item.args:
                owner.setdefault(term, root)
    return trees


# ----------------------------------------------------------------------
# The normalization algorithm
# ----------------------------------------------------------------------
@dataclass
class NormalizedTheory:
    """``T_NF`` plus bookkeeping for the Crucial-Lemma constants."""

    original: Theory
    normalized: Theory
    nullary_for: dict[str, Predicate]
    constants: "CrucialConstants"


@dataclass
class CrucialConstants:
    """The constants of Lemma 77: ``M = N*h + k*h``."""

    nullary_count: int  # k
    max_body: int  # h
    rule_count: int  # n
    tree_budget: int  # N = |full n-ary tree of depth h|

    @property
    def bound(self) -> int:
        return self.tree_budget * self.max_body + self.nullary_count * self.max_body


def _canonical_boolean_query(atoms: tuple[Atom, ...]) -> str:
    """A name for ``M_phi``: canonical text of the boolean CQ ``phi``."""
    renaming: dict[Variable, str] = {}
    parts = []
    for item in sorted(atoms, key=repr):
        names = []
        for term in item.args:
            if isinstance(term, Variable):
                names.append(renaming.setdefault(term, f"v{len(renaming)}"))
            else:
                names.append(repr(term))
        parts.append(f"{item.predicate.name}({','.join(names)})")
    digest = hashlib.md5("&".join(parts).encode("utf8")).hexdigest()[:10]
    return digest


def _split_body(rule: TGD) -> tuple[tuple[Atom, ...], tuple[Atom, ...]]:
    """Body separation: (frontier component(s), disconnected rest)."""
    if not rule.body:
        return (), ()
    graph = query_gaifman_graph(rule.body)
    components = connected_components(graph)
    frontier = rule.frontier() & rule.body_variables()
    keep_vars: set[Variable] = set()
    for component in components:
        if component & frontier:
            keep_vars |= component
    if not frontier:
        # Detached rule: everything separates out.
        return (), rule.body
    kept = tuple(
        item for item in rule.body if item.variable_set() & keep_vars
    )
    rest = tuple(item for item in rule.body if item not in kept)
    return kept, rest


def _rewrite_body(
    theory: Theory,
    body: tuple[Atom, ...],
    answer_vars: tuple[Variable, ...],
    budget: RewritingBudget,
) -> list[tuple[Atom, ...]]:
    """``Rew``: all rewritings of a rule body (Definition 67)."""
    query = ConjunctiveQuery(answer_vars, body)
    result = rewrite(theory, query, budget)
    if not result.complete:
        raise NormalizationError(
            f"body rewriting did not terminate for {query!r}; "
            "is the theory BDD?"
        )
    return [disjunct.atoms for disjunct in result.ucq]


def normalize(
    theory: Theory, budget: RewritingBudget | None = None
) -> NormalizedTheory:
    """Run the three-step normalization algorithm of Appendix A."""
    budget = budget or RewritingBudget()
    if not theory.is_binary():
        raise NormalizationError("Theorem 3's normalization needs a binary signature")
    if not theory.is_single_head():
        raise NormalizationError("normalization expects single-head rules")
    for rule in theory.existential_rules():
        if not rule.is_frontier_one() and rule.frontier():
            raise NormalizationError("existential rules must be frontier-one")

    nullary_for: dict[str, Predicate] = {}

    def nullary(atoms: tuple[Atom, ...]) -> Predicate:
        key = _canonical_boolean_query(atoms) if atoms else "empty"
        if key not in nullary_for:
            nullary_for[key] = Predicate(f"M_{key}", 0)
        return nullary_for[key]

    # STEP ONE: T_I = body rewritings of the existential rules.
    step_one: list[TGD] = []
    for rule in theory.existential_rules():
        frontier_vars = tuple(sorted(rule.frontier() & rule.body_variables(), key=lambda v: v.name))
        if not rule.body:
            step_one.append(rule)
            continue
        for body in _rewrite_body(theory, rule.body, frontier_vars, budget):
            step_one.append(TGD(body, rule.head, rule.existential, f"{rule.label}:rw"))

    # STEP TWO: T_II = body separation of T_I.
    step_two: list[TGD] = []
    separations: list[tuple[TGD, tuple[Atom, ...]]] = []
    for rule in step_one:
        kept, rest = _split_body(rule)
        marker = Atom(nullary(rest), ())
        step_two.append(
            TGD(kept + (marker,), rule.head, rule.existential, f"{rule.label}:cc")
        )
        separations.append((rule, rest))

    # The empty conjunction's marker must always be derivable.
    always = TGD((), (Atom(nullary(()), ()),), frozenset(), "m_empty")
    step_three: list[TGD] = [always]

    # STEP THREE: T_III = rewritings of the M_phi producers.
    seen_markers: set[str] = set()
    for rule, rest in separations:
        if not rest:
            continue
        marker_pred = nullary(rest)
        if marker_pred.name in seen_markers:
            continue
        seen_markers.add(marker_pred.name)
        for body in _rewrite_body(theory, rest, (), budget):
            step_three.append(
                TGD(body, (Atom(marker_pred, ()),), frozenset(), f"{marker_pred.name}:prod")
            )

    normalized = Theory(step_two + step_three, name=f"{theory.name}_NF")
    max_body = max((len(rule.body) for rule in normalized), default=1)
    rule_count = len(normalized)
    depth = max_body
    # |full n-ary tree of depth h| = sum_{i=0..h} n^i
    tree_budget = sum(rule_count ** i for i in range(depth + 1))
    constants = CrucialConstants(
        nullary_count=len(nullary_for),
        max_body=max_body,
        rule_count=rule_count,
        tree_budget=tree_budget,
    )
    return NormalizedTheory(
        original=theory,
        normalized=normalized,
        nullary_for={k: v for k, v in nullary_for.items()},
        constants=constants,
    )


# ----------------------------------------------------------------------
# Validation: Lemma 70 and the Crucial Lemma, empirically
# ----------------------------------------------------------------------
def _strip_markers(instance: Instance) -> Instance:
    return Instance(
        item for item in instance if not item.predicate.name.startswith("M_")
    )


def lemma70_check(
    normalized: NormalizedTheory,
    instance: Instance,
    depth: int,
    max_atoms: int = 200_000,
) -> bool:
    """``Ch_exists(T_NF, D) == Ch_exists(T, D)`` up to the depth horizon.

    Lemma 75 allows a two-round shift, so the normalized side is chased two
    rounds deeper and the original side's existential atoms must appear in
    it, and vice versa (original chased deeper for the converse).
    """
    original_run = chase(normalized.original, instance, budget=ChaseBudget(max_rounds=depth + 2, max_atoms=max_atoms))
    normalized_run = chase(normalized.normalized, instance, budget=ChaseBudget(max_rounds=depth + 2, max_atoms=max_atoms))
    original_shallow = chase(normalized.original, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
    normalized_shallow = chase(normalized.normalized, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))

    original_exists = existential_atoms(original_shallow)
    normalized_exists = _strip_markers(existential_atoms(normalized_run))
    forward = all(item in normalized_exists for item in original_exists)

    normalized_exists_shallow = _strip_markers(existential_atoms(normalized_shallow))
    original_exists_deep = existential_atoms(original_run)
    backward = all(item in original_exists_deep for item in normalized_exists_shallow)
    return forward and backward


def tree_ancestor_sizes(
    theory: Theory,
    instance: Instance,
    depth: int,
    max_atoms: int = 200_000,
    connected_only: bool = False,
) -> dict[Term, int]:
    """Per-root size of ``⋃_{alpha in S(t)} anc(alpha)`` (Lemma 77's LHS).

    With ``connected_only=True`` nullary parents are ignored (``canc``),
    matching the Crucial Lemma's accounting for the normalized theory.
    """
    result = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
    trees = sensible_forest(result)
    parent_fn = connected_parents if connected_only else None
    sizes: dict[Term, int] = {}
    for root, atoms in trees.items():
        cache: dict[Atom, frozenset[Atom]] = {}
        union: set[Atom] = set()
        for item in atoms:
            if parent_fn is None:
                union |= ancestors(result, item, _cache=cache)
            else:
                union |= ancestors(result, item, parent_fn=parent_fn, _cache=cache)
        sizes[root] = len(union)
    return sizes


def tree_possible_ancestor_sizes(
    theory: Theory,
    instance: Instance,
    depth: int,
    max_atoms: int = 200_000,
    connected_only: bool = False,
) -> dict[Term, int]:
    """Worst case over *all* ancestor functions (the Lemma-77 quantifier).

    Like :func:`tree_ancestor_sizes` but through
    :func:`repro.chase.provenance.possible_ancestors`: every derivation the
    chase could have recorded counts.  For the raw Example-66 theory this
    grows with the instance (the paper's point); after normalization the
    connected variant stays under the Crucial Lemma's ``M``.
    """
    from ..chase.provenance import possible_ancestors

    result = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
    trees = sensible_forest(result)
    return {
        root: len(possible_ancestors(result, atoms, connected_only=connected_only))
        for root, atoms in trees.items()
    }


def crucial_lemma_check(
    normalized: NormalizedTheory,
    instance: Instance,
    depth: int,
    max_atoms: int = 200_000,
) -> tuple[int, int]:
    """(observed max tree-ancestor size, the Lemma-77 bound ``M``)."""
    sizes = tree_ancestor_sizes(
        normalized.normalized, instance, depth, max_atoms, connected_only=True
    )
    observed = max(sizes.values(), default=0)
    return observed, normalized.constants.bound
