"""Dershowitz–Manna multiset orderings and the rank orders of Section 10.

The termination proof of the five-operation process uses three nested
well-orders:

* ``<_m`` — the strict multiset extension of ``<`` on naturals,
* ``<_R`` — lexicographic on pairs ``(k, A)`` with ``k`` a natural and
  ``A`` a multiset of naturals (this is ``qrk``'s codomain), and
* ``<_M`` — the multiset extension of ``<_R`` (this is ``srk``'s codomain).

We implement the multiset extension generically over a strict-order
predicate, using the classical characterization: ``M <_mul N`` iff
``M != N`` and for every ``x`` with ``M(x) > N(x)`` there is ``y > x``
with ``M(y) < N(y)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Iterable

Element = Hashable
StrictLess = Callable[[Element, Element], bool]


def as_multiset(items: Iterable[Element]) -> Counter:
    """Build a multiset (a Counter) from an iterable."""
    return Counter(items)


def multiset_less(
    left: Iterable[Element],
    right: Iterable[Element],
    less: StrictLess | None = None,
) -> bool:
    """Strict Dershowitz–Manna ordering: is ``left`` < ``right``?

    With ``less=None`` the elements are compared with ``<`` directly.
    """
    if less is None:
        def less(a: Element, b: Element) -> bool:  # type: ignore[misc]
            return a < b  # type: ignore[operator]

    left_counts = as_multiset(left)
    right_counts = as_multiset(right)
    if left_counts == right_counts:
        return False
    elements = set(left_counts) | set(right_counts)
    for item in elements:
        if left_counts[item] > right_counts[item]:
            if not any(
                less(item, other) and left_counts[other] < right_counts[other]
                for other in elements
            ):
                return False
    return True


def rank_pair_less(
    left: tuple[int, Counter], right: tuple[int, Counter]
) -> bool:
    """``<_R``: lexicographic on (natural, multiset-of-naturals) pairs."""
    left_k, left_multiset = left
    right_k, right_multiset = right
    if left_k != right_k:
        return left_k < right_k
    return multiset_less(left_multiset, right_multiset)


def rank_pair_leq(left: tuple[int, Counter], right: tuple[int, Counter]) -> bool:
    """Non-strict ``<=_R``."""
    return left == right or rank_pair_less(left, right)


def srk_less(
    left: Iterable[tuple[int, Counter]], right: Iterable[tuple[int, Counter]]
) -> bool:
    """``<_M``: multiset extension of ``<_R`` over sets of query ranks.

    Counters are unhashable, so ranks are frozen to ``(k, sorted counts)``
    tuples for counting purposes.
    """

    def freeze(rank: tuple[int, Counter]) -> tuple[int, tuple[tuple[int, int], ...]]:
        k, counts = rank
        return (k, tuple(sorted(counts.items())))

    def thaw_less(a: tuple, b: tuple) -> bool:
        return rank_pair_less(
            (a[0], Counter(dict(a[1]))), (b[0], Counter(dict(b[1])))
        )

    return multiset_less(
        (freeze(rank) for rank in left),
        (freeze(rank) for rank in right),
        thaw_less,
    )
