"""``T_d`` specifics: queries, witnesses, Theorem 5 and Figure 1.

Definition 45's theory lives in :func:`repro.workloads.theories.t_d`; this
module adds the paper's query families and the executable content of
Theorem 5:

* ``G^n(x0, xn)`` / ``R^n(x0, xn)`` — colour paths as CQs,
* ``phi_R^n(x, y) = exists x',y'. R^n(x,x'), R^n(y,y'), G(x',y')``,
* the witness instances ``G^{2^n}(a, b)`` (green paths),
* checks for claims (i) and (ii) behind Theorem 5(B): the full green path
  of length ``2^n`` satisfies ``phi_R^n`` in the chase, while every proper
  subset fails (connectivity), and
* a text rendering of Figure 1's doubling grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chase.engine import ChaseBudget, chase
from ..logic.atoms import Atom, atom
from ..logic.homomorphism import holds
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery
from ..logic.signature import Predicate
from ..logic.terms import Constant, Variable
from ..workloads.generators import green_path
from ..workloads.theories import t_d

R = Predicate("R", 2)
G = Predicate("G", 2)


def color_path_atoms(
    length: int, predicate: Predicate, start: Variable, end: Variable, tag: str
) -> tuple[tuple[Atom, ...], list[Variable]]:
    """Atoms of a ``predicate``-path of ``length`` edges from start to end."""
    if length < 1:
        raise ValueError("paths need at least one edge")
    inner = [Variable(f"{tag}{i}") for i in range(1, length)]
    nodes = [start, *inner, end]
    atoms = tuple(
        Atom(predicate, (nodes[i], nodes[i + 1])) for i in range(length)
    )
    return atoms, inner


def g_path_query(length: int) -> ConjunctiveQuery:
    """``G^n(x0, xn)`` as a CQ with answers ``(x0, xn)``."""
    start, end = Variable("x0"), Variable("xn")
    atoms, _ = color_path_atoms(length, G, start, end, "g")
    return ConjunctiveQuery((start, end), atoms)


def phi_r_n(depth: int) -> ConjunctiveQuery:
    """``phi_R^n(x, y)`` of Section 10 (answers ``(x, y)``)."""
    if depth < 1:
        raise ValueError("phi_R^n needs n >= 1")
    x, y = Variable("x"), Variable("y")
    x_prime, y_prime = Variable("xp"), Variable("yp")
    left, _ = color_path_atoms(depth, R, x, x_prime, "rl")
    right, _ = color_path_atoms(depth, R, y, y_prime, "rr")
    bridge = Atom(G, (x_prime, y_prime))
    return ConjunctiveQuery((x, y), left + right + (bridge,))


def doubling_witness(depth: int) -> tuple[Instance, Constant, Constant]:
    """``G^{2^n}(a, b)``: the green path of length ``2**depth`` with ends."""
    length = 2 ** depth
    instance = green_path(length)
    return instance, Constant("a0"), Constant(f"a{length}")


@dataclass
class Theorem5BCheck:
    """Evidence for Theorem 5(B) at one value of ``n``.

    ``positive``: ``Ch(T_d, G^{2^n}) |= phi_R^n(a, b)``.
    ``subsets_fail``: every one-fact-removed subset fails (with the paper's
    connectivity argument this covers all proper subsets: removing any
    green edge separates ``a`` from ``b``).
    ``chase_rounds``: rounds needed for the positive witness.
    """

    depth: int
    path_length: int
    positive: bool
    subsets_fail: bool
    chase_rounds: int


def check_theorem_5b(depth: int, max_atoms: int = 2_000_000) -> Theorem5BCheck:
    """Verify claims (i)/(ii) behind Theorem 5(B) for one ``n``.

    The positive side needs the doubling construction to complete: the
    chase reaches ``phi_R^n`` after enough grid applications; we chase
    round-by-round until the query holds (it does by round ``~2^n``).
    """
    from ..chase.engine import resume

    theory = t_d()
    query = phi_r_n(depth)
    instance, start, end = doubling_witness(depth)
    rounds_budget = 2 ** depth + depth + 2
    result = chase(theory, instance, budget=ChaseBudget(max_rounds=1, max_atoms=max_atoms))
    positive = False
    rounds_needed = -1
    while True:
        if holds(query, result.instance, (start, end)):
            positive = True
            rounds_needed = result.rounds_run
            break
        if result.rounds_run >= rounds_budget or len(result.instance) > max_atoms:
            break
        result = resume(result, 1, budget=ChaseBudget(max_atoms=max_atoms))

    subsets_fail = True
    probe_rounds = max(rounds_needed, 1)
    for dropped in sorted(instance, key=repr):
        remaining = Instance(item for item in instance if item != dropped)
        partial = chase(
            theory, remaining, budget=ChaseBudget(max_rounds=probe_rounds, max_atoms=max_atoms)
        )
        if holds(query, partial.instance, (start, end)):
            subsets_fail = False
            break

    return Theorem5BCheck(
        depth=depth,
        path_length=2 ** depth,
        positive=positive,
        subsets_fail=subsets_fail,
        chase_rounds=rounds_needed,
    )


# ----------------------------------------------------------------------
# Figure 1: the doubling grid over a green path
# ----------------------------------------------------------------------
@dataclass
class GridLevel:
    """One level of the Figure-1 grid: the freshly created R/G atoms."""

    level: int
    red_atoms: list[Atom]
    green_atoms: list[Atom]


def figure1_grid(path_length: int, levels: int) -> list[GridLevel]:
    """The level-by-level structure of ``Ch(T_d, G^{path_length})``.

    Level ``i`` collects the atoms first appearing in round ``i`` that are
    reachable from the base path (the fragment drawn in Figure 1 — the
    (loop) island and the pin fringe are left out, as in the paper's
    picture, by keeping only atoms whose terms trace back to path nodes
    through grid applications).
    """
    from ..chase.provenance import ancestors

    theory = t_d()
    instance = green_path(path_length)
    result = chase(
        theory, instance, budget=ChaseBudget(max_rounds=levels, max_atoms=2_000_000)
    )
    grid_rule_label = "r2"  # (grid) is the third rule of t_d()
    cache: dict[Atom, frozenset[Atom]] = {}
    levels_out: list[GridLevel] = []
    for level in range(1, len(result.round_added)):
        reds: list[Atom] = []
        greens: list[Atom] = []
        for item in sorted(result.round_added[level], key=repr):
            derivation = result.derivations.get(item)
            if derivation is None or derivation.rule.label != grid_rule_label:
                continue
            # Keep only grid atoms anchored in the base path — the loop
            # island's grid cone has empty base ancestry and is left out of
            # the picture, as in the paper's Figure 1.
            if not ancestors(result, item, _cache=cache):
                continue
            if item.predicate == R:
                reds.append(item)
            else:
                greens.append(item)
        levels_out.append(GridLevel(level=level, red_atoms=reds, green_atoms=greens))
    return levels_out


def figure1_apex_counts(depth: int, max_atoms: int = 2_000_000) -> list[tuple[int, int, int]]:
    """The doubling triangle of Figure 1, quantified.

    Over ``G^{2^depth}``, level ``k`` of the picture is the set of apex
    patterns ``phi_R^k(a_i, a_{i + 2^k})``; the grid construction realizes
    one for *every* window of width ``2^k``, and no other base pair admits
    one (a pure green path only satisfies the all-green disjunct of
    ``rew(phi_R^k)``, which forces distance exactly ``2^k``).

    Returns ``(k, satisfied_window_count, expected_count)`` per level with
    ``expected = 2^depth - 2^k + 1`` — the triangle rows narrowing towards
    the single full-width apex.
    """
    from ..chase.engine import resume

    length = 2 ** depth
    instance = green_path(length)
    result = chase(t_d(), instance, budget=ChaseBudget(max_rounds=1, max_atoms=max_atoms))
    rounds_budget = length + depth + 2
    while result.rounds_run < rounds_budget and len(result.instance) <= max_atoms:
        if holds(
            phi_r_n(depth),
            result.instance,
            (Constant("a0"), Constant(f"a{length}")),
        ):
            break
        result = resume(result, 1, budget=ChaseBudget(max_atoms=max_atoms))
    rows: list[tuple[int, int, int]] = []
    for level in range(1, depth + 1):
        window = 2 ** level
        query = phi_r_n(level)
        satisfied = sum(
            1
            for start in range(0, length - window + 1)
            if holds(
                query,
                result.instance,
                (Constant(f"a{start}"), Constant(f"a{start + window}")),
            )
        )
        rows.append((level, satisfied, length - window + 1))
    return rows


def render_figure1(path_length: int = 8, levels: int | None = None) -> str:
    """A text rendering of Figure 1 (level-indexed atom counts + sample).

    The paper's picture shows the doubling grid over ``G^8(a0, a8)``; we
    print, per chase level, how many grid-created red/green atoms attach to
    the path and the "apex" fact witnessing ``phi_R^n``.
    """
    if levels is None:
        levels = path_length + 1
    grid = figure1_grid(path_length, levels)
    lines = [
        f"Figure 1 — fragment of Ch(T_d, G^{path_length}(a0, a{path_length}))",
        f"{'level':>5} | {'#red':>4} | {'#green':>6} | sample atoms",
        "-" * 64,
    ]
    for level in grid:
        sample = ", ".join(
            repr(item) for item in (level.red_atoms + level.green_atoms)[:2]
        )
        lines.append(
            f"{level.level:>5} | {len(level.red_atoms):>4} | "
            f"{len(level.green_atoms):>6} | {sample}"
        )
    return "\n".join(lines)
