"""Distancing theories (Definition 43) and their failure for ``T_d``.

``T`` is *distancing* with constant ``d_T`` when the chase can only
contract Gaifman distances linearly: ``dist_{Ch(T,D)}(c, c') <= n`` implies
``dist_D(c, c') <= d_T * n`` for base elements ``c, c'``.

The measurable quantity is the **contraction ratio** ``dist_D / dist_Ch``
over pairs of base elements: bounded for every local (and every backward
shy) theory, but growing like ``2^n / (2n + 1)`` for ``T_d`` over green
paths — the paper's headline counterexample (Theorem 5, experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..chase.engine import ChaseBudget, chase
from ..logic.gaifman import distance, gaifman_graph
from ..logic.instance import Instance
from ..logic.terms import Term
from ..logic.tgd import Theory


@dataclass
class DistancePair:
    """Distances of one pair of base elements, in D and in a chase prefix."""

    source: Term
    target: Term
    base_distance: float
    chase_distance: float

    @property
    def contraction_ratio(self) -> float:
        """``dist_D / dist_Ch`` (0 when the chase pair is disconnected)."""
        if self.chase_distance in (0, float("inf")):
            return 0.0
        return float(self.base_distance) / float(self.chase_distance)


def distance_contraction(
    theory: Theory,
    instance: Instance,
    pairs: Sequence[tuple[Term, Term]],
    depth: int,
    max_atoms: int = 400_000,
) -> list[DistancePair]:
    """Measure base-vs-chase Gaifman distances for the given pairs."""
    base_graph = gaifman_graph(instance)
    result = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms))
    chase_graph = gaifman_graph(result.instance)
    measured: list[DistancePair] = []
    for source, target in pairs:
        measured.append(
            DistancePair(
                source=source,
                target=target,
                base_distance=distance(base_graph, source, target),
                chase_distance=distance(chase_graph, source, target),
            )
        )
    return measured


def max_contraction_ratio(
    theory: Theory,
    instances: Iterable[tuple[Instance, Sequence[tuple[Term, Term]]]],
    depth: int,
    max_atoms: int = 400_000,
) -> float:
    """The largest observed contraction ratio across an instance family.

    For a distancing theory this stays below ``d_T`` no matter the family;
    an unbounded trend refutes distancing (Definition 43).
    """
    worst = 0.0
    for instance, pairs in instances:
        for pair in distance_contraction(theory, instance, pairs, depth, max_atoms):
            worst = max(worst, pair.contraction_ratio)
    return worst


def local_theories_are_distancing_bound(locality_constant: int, max_body: int) -> int:
    """A distancing constant valid for any local theory (Section 10).

    If ``T`` is local with constant ``l``, any chase atom's terms come from
    at most ``l`` base facts whose Gaifman span is bounded by the facts'
    joint span; a safe (coarse) constant is ``l * max_body`` with
    ``max_body`` the largest rule-body size — enough for Observation 44's
    "local implies distancing" direction in the experiments, where only the
    boundedness (not tightness) of the constant matters.
    """
    return max(1, locality_constant * max(1, max_body))
