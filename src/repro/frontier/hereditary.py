"""Hereditary BDD and the paper's closing conjecture (end of Section 9).

The paper: "We were however not able to find an example of a theory which
would be **hereditary BDD** but not bd-local.  We think it reasonable to
conjecture that there are no such theories."

Hereditary BDD = the theory *and all its subsets* are BDD.  This module
provides a probe harness for the conjecture: classify every subset of a
theory with the budgeted BDD test, and cross it with bd-locality evidence.
It doubles as a small research tool for hunting counterexample candidates
(none found — consistent with the conjecture — but the harness makes the
search repeatable).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..logic.atoms import Atom
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Variable
from ..logic.tgd import Theory
from ..rewriting.engine import RewritingBudget, rewrite


def projected_atomic_queries(theory: Theory) -> list[ConjunctiveQuery]:
    """Atomic queries with every subset of positions projected away.

    All-free atomic queries never unify with existential head positions
    (an answer variable cannot take a Skolem witness), so BDD refutation
    needs the projections too: ``exists d. R(a, b, c, d)`` is where the
    non-BDD subset of ``T_c`` first blows up.
    """
    queries: list[ConjunctiveQuery] = []
    for predicate in sorted(theory.predicates(), key=lambda p: p.name):
        variables = tuple(Variable(f"y{i}") for i in range(predicate.arity))
        body = (Atom(predicate, variables),)
        for mask in range(2 ** predicate.arity):
            answers = tuple(
                var for i, var in enumerate(variables) if not mask & (1 << i)
            )
            queries.append(ConjunctiveQuery(answers, body))
    return queries


@dataclass
class SubsetVerdict:
    """BDD evidence for one subset of the theory."""

    rules: tuple[int, ...]
    certified_bdd: bool  # every atomic query rewrote completely
    refuted: bool  # some probe exceeded the budget (evidence against, not proof)


@dataclass
class HereditaryReport:
    """The subset-by-subset BDD picture of a theory."""

    theory_name: str
    verdicts: list[SubsetVerdict] = field(default_factory=list)

    @property
    def hereditary_bdd_certified(self) -> bool:
        """Every subset's atomic queries rewrote completely.

        A "yes" certifies BDD for the atomic queries only — full BDD needs
        all CQs, which no budgeted procedure can confirm; a "no" (some
        subset refuted) is however meaningful evidence, and for the known
        non-BDD examples the budget blowup appears immediately.
        """
        return all(v.certified_bdd for v in self.verdicts)

    @property
    def non_bdd_subsets(self) -> list[tuple[int, ...]]:
        return [v.rules for v in self.verdicts if v.refuted]


def probe_hereditary_bdd(
    theory: Theory,
    budget: RewritingBudget | None = None,
    max_subset_size: int | None = None,
) -> HereditaryReport:
    """Probe every (non-empty) subset of the theory for BDD.

    ``max_subset_size`` caps the enumeration for larger theories.
    """
    budget = budget or RewritingBudget(max_kept=150, max_steps=10_000)
    rules = list(theory)
    top = len(rules) if max_subset_size is None else min(max_subset_size, len(rules))
    report = HereditaryReport(theory_name=theory.name)
    for size in range(1, top + 1):
        for chosen in itertools.combinations(range(len(rules)), size):
            subset = Theory([rules[i] for i in chosen], name=f"{theory.name}[{chosen}]")
            certified = True
            refuted = False
            for query in projected_atomic_queries(subset):
                result = rewrite(subset, query, budget)
                if not result.complete:
                    certified = False
                    refuted = True
                    break
            report.verdicts.append(
                SubsetVerdict(rules=chosen, certified_bdd=certified, refuted=refuted)
            )
    return report


def conjecture_scan(
    theories: list[Theory],
    budget: RewritingBudget | None = None,
) -> list[tuple[str, bool, bool]]:
    """Scan candidate theories for the conjecture's shape.

    Returns ``(name, hereditary_bdd_certified, some_subset_refuted)`` per
    theory.  A counterexample candidate would be hereditary-BDD-certified
    while failing bd-locality probes (the latter is checked separately via
    :mod:`repro.frontier.bdlocality` on witness families — no candidate in
    the paper's catalogue survives both filters, matching the conjecture).
    """
    rows = []
    for theory in theories:
        report = probe_hereditary_bdd(theory, budget)
        rows.append(
            (
                theory.name,
                report.hereditary_bdd_certified,
                bool(report.non_bdd_subsets),
            )
        )
    return rows
