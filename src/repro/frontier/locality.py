"""Locality of theories (Definition 30) — executable checks.

A theory is *local* when some constant ``l_T`` makes, for every instance,
the union of the chases of its ``<= l_T``-fact sub-instances equal the
chase of the whole instance.  The Skolem naming convention makes the union
literal (Observation 8): ``Ch(T, F) ⊆ Ch(T, D)`` atom-for-atom whenever
``F ⊆ D``, so the check is plain set comparison.

Because chases may be infinite, every check here is depth-truncated:

* an atom of ``Ch_depth(T, D)`` derivable from a small ``F`` appears in
  ``Ch(T, F)`` as well, though possibly at a *later* round (sub-instances
  may need extra rounds to re-create context) — hence the separate,
  larger ``subset_depth``;
* a non-empty defect at some depth is a genuine non-locality witness for
  that ``l`` (the missing atoms really need more than ``l`` facts, up to
  the ``subset_depth`` horizon, which callers pick generously).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..chase.engine import ChaseBudget, chase
from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.tgd import Theory


def union_of_subset_chases(
    theory: Theory,
    instance: Instance,
    bound: int,
    depth: int,
    max_atoms: int = 200_000,
) -> Instance:
    """``⋃_{F ⊆ D, |F| <= bound} Ch_depth(T, F)`` (Definition 30's left side)."""
    union = Instance()
    facts = sorted(instance, key=repr)
    for size in range(1, min(bound, len(facts)) + 1):
        for chosen in itertools.combinations(facts, size):
            part = chase(
                theory, Instance(chosen), budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms)
            )
            union.update(part.instance)
    return union


@dataclass
class LocalityDefect:
    """Atoms of the full chase missing from the union of small-subset chases."""

    bound: int
    depth: int
    subset_depth: int
    missing: frozenset[Atom]

    @property
    def witnessed_local(self) -> bool:
        """No defect at this horizon (evidence for locality at this bound)."""
        return not self.missing


def locality_defect(
    theory: Theory,
    instance: Instance,
    bound: int,
    depth: int,
    subset_depth: int | None = None,
    max_atoms: int = 200_000,
    verify_monotonicity: bool = False,
) -> LocalityDefect:
    """Compare ``Ch_depth(T, D)`` against the union of small-subset chases.

    ``subset_depth`` defaults to ``depth + 2`` — sub-instances may need a
    few extra rounds to re-create context, and by Observation 8 chasing
    them deeper never overshoots ``Ch(T, D)``.  ``verify_monotonicity``
    additionally re-chases the full instance to ``subset_depth`` and
    asserts Observation 8 literally (expensive; on in a dedicated test).
    """
    if subset_depth is None:
        subset_depth = depth + 2
    full = chase(theory, instance, budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms)).instance
    union = union_of_subset_chases(
        theory, instance, bound, subset_depth, max_atoms=max_atoms
    )
    missing = frozenset(item for item in full if item not in union)
    if verify_monotonicity:
        deep_full = chase(
            theory, instance, budget=ChaseBudget(max_rounds=subset_depth, max_atoms=max_atoms)
        ).instance
        extras = [item for item in union if item not in deep_full]
        if extras:
            raise AssertionError(
                f"Observation 8 violated: subset chase produced {extras[:3]} "
                "outside the full chase"
            )
    return LocalityDefect(
        bound=bound, depth=depth, subset_depth=subset_depth, missing=missing
    )


def find_locality_constant(
    theory: Theory,
    instances: Sequence[Instance],
    max_bound: int,
    depth: int,
    subset_depth: int | None = None,
    max_atoms: int = 200_000,
) -> int | None:
    """The least ``l <= max_bound`` with no defect on any sample instance.

    ``None`` means no bound up to ``max_bound`` works on the sample — a
    genuine non-locality witness for those bounds.
    """
    for bound in range(1, max_bound + 1):
        if all(
            locality_defect(
                theory, instance, bound, depth, subset_depth, max_atoms
            ).witnessed_local
            for instance in instances
        ):
            return bound
    return None


def min_support_size(
    theory: Theory,
    instance: Instance,
    target: Atom,
    depth: int,
    max_atoms: int = 200_000,
) -> int | None:
    """The smallest ``|F|``, ``F ⊆ D``, with ``target ∈ Ch_depth(T, F)``.

    Exponential subset enumeration — intended for the small witness
    families of Examples 39 and 42, where it demonstrates that the support
    of one atom can be the whole instance.
    """
    facts = sorted(instance, key=repr)
    for size in range(1, len(facts) + 1):
        for chosen in itertools.combinations(facts, size):
            result = chase(
                theory, Instance(chosen), budget=ChaseBudget(max_rounds=depth, max_atoms=max_atoms)
            )
            if target in result.instance:
                return size
    return None


def linear_locality_constant(theory: Theory) -> int:
    """Locality constant for linear theories.

    A linear rule consumes one atom, so every chase atom derives from a
    single base fact: ``l_T = 1`` (the paper's remark after Exercise 12
    that linear theories are local).  Raises for non-linear theories.
    """
    if not theory.is_linear():
        raise ValueError("linear_locality_constant needs a linear theory")
    return 1
