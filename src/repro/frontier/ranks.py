"""R-paths, elevation, cost and the ranks ``erk``/``qrk`` (Defs. 59–62).

These ranks exist to *certify termination* of the five-operation process:
Lemma 53 says every operation strictly decreases ``qrk`` in the order
``<_R`` (and hence ``srk`` in ``<_M``).  The process itself never needs
them to run; the test-suite uses them to machine-check Lemma 53 on every
step of real runs.

``erk(alpha, Q)`` is the minimal *cost* of a hike from a marked variable to
the green atom ``alpha``:

* an R-path may traverse green atoms freely (both directions) but each red
  atom at most once, in one direction (condition (*));
* the *elevation* starts at ``3^{|Q_R|}``, triples on a forward red step and
  drops to a third on a backward red step (always a positive integer thanks
  to (*));
* each green step costs the current elevation; red steps are free.

Computation: Dijkstra over states ``(vertex, red-usage)`` where the usage
records, per red atom, whether it was traversed forward or backward; the
elevation is a function of the state.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Mapping, Sequence

from ..logic.atoms import Atom
from ..logic.terms import Variable
from .marked import MarkedQuery

# Red usage: a frozenset of (atom, direction) pairs, direction in {+1, -1}.
_Usage = frozenset[tuple[Atom, int]]
_State = tuple[Variable, _Usage]

INFINITE_RANK = float("inf")


def _elevation(red_count: int, usage: _Usage) -> int:
    balance = sum(direction for _, direction in usage)
    exponent = red_count + balance
    if exponent < 0:
        raise AssertionError("condition (*) should keep elevation positive")
    return 3 ** exponent


def _variable_edges(atoms: Sequence[Atom]) -> list[tuple[Variable, Variable, Atom]]:
    edges = []
    for item in atoms:
        if item.predicate.arity != 2:
            continue
        source, target = item.args
        if isinstance(source, Variable) and isinstance(target, Variable):
            edges.append((source, target, item))
    return edges


def hike_costs(
    mq: MarkedQuery,
    red: str = "R",
    green: str = "G",
    neutral: Sequence[str] = (),
) -> dict[Atom, float]:
    """``erk(alpha, Q)`` for every ``green`` atom ``alpha`` of the query.

    Returns ``inf`` for atoms unreachable by any hike (possible only for
    queries that are not properly marked or are disconnected from marked
    variables).

    ``neutral`` names further predicates the path may traverse freely —
    Section 12's generalization, where an ``I_i``-path walks every colour
    but only ``I_i`` (red) is use-restricted/elevating and only ``I_{i-1}``
    (green) costs.
    """
    red_atoms = list(mq.atoms_of(red))
    green_atoms = list(mq.atoms_of(green))
    red_count = len(red_atoms)
    red_edges = _variable_edges(red_atoms)
    green_edges = _variable_edges(green_atoms)
    neutral_edges = [
        edge for name in neutral for edge in _variable_edges(mq.atoms_of(name))
    ]

    # Dijkstra over (vertex, usage) states.
    start_cost: dict[_State, int] = {}
    heap: list[tuple[int, int, _State]] = []
    tiebreak = 0
    for variable in sorted(mq.marked, key=lambda v: v.name):
        if variable not in mq.variables():
            continue
        state: _State = (variable, frozenset())
        start_cost[state] = 0
        heap.append((0, tiebreak, state))
        tiebreak += 1
    heapq.heapify(heap)
    best: dict[_State, int] = {}

    while heap:
        cost, _, state = heapq.heappop(heap)
        if best.get(state, INFINITE_RANK) <= cost:
            continue
        best[state] = cost
        vertex, usage = state
        elevation = _elevation(red_count, usage)
        # Green steps, both directions, cost = elevation, usage unchanged.
        for source, target, _ in green_edges:
            if source == vertex:
                _push(heap, best, (target, usage), cost + elevation)
            if target == vertex:
                _push(heap, best, (source, usage), cost + elevation)
        # Neutral steps (Section 12): free, unrestricted, both directions.
        for source, target, _ in neutral_edges:
            if source == vertex:
                _push(heap, best, (target, usage), cost)
            if target == vertex:
                _push(heap, best, (source, usage), cost)
        # Red steps, free, but each atom once and in one direction only.
        for source, target, item in red_edges:
            if any(existing == item for existing, _ in usage):
                continue
            if source == vertex:
                new_usage = usage | {(item, +1)}
                _push(heap, best, (target, new_usage), cost)
            if target == vertex:
                new_usage = usage | {(item, -1)}
                _push(heap, best, (source, new_usage), cost)

    ranks: dict[Atom, float] = {}
    for item in green_atoms:
        source, target = item.args
        candidates: list[float] = []
        for state, cost in best.items():
            vertex, usage = state
            elevation = _elevation(red_count, usage)
            if vertex == source or vertex == target:
                candidates.append(cost + elevation)
        ranks[item] = min(candidates, default=INFINITE_RANK)
    return ranks


def _push(
    heap: list[tuple[int, int, _State]],
    best: Mapping[_State, int],
    state: _State,
    cost: int,
) -> None:
    if best.get(state, INFINITE_RANK) > cost:
        heapq.heappush(heap, (cost, id(state), state))


def erk(mq: MarkedQuery, alpha: Atom, red: str = "R", green: str = "G") -> float:
    """The edge rank of one green atom (Definition 62)."""
    return hike_costs(mq, red, green)[alpha]


def qrk(mq: MarkedQuery, red: str = "R", green: str = "G") -> tuple[int, Counter]:
    """``qrk(Q) = (|Q_R|, {erk(alpha,Q) : alpha in Q_G})`` (Definition 54)."""
    costs = hike_costs(mq, red, green)
    return (len(mq.atoms_of(red)), Counter(costs.values()))


def srk(
    queries: Sequence[MarkedQuery], red: str = "R", green: str = "G"
) -> list[tuple[int, Counter]]:
    """``srk(S)``: the multiset (as a list) of query ranks."""
    return [qrk(mq, red, green) for mq in queries]
