"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chase``      materialize a chase prefix of a theory over an instance
``rewrite``    compute the UCQ rewriting of a query (Theorem 1)
``answer``     certain answers, by rewriting with chase fallback
``classify``   syntactic class membership report (Section 1's catalogue)
``termination`` Core-Termination probe (Definitions 18-24)
``figure1``    render the doubling triangle of Figure 1

Theories and instances are read from files (or inline with ``-e``) in the
syntax of :mod:`repro.logic.parser`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .chase import chase, core_termination
from .classes import classify
from .logic import parse_instance, parse_query, parse_theory
from .rewriting import RewritingBudget, certain_answers, rewrite


def _read(value: str, inline: bool) -> str:
    if inline:
        return value
    return Path(value).read_text(encoding="utf8")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-e",
        "--inline",
        action="store_true",
        help="treat THEORY/INSTANCE/QUERY arguments as literal text, not paths",
    )


def _cmd_chase(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    instance = parse_instance(_read(args.instance, args.inline))
    result = chase(
        theory, instance, max_rounds=args.rounds, max_atoms=args.max_atoms
    )
    status = "fixpoint" if result.terminated else f"truncated at {result.rounds_run} rounds"
    print(f"# {len(result.instance)} atoms ({status})")
    for item in sorted(result.instance, key=repr):
        print(item)
    return 0


def _cmd_rewrite(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    query = parse_query(_read(args.query, args.inline))
    budget = RewritingBudget(max_kept=args.max_kept, max_steps=args.max_steps)
    result = rewrite(theory, query, budget)
    print(f"# complete: {result.complete}; {len(result.ucq)} disjuncts; "
          f"max size {result.max_disjunct_size()}")
    for disjunct in result.ucq:
        print(disjunct)
    return 0 if result.complete else 2


def _cmd_answer(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    instance = parse_instance(_read(args.instance, args.inline))
    query = parse_query(_read(args.query, args.inline))
    answers = certain_answers(theory, query, instance)
    print(f"# {len(answers)} certain answers")
    for answer in sorted(answers, key=repr):
        print(answer)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name=args.name)
    print(*classify(theory).lines(), sep="\n")
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    instance = parse_instance(_read(args.instance, args.inline))
    witness = core_termination(theory, instance, max_depth=args.depth)
    if witness is None:
        print(f"no Core-Termination witness within depth {args.depth} (unknown)")
        return 2
    print(f"c_(T,D) = {witness.bound}; model with {len(witness.model)} facts:")
    for item in sorted(witness.model, key=repr):
        print(" ", item)
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from .frontier.td import figure1_apex_counts

    print(f"doubling triangle over G^{2 ** args.n}:")
    for level, satisfied, expected in figure1_apex_counts(args.n):
        bar = "#" * satisfied
        print(f"  level {level}: {satisfied:>3}/{expected:<3} windows  {bar}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chase_cmd = commands.add_parser("chase", help="materialize a chase prefix")
    chase_cmd.add_argument("theory")
    chase_cmd.add_argument("instance")
    chase_cmd.add_argument("--rounds", type=int, default=10)
    chase_cmd.add_argument("--max-atoms", type=int, default=100_000)
    _add_common(chase_cmd)
    chase_cmd.set_defaults(handler=_cmd_chase)

    rewrite_cmd = commands.add_parser("rewrite", help="UCQ rewriting (Theorem 1)")
    rewrite_cmd.add_argument("theory")
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--max-kept", type=int, default=2_000)
    rewrite_cmd.add_argument("--max-steps", type=int, default=200_000)
    _add_common(rewrite_cmd)
    rewrite_cmd.set_defaults(handler=_cmd_rewrite)

    answer_cmd = commands.add_parser("answer", help="certain answers")
    answer_cmd.add_argument("theory")
    answer_cmd.add_argument("instance")
    answer_cmd.add_argument("query")
    _add_common(answer_cmd)
    answer_cmd.set_defaults(handler=_cmd_answer)

    classify_cmd = commands.add_parser("classify", help="syntactic classes")
    classify_cmd.add_argument("theory")
    classify_cmd.add_argument("--name", default="theory")
    _add_common(classify_cmd)
    classify_cmd.set_defaults(handler=_cmd_classify)

    termination_cmd = commands.add_parser(
        "termination", help="Core-Termination probe"
    )
    termination_cmd.add_argument("theory")
    termination_cmd.add_argument("instance")
    termination_cmd.add_argument("--depth", type=int, default=15)
    _add_common(termination_cmd)
    termination_cmd.set_defaults(handler=_cmd_termination)

    figure_cmd = commands.add_parser("figure1", help="Figure 1 triangle")
    figure_cmd.add_argument("-n", type=int, default=3, choices=(1, 2, 3))
    figure_cmd.set_defaults(handler=_cmd_figure1)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
